//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench measures a *metric* (printed once per run) while Criterion
//! times the simulation, so a bench run doubles as an ablation report:
//!
//! * sub-block dirty bits (partial write-backs) vs whole-line write-backs
//! * associativity's effect on write-cache-relative effectiveness
//! * the combined write-buffer/write-cache reserve of Section 3.2

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwp_buffers::CoalescingWriteBuffer;
use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_core::sim::simulate;
use cwp_trace::{workloads, Scale};

fn bench_partial_writeback(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-partial-writeback");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    static REPORT: Once = Once::new();
    for partial in [false, true] {
        let config = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(64)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .partial_writeback(partial)
            .build()
            .unwrap();
        let name = if partial {
            "subblock-dirty-bits"
        } else {
            "whole-line"
        };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let out = simulate(workloads::ccom().as_ref(), Scale::Test, &config);
                out.traffic_total.write_back.bytes
            });
        });
        REPORT.call_once(|| {
            let whole = simulate(
                workloads::ccom().as_ref(),
                Scale::Test,
                &config.to_builder().partial_writeback(false).build().unwrap(),
            );
            let sub = simulate(
                workloads::ccom().as_ref(),
                Scale::Test,
                &config.to_builder().partial_writeback(true).build().unwrap(),
            );
            eprintln!(
                "[ablation] 64B lines, ccom: write-back bytes whole-line={} subblock={} ({:.1}% saved)",
                whole.traffic_total.write_back.bytes,
                sub.traffic_total.write_back.bytes,
                100.0
                    * (1.0
                        - sub.traffic_total.write_back.bytes as f64
                            / whole.traffic_total.write_back.bytes as f64)
            );
        });
    }
    group.finish();
}

fn bench_associativity_vs_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-associativity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    static REPORT: Once = Once::new();
    for ways in [1u32, 4] {
        let config = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .associativity(ways)
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::WriteValidate)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("{ways}-way")), |b| {
            b.iter(|| {
                simulate(workloads::liver().as_ref(), Scale::Test, &config)
                    .stats
                    .fetches
            });
        });
    }
    REPORT.call_once(|| {
        let fetches = |ways: u32| {
            let config = CacheConfig::builder()
                .size_bytes(8 * 1024)
                .associativity(ways)
                .write_hit(WriteHitPolicy::WriteThrough)
                .write_miss(WriteMissPolicy::WriteValidate)
                .build()
                .unwrap();
            simulate(workloads::liver().as_ref(), Scale::Test, &config).stats.fetches
        };
        eprintln!(
            "[ablation] liver, 8KB write-validate: fetches 1-way={} 4-way={} (paper studied direct-mapped only)",
            fetches(1),
            fetches(4)
        );
    });
    group.finish();
}

fn bench_write_buffer_reserve(c: &mut Criterion) {
    // The Section 3.2 combined structure: an m-entry buffer that drains
    // only above n pending entries behaves like a write cache in front of
    // a write buffer.
    let mut group = c.benchmark_group("ablation-wb-reserve");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    static REPORT: Once = Once::new();

    let collect = |reserve: usize| {
        let mut stream = Vec::new();
        {
            let mut cycle = 0u64;
            let mut sink = |r: cwp_trace::MemRef| {
                cycle += u64::from(r.before_insts);
                if r.is_write() {
                    stream.push((cycle, r.addr));
                }
            };
            workloads::yacc().run(Scale::Test, &mut sink);
        }
        let mut wb = CoalescingWriteBuffer::new(8, 16, 4).with_reserve(reserve);
        for (cycle, addr) in stream {
            wb.write(cycle, addr);
        }
        wb.flush();
        wb.stats()
    };

    for reserve in [0usize, 6] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("reserve-{reserve}")),
            |b| {
                b.iter(|| collect(reserve).merged);
            },
        );
    }
    REPORT.call_once(|| {
        let plain = collect(0);
        let reserved = collect(6);
        eprintln!(
            "[ablation] yacc, 8-entry buffer @4-cycle retire: merged plain={} with-6-reserve={}",
            plain.merged, reserved.merged
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partial_writeback,
    bench_associativity_vs_policy,
    bench_write_buffer_reserve
);
criterion_main!(benches);
