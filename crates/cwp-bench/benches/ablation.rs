//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench measures a *metric* (printed once per run) while the harness
//! times the simulation, so a bench run doubles as an ablation report:
//!
//! * sub-block dirty bits (partial write-backs) vs whole-line write-backs
//! * associativity's effect on write-cache-relative effectiveness
//! * the combined write-buffer/write-cache reserve of Section 3.2

use cwp_buffers::CoalescingWriteBuffer;
use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_core::sim::simulate;
use cwp_trace::{workloads, Scale};

fn bench_partial_writeback() {
    let group = cwp_bench::group("ablation-partial-writeback");
    for partial in [false, true] {
        let config = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(64)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .partial_writeback(partial)
            .build()
            .unwrap();
        let name = if partial {
            "subblock-dirty-bits"
        } else {
            "whole-line"
        };
        group.bench(name, || {
            let out = simulate(workloads::ccom().as_ref(), Scale::Test, &config);
            out.traffic_total.write_back.bytes
        });
    }

    let config = CacheConfig::builder()
        .size_bytes(8 * 1024)
        .line_bytes(64)
        .write_hit(WriteHitPolicy::WriteBack)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .unwrap();
    let whole = simulate(workloads::ccom().as_ref(), Scale::Test, &config);
    let sub = simulate(
        workloads::ccom().as_ref(),
        Scale::Test,
        &config.to_builder().partial_writeback(true).build().unwrap(),
    );
    eprintln!(
        "[ablation] 64B lines, ccom: write-back bytes whole-line={} subblock={} ({:.1}% saved)",
        whole.traffic_total.write_back.bytes,
        sub.traffic_total.write_back.bytes,
        100.0
            * (1.0
                - sub.traffic_total.write_back.bytes as f64
                    / whole.traffic_total.write_back.bytes as f64)
    );
}

fn bench_associativity_vs_policy() {
    let group = cwp_bench::group("ablation-associativity");
    let fetches = |ways: u32| {
        let config = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .associativity(ways)
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::WriteValidate)
            .build()
            .unwrap();
        simulate(workloads::liver().as_ref(), Scale::Test, &config)
            .stats
            .fetches
    };
    for ways in [1u32, 4] {
        group.bench(&format!("{ways}-way"), || fetches(ways));
    }
    eprintln!(
        "[ablation] liver, 8KB write-validate: fetches 1-way={} 4-way={} (paper studied direct-mapped only)",
        fetches(1),
        fetches(4)
    );
}

fn bench_write_buffer_reserve() {
    // The Section 3.2 combined structure: an m-entry buffer that drains
    // only above n pending entries behaves like a write cache in front of
    // a write buffer.
    let group = cwp_bench::group("ablation-wb-reserve");

    let collect = |reserve: usize| {
        let mut stream = Vec::new();
        {
            let mut cycle = 0u64;
            let mut sink = |r: cwp_trace::MemRef| {
                cycle += u64::from(r.before_insts);
                if r.is_write() {
                    stream.push((cycle, r.addr));
                }
            };
            workloads::yacc().run(Scale::Test, &mut sink);
        }
        let mut wb = CoalescingWriteBuffer::new(8, 16, 4).with_reserve(reserve);
        for (cycle, addr) in stream {
            wb.write(cycle, addr);
        }
        wb.flush();
        wb.stats()
    };

    for reserve in [0usize, 6] {
        group.bench(&format!("reserve-{reserve}"), || collect(reserve).merged);
    }
    let plain = collect(0);
    let reserved = collect(6);
    eprintln!(
        "[ablation] yacc, 8-entry buffer @4-cycle retire: merged plain={} with-6-reserve={}",
        plain.merged, reserved.merged
    );
}

fn main() {
    bench_partial_writeback();
    bench_associativity_vs_policy();
    bench_write_buffer_reserve();
}
