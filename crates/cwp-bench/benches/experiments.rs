//! One Criterion benchmark per paper table/figure.
//!
//! Each benchmark regenerates its experiment end to end (fresh lab, test
//! scale), so `cargo bench -p cwp-bench --bench experiments` both exercises
//! every harness and reports how long each figure costs to reproduce.
//! Scale up with the `figures` binary for paper-fidelity data.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cwp_core::{experiments, Lab};
use cwp_trace::Scale;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for e in experiments::all() {
        group.bench_function(e.id, |b| {
            b.iter(|| {
                let mut lab = Lab::new(Scale::Test);
                let tables = e.run(&mut lab);
                assert!(!tables.is_empty() && !tables[0].is_empty());
                tables.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
