//! One benchmark per paper table/figure.
//!
//! Each benchmark regenerates its experiment end to end (fresh lab, test
//! scale), so `cargo bench -p cwp-bench --bench experiments` both exercises
//! every harness and reports how long each figure costs to reproduce.
//! Scale up with the `figures` binary for paper-fidelity data.

use cwp_core::{experiments, Lab};
use cwp_trace::Scale;

fn main() {
    let group = cwp_bench::group("experiments");
    for e in experiments::all() {
        group.bench(e.id, || {
            let mut lab = Lab::new(Scale::Test);
            let tables = e.run(&mut lab);
            assert!(!tables.is_empty() && !tables[0].is_empty());
            tables.len()
        });
    }
}
