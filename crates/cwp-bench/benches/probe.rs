//! Probe overhead: the zero-cost-when-disabled contract, measured.
//!
//! The observability layer claims that a `NullProbe` cache is the same
//! cache — `Probe::ENABLED` is false, so every emission site compiles
//! to nothing. This bench drives the same workload through:
//!
//! - `null`: the default `NullProbe` (what every figure run uses);
//! - `counting`: a `CountingProbe` tallying events by class;
//! - `sampler`: the `WindowSampler` that backs `windows.csv`.
//!
//! `null` must track the untraced baseline within noise; `counting` and
//! `sampler` show the real price of observation when it is switched on.

use cwp_cache::{CacheConfig, NullProbe};
use cwp_core::sim::CacheSink;
use cwp_obs::{CountingProbe, WindowSampler};
use cwp_trace::{workloads, Scale, TraceSink};

/// A sink that only counts, to size the trace once up front.
struct CountSink(u64);

impl TraceSink for CountSink {
    #[inline]
    fn record(&mut self, _r: cwp_trace::MemRef) {
        self.0 += 1;
    }
}

fn main() {
    let config = CacheConfig::default();
    let grr = workloads::grr();
    let mut probe = CountSink(0);
    grr.run(Scale::Test, &mut probe);
    let refs = probe.0;

    let group = cwp_bench::group("probe-8kb-16b");
    group.bench_throughput("null", refs, || {
        let mut sink = CacheSink::with_probe(config, NullProbe);
        grr.run(Scale::Test, &mut sink);
        sink.cache().stats().accesses()
    });
    group.bench_throughput("counting", refs, || {
        let mut sink = CacheSink::with_probe(config, CountingProbe::default());
        grr.run(Scale::Test, &mut sink);
        sink.cache().stats().accesses()
    });
    group.bench_throughput("sampler", refs, || {
        let mut sink = CacheSink::with_probe(config, WindowSampler::new(4096, 512));
        grr.run(Scale::Test, &mut sink);
        sink.cache().stats().accesses()
    });
}
