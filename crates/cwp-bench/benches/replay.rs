//! Record-once/replay-many vs regenerate-every-point.
//!
//! Measures the fig10-style sweep (eight cache sizes, 16B lines,
//! write-through + fetch-on-write) three ways, per workload at quick
//! scale:
//!
//! - `regenerate`: the pre-trace-store behaviour — run the workload
//!   generator once per sweep point, eight generator runs in all;
//! - `replay`: record the trace once, then one replay pass per point;
//! - `fanout`: record once, then a single pass through a bank of eight
//!   caches (`simulate_many`).
//!
//! With `CWP_BENCH_JSON=path` the per-workload medians and the overall
//! sweep speedup land in a JSON report (see `results/BENCH_replay.json`).

use std::time::{Duration, Instant};

use cwp_cache::CacheConfig;
use cwp_core::sim::{replay, simulate, simulate_many};
use cwp_trace::{workloads, RecordedTrace, Scale};

const SCALE: Scale = Scale::Quick;

/// Figure 10's size sweep: 1KB..128KB, 16B lines, write-through +
/// fetch-on-write (the `figures fig10` geometry).
fn sweep_configs() -> Vec<CacheConfig> {
    [1, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&kb| {
            CacheConfig::builder()
                .size_bytes(kb * 1024)
                .line_bytes(16)
                .write_hit(cwp_cache::WriteHitPolicy::WriteThrough)
                .write_miss(cwp_cache::WriteMissPolicy::FetchOnWrite)
                .build()
                .expect("fig10 geometry is valid")
        })
        .collect()
}

/// Median of a few timed runs of `f` (at least one; more while the
/// budget lasts).
fn median_secs<T>(budget: Duration, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.is_empty() || (start.elapsed() < budget && samples.len() < 25) {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    workload: &'static str,
    refs: u64,
    record_s: f64,
    regenerate_s: f64,
    replay_s: f64,
    fanout_s: f64,
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("CWP_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );
    let configs = sweep_configs();
    let mut rows = Vec::new();
    for w in workloads::suite() {
        let record_s = median_secs(budget, || RecordedTrace::record(w.as_ref(), SCALE));
        let trace = RecordedTrace::record(w.as_ref(), SCALE);
        let regenerate_s = median_secs(budget, || {
            configs
                .iter()
                .map(|c| simulate(w.as_ref(), SCALE, c).stats.accesses())
                .sum::<u64>()
        });
        let replay_s = median_secs(budget, || {
            configs
                .iter()
                .map(|c| replay(&trace, c).stats.accesses())
                .sum::<u64>()
        });
        let fanout_s = median_secs(budget, || {
            simulate_many(&trace, &configs)
                .iter()
                .map(|o| o.stats.accesses())
                .sum::<u64>()
        });
        let row = Row {
            workload: w.name(),
            refs: trace.len() as u64,
            record_s,
            regenerate_s,
            replay_s,
            fanout_s,
        };
        println!(
            "replay-sweep/{}: {} refs, record {:.1} ms, regenerate {:.1} ms, \
             record+replay {:.1} ms ({:.2}x), record+fanout {:.1} ms ({:.2}x)",
            row.workload,
            row.refs,
            row.record_s * 1e3,
            row.regenerate_s * 1e3,
            (row.record_s + row.replay_s) * 1e3,
            row.regenerate_s / (row.record_s + row.replay_s),
            (row.record_s + row.fanout_s) * 1e3,
            row.regenerate_s / (row.record_s + row.fanout_s),
        );
        rows.push(row);
    }

    let regenerate: f64 = rows.iter().map(|r| r.regenerate_s).sum();
    let replay_total: f64 = rows.iter().map(|r| r.record_s + r.replay_s).sum();
    let fanout_total: f64 = rows.iter().map(|r| r.record_s + r.fanout_s).sum();
    let speedup = regenerate / replay_total.min(fanout_total);
    println!(
        "replay-sweep/suite: regenerate {:.1} ms, replay {:.1} ms, fanout {:.1} ms, \
         best speedup {speedup:.2}x",
        regenerate * 1e3,
        replay_total * 1e3,
        fanout_total * 1e3,
    );

    if let Ok(path) = std::env::var("CWP_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str("  \"bench\": \"replay-vs-regenerate\",\n");
        json.push_str(&format!("  \"scale\": \"{SCALE}\",\n"));
        json.push_str(&format!("  \"sweep_points\": {},\n", configs.len()));
        json.push_str("  \"workloads\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workload\": \"{}\", \"refs\": {}, \"record_s\": {:.6}, \
                 \"regenerate_s\": {:.6}, \"replay_s\": {:.6}, \"fanout_s\": {:.6}}}{}\n",
                r.workload,
                r.refs,
                r.record_s,
                r.regenerate_s,
                r.replay_s,
                r.fanout_s,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"suite_regenerate_s\": {regenerate:.6},\n  \"suite_replay_s\": {replay_total:.6},\n  \
             \"suite_fanout_s\": {fanout_total:.6},\n  \"suite_speedup\": {speedup:.3}\n}}\n"
        ));
        std::fs::write(&path, json).expect("write CWP_BENCH_JSON report");
        println!("replay-sweep: wrote {path}");
    }
}
