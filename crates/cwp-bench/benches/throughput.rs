//! Simulator and generator throughput benchmarks.
//!
//! These answer the engineering question behind the whole harness: how
//! many references per second can the cache model sustain, and how fast
//! can each workload generator emit its trace?

use cwp_cache::{Cache, CacheConfig, ConfigError, WriteHitPolicy, WriteMissPolicy};
use cwp_core::sim::CacheSink;
use cwp_trace::{workloads, Scale, TraceSink};

/// A sink that only counts, to isolate generator cost.
struct CountSink(u64);

impl TraceSink for CountSink {
    #[inline]
    fn record(&mut self, _r: cwp_trace::MemRef) {
        self.0 += 1;
    }
}

fn bench_generators() {
    let group = cwp_bench::group("generate");
    for w in workloads::suite() {
        let mut probe = CountSink(0);
        w.run(Scale::Test, &mut probe);
        group.bench_throughput(w.name(), probe.0, || {
            let mut sink = CountSink(0);
            w.run(Scale::Test, &mut sink);
            sink.0
        });
    }
}

fn bench_cache_policies() {
    let group = cwp_bench::group("simulate-8kb-16b");
    let grr = workloads::grr();
    let mut probe = CountSink(0);
    grr.run(Scale::Test, &mut probe);
    let refs = probe.0;

    for hit in WriteHitPolicy::ALL {
        for miss in WriteMissPolicy::ALL {
            let config = match CacheConfig::builder()
                .write_hit(hit)
                .write_miss(miss)
                .build()
            {
                Ok(c) => c,
                Err(ConfigError::PolicyConflict { .. }) => continue,
                Err(e) => panic!("{e}"),
            };
            group.bench_throughput(&format!("{hit}+{miss}"), refs, || {
                let mut sink = CacheSink::new(config);
                grr.run(Scale::Test, &mut sink);
                sink.cache().stats().accesses()
            });
        }
    }
}

fn bench_associativity() {
    let group = cwp_bench::group("simulate-associativity");
    let met = workloads::met();
    for ways in [1u32, 2, 4, 8] {
        let config = CacheConfig::builder().associativity(ways).build().unwrap();
        group.bench(&format!("{ways}-way"), || {
            let mut sink = CacheSink::new(config);
            met.run(Scale::Test, &mut sink);
            sink.cache().stats().accesses()
        });
    }
}

fn bench_raw_cache_ops() {
    let group = cwp_bench::group("raw-ops");
    let config = CacheConfig::default();
    group.bench_throughput("sequential-read-100k", 100_000, || {
        let mut cache = Cache::with_memory(config);
        let mut buf = [0u8; 8];
        for i in 0..100_000u64 {
            cache.read(i * 8 % 65_536, &mut buf);
        }
        cache.stats().reads
    });
    group.bench_throughput("sequential-write-100k", 100_000, || {
        let mut cache = Cache::with_memory(config);
        for i in 0..100_000u64 {
            cache.write(i * 8 % 65_536, &[1u8; 8]);
        }
        cache.stats().writes
    });
}

fn main() {
    bench_generators();
    bench_cache_policies();
    bench_associativity();
    bench_raw_cache_ops();
}
