//! Simulator and generator throughput benchmarks.
//!
//! These answer the engineering question behind the whole harness: how
//! many references per second can the cache model sustain, and how fast
//! can each workload generator emit its trace?

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cwp_cache::{Cache, CacheConfig, ConfigError, WriteHitPolicy, WriteMissPolicy};
use cwp_core::sim::CacheSink;
use cwp_trace::{workloads, Scale, TraceSink};

/// A sink that only counts, to isolate generator cost.
struct CountSink(u64);

impl TraceSink for CountSink {
    #[inline]
    fn record(&mut self, _r: cwp_trace::MemRef) {
        self.0 += 1;
    }
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for w in workloads::suite() {
        let mut probe = CountSink(0);
        w.run(Scale::Test, &mut probe);
        group.throughput(Throughput::Elements(probe.0));
        group.bench_function(BenchmarkId::from_parameter(w.name()), |b| {
            b.iter(|| {
                let mut sink = CountSink(0);
                w.run(Scale::Test, &mut sink);
                sink.0
            });
        });
    }
    group.finish();
}

fn bench_cache_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate-8kb-16b");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let grr = workloads::grr();
    let mut probe = CountSink(0);
    grr.run(Scale::Test, &mut probe);
    group.throughput(Throughput::Elements(probe.0));

    for hit in WriteHitPolicy::ALL {
        for miss in WriteMissPolicy::ALL {
            let config = match CacheConfig::builder()
                .write_hit(hit)
                .write_miss(miss)
                .build()
            {
                Ok(c) => c,
                Err(ConfigError::PolicyConflict { .. }) => continue,
                Err(e) => panic!("{e}"),
            };
            group.bench_function(BenchmarkId::from_parameter(format!("{hit}+{miss}")), |b| {
                b.iter(|| {
                    let mut sink = CacheSink::new(config);
                    grr.run(Scale::Test, &mut sink);
                    sink.cache().stats().accesses()
                });
            });
        }
    }
    group.finish();
}

fn bench_associativity(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate-associativity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let met = workloads::met();
    for ways in [1u32, 2, 4, 8] {
        let config = CacheConfig::builder().associativity(ways).build().unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("{ways}-way")), |b| {
            b.iter(|| {
                let mut sink = CacheSink::new(config);
                met.run(Scale::Test, &mut sink);
                sink.cache().stats().accesses()
            });
        });
    }
    group.finish();
}

fn bench_raw_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("raw-ops");
    group.throughput(Throughput::Elements(100_000));
    let config = CacheConfig::default();
    group.bench_function("sequential-read-100k", |b| {
        b.iter(|| {
            let mut cache = Cache::with_memory(config);
            let mut buf = [0u8; 8];
            for i in 0..100_000u64 {
                cache.read(i * 8 % 65_536, &mut buf);
            }
            cache.stats().reads
        });
    });
    group.bench_function("sequential-write-100k", |b| {
        b.iter(|| {
            let mut cache = Cache::with_memory(config);
            for i in 0..100_000u64 {
                cache.write(i * 8 % 65_536, &[1u8; 8]);
            }
            cache.stats().writes
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_cache_policies,
    bench_associativity,
    bench_raw_cache_ops
);
criterion_main!(benches);
