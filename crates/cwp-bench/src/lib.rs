//! A tiny self-contained benchmark harness.
//!
//! The benches in `benches/` were originally Criterion benches; to keep
//! the build hermetic (no network, no external crates) they now run on
//! this `std::time::Instant` harness instead. It keeps the parts that
//! matter here — warm-up, repeated samples, median-of-samples reporting,
//! and element throughput — and drops the statistics machinery.
//!
//! Set `CWP_BENCH_MS` to change the per-benchmark sampling budget
//! (default 300 ms; e.g. `CWP_BENCH_MS=2000` for steadier numbers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of benchmarks, printed as `group/name` lines.
pub struct Group {
    name: String,
    budget: Duration,
}

/// Starts a benchmark group.
pub fn group(name: &str) -> Group {
    let ms = std::env::var("CWP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Group {
        name: name.to_string(),
        budget: Duration::from_millis(ms),
    }
}

impl Group {
    /// Runs `f` repeatedly within the sampling budget and prints its
    /// median sample time.
    pub fn bench<T>(&self, name: &str, f: impl FnMut() -> T) {
        self.run(name, None, f);
    }

    /// Like [`Group::bench`], also reporting `elements / sample` as a
    /// throughput rate.
    pub fn bench_throughput<T>(&self, name: &str, elements: u64, f: impl FnMut() -> T) {
        self.run(name, Some(elements), f);
    }

    fn run<T>(&self, name: &str, elements: Option<u64>, mut f: impl FnMut() -> T) {
        // One untimed warm-up to populate caches and page in code.
        black_box(f());
        let mut samples = Vec::new();
        let start = Instant::now();
        while samples.is_empty() || (start.elapsed() < self.budget && samples.len() < 1000) {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mut line = format!(
            "{}/{}: median {} (min {}, n={})",
            self.name,
            name,
            fmt_duration(median),
            fmt_duration(min),
            samples.len()
        );
        if let Some(n) = elements {
            let rate = n as f64 / median.as_secs_f64();
            line.push_str(&format!(", {} elem/s", fmt_rate(rate)));
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_cover_the_ranges() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
        assert_eq!(fmt_rate(1_500.0), "1.5k");
        assert_eq!(fmt_rate(42.0), "42");
    }

    #[test]
    fn bench_runs_and_reports() {
        let g = group("selftest");
        let mut count = 0u64;
        g.bench("noop", || {
            count += 1;
            count
        });
        assert!(count >= 2, "warm-up plus at least one sample");
    }
}
