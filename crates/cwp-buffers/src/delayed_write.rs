//! The delayed-write (last-write) register for write-back caches
//! (Figure 4).

use std::fmt;

/// How many cache cycles a store consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreCycles {
    /// Probe and (delayed) data write overlapped: one cycle.
    One,
    /// The data write could not be overlapped: probe then write.
    Two,
}

impl StoreCycles {
    /// The cycle count as a number.
    pub fn cycles(self) -> u32 {
        match self {
            StoreCycles::One => 1,
            StoreCycles::Two => 2,
        }
    }
}

impl fmt::Display for StoreCycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycle(s)", self.cycles())
    }
}

/// Counters reported by a [`DelayedWriteRegister`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelayedWriteStats {
    /// Stores processed.
    pub stores: u64,
    /// Stores that completed in one cycle.
    pub one_cycle: u64,
    /// Stores that needed a second cycle.
    pub two_cycle: u64,
    /// Reads satisfied by forwarding from the register.
    pub forwards: u64,
}

impl DelayedWriteStats {
    /// Fraction of stores that took a single cycle.
    pub fn one_cycle_fraction(&self) -> Option<f64> {
        (self.stores > 0).then(|| self.one_cycle as f64 / self.stores as f64)
    }

    /// Average cycles per store.
    pub fn cycles_per_store(&self) -> Option<f64> {
        (self.stores > 0).then(|| (self.one_cycle + 2 * self.two_cycle) as f64 / self.stores as f64)
    }
}

/// Models the delayed-write method of Figure 4 (used in the VAX 8800).
///
/// A write-back (or set-associative) cache must probe its tags before
/// writing data, which naively costs two cycles per store. With separate
/// tag and data address lines, the probe of the *current* store can happen
/// in the same cycle as the data write of the *previous* store — as long as
/// the previous probe hit and no intervening miss replaced its line. A
/// comparator on the register forwards its data to reads of the same
/// address.
///
/// # Examples
///
/// ```
/// use cwp_buffers::{DelayedWriteRegister, StoreCycles};
///
/// let mut dw = DelayedWriteRegister::new();
/// assert_eq!(dw.store(0x100, true), StoreCycles::One);
/// assert_eq!(dw.store(0x108, true), StoreCycles::One, "steady state");
/// dw.read_miss();
/// assert_eq!(dw.store(0x110, true), StoreCycles::Two, "pipeline broken");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelayedWriteRegister {
    /// Address of the store whose data write is still pending.
    pending: Option<u64>,
    /// A miss since the pending probe: its line may have been replaced, so
    /// the overlapped write is no longer known-safe.
    disturbed: bool,
    stats: DelayedWriteStats,
}

impl DelayedWriteRegister {
    /// Creates an idle register.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters so far.
    pub fn stats(&self) -> DelayedWriteStats {
        self.stats
    }

    /// The check-bit bill for the register's single 8B datum. Until its
    /// delayed write retires, the register holds the only copy of the
    /// store's data, so it requires ECC like any dirty storage
    /// (Section 3).
    pub fn protection_budget(&self) -> crate::protection::BufferProtection {
        crate::protection::BufferProtection::ecc(1, 8)
    }

    /// Processes a store whose tag probe `probe_hit` says hit or missed.
    ///
    /// Returns the cycles the store consumed at the cache interface. Store
    /// misses themselves cost [`StoreCycles::Two`] here; the miss penalty
    /// proper is accounted by the cache model, not the register.
    pub fn store(&mut self, addr: u64, probe_hit: bool) -> StoreCycles {
        self.stats.stores += 1;
        let overlapped = self.pending.is_none() || !self.disturbed;
        let cycles = if probe_hit && overlapped {
            StoreCycles::One
        } else {
            StoreCycles::Two
        };
        match cycles {
            StoreCycles::One => self.stats.one_cycle += 1,
            StoreCycles::Two => self.stats.two_cycle += 1,
        }
        // The previous pending write is retired this cycle; the current
        // store becomes pending if its probe hit (a missing line is
        // handled by the miss path instead).
        self.pending = probe_hit.then_some(addr);
        self.disturbed = false;
        cycles
    }

    /// Processes a read probe; returns `true` if the register forwarded
    /// its pending data (same address).
    pub fn read(&mut self, addr: u64) -> bool {
        let hit = self.pending == Some(addr);
        if hit {
            self.stats.forwards += 1;
        }
        hit
    }

    /// Notes a read miss: the pending write's line may be replaced, so the
    /// next store cannot blindly overlap its data write.
    pub fn read_miss(&mut self) {
        if self.pending.is_some() {
            self.disturbed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_hitting_stores_take_one_cycle() {
        let mut dw = DelayedWriteRegister::new();
        for i in 0..10u64 {
            assert_eq!(dw.store(i * 8, true), StoreCycles::One);
        }
        assert_eq!(dw.stats().one_cycle_fraction(), Some(1.0));
        assert_eq!(dw.stats().cycles_per_store(), Some(1.0));
    }

    #[test]
    fn store_misses_take_two_cycles() {
        let mut dw = DelayedWriteRegister::new();
        assert_eq!(dw.store(0x0, false), StoreCycles::Two);
        // The next hitting store can still overlap (nothing pending).
        assert_eq!(dw.store(0x8, true), StoreCycles::One);
    }

    #[test]
    fn read_miss_breaks_the_overlap_once() {
        let mut dw = DelayedWriteRegister::new();
        dw.store(0x0, true);
        dw.read_miss();
        assert_eq!(dw.store(0x8, true), StoreCycles::Two);
        assert_eq!(
            dw.store(0x10, true),
            StoreCycles::One,
            "recovers immediately"
        );
    }

    #[test]
    fn read_miss_with_nothing_pending_is_harmless() {
        let mut dw = DelayedWriteRegister::new();
        dw.read_miss();
        assert_eq!(dw.store(0x0, true), StoreCycles::One);
    }

    #[test]
    fn register_forwards_reads_of_the_pending_address() {
        let mut dw = DelayedWriteRegister::new();
        dw.store(0x40, true);
        assert!(dw.read(0x40));
        assert!(!dw.read(0x48));
        assert_eq!(dw.stats().forwards, 1);
    }

    #[test]
    fn empty_stats_yield_none() {
        let s = DelayedWriteStats::default();
        assert_eq!(s.one_cycle_fraction(), None);
        assert_eq!(s.cycles_per_store(), None);
    }
}
