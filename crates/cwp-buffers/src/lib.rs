//! Write-side support structures from Sections 3.1-3.3 of the paper.
//!
//! High-performance write-through and write-back caches each need a small
//! amount of help to perform well (the paper's Table 3):
//!
//! | feature | write-back | write-through |
//! |---|---|---|
//! | exit-traffic buffer | [`VictimBuffer`] | [`CoalescingWriteBuffer`] |
//! | bandwidth improvement | [`DelayedWriteRegister`] | [`WriteCache`] |
//!
//! * [`CoalescingWriteBuffer`] is the timing instrument behind Figure 5:
//!   it shows that a plain coalescing write buffer merges few writes unless
//!   it is kept nearly full, at ruinous stall cost.
//! * [`WriteCache`] is the paper's proposed structure (Figure 6): a small
//!   fully-associative cache of 8B lines behind a write-through cache that
//!   removes most of the write traffic a write-back cache would.
//! * [`VictimBuffer`] holds dirty victims so a write-back cache can start
//!   its fetch immediately.
//! * [`DelayedWriteRegister`] gives a write-back cache one-cycle stores by
//!   writing the *previous* store's data during the current store's probe
//!   (Figure 4, as in the VAX 8800).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delayed_write;
pub mod protection;
pub mod victim_buffer;
pub mod write_buffer;
pub mod write_cache;

pub use cwp_cache::Protection;
pub use delayed_write::{DelayedWriteRegister, DelayedWriteStats, StoreCycles};
pub use protection::BufferProtection;
pub use victim_buffer::VictimBuffer;
pub use write_buffer::{CoalescingWriteBuffer, WriteBufferStats};
pub use write_cache::{WriteCache, WriteCacheStats};
