//! Check-bit requirements for the write-side buffers (Section 3).
//!
//! The paper's reliability argument extends past the cache proper. Every
//! structure in this crate holds *dirty* data: write data or dirty victims
//! that exist nowhere downstream until the entry drains. Parity can only
//! *detect* an error in such an entry — there is no clean copy anywhere to
//! refetch — so, unlike a write-through cache (which gets away with byte
//! parity precisely because all its lines are clean), these buffers need
//! single-error-correcting ECC no matter which cache sits above them.
//!
//! Each structure reports its bill through a `protection_budget()` method
//! returning a [`BufferProtection`], so experiments can fold buffer check
//! bits into a hierarchy's total SRAM budget alongside
//! [`cwp_cache::overhead::bit_budget`].

use cwp_cache::Protection;

/// The check-bit bill for one buffer structure at full capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferProtection {
    /// Protection the structure needs for single-bit-error safety.
    /// Always [`Protection::EccPerWord`]: buffer entries are dirty by
    /// definition, and dirty data under mere parity is unrecoverable.
    pub required: Protection,
    /// Data bits the structure holds at capacity.
    pub data_bits: u64,
    /// Check bits at the required protection level (6 per 32-bit word).
    pub check_bits: u64,
}

impl BufferProtection {
    /// The ECC bill for `entries` entries of `entry_bytes` each.
    pub(crate) fn ecc(entries: u64, entry_bytes: u64) -> Self {
        let words = entries * entry_bytes.div_ceil(4);
        BufferProtection {
            required: Protection::EccPerWord,
            data_bits: entries * entry_bytes * 8,
            check_bits: words * u64::from(Protection::EccPerWord.bits_per_word()),
        }
    }

    /// Check bits as a fraction of data bits (0 for an empty structure).
    pub fn overhead_fraction(&self) -> f64 {
        if self.data_bits == 0 {
            0.0
        } else {
            self.check_bits as f64 / self.data_bits as f64
        }
    }

    /// Total protected SRAM bits.
    pub fn total_bits(&self) -> u64 {
        self.data_bits + self.check_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_bill_matches_the_papers_arithmetic() {
        // 5 entries × 8B = 10 words; 6 check bits per word.
        let b = BufferProtection::ecc(5, 8);
        assert_eq!(b.required, Protection::EccPerWord);
        assert_eq!(b.data_bits, 5 * 8 * 8);
        assert_eq!(b.check_bits, 10 * 6);
        // "6 bits per 32 bit word" = 18.75% of the data bits.
        assert!((b.overhead_fraction() - 0.1875).abs() < 1e-12);
        assert_eq!(b.total_bits(), b.data_bits + b.check_bits);
    }

    #[test]
    fn sub_word_entries_round_up_to_a_word() {
        let b = BufferProtection::ecc(3, 2);
        assert_eq!(
            b.check_bits,
            3 * 6,
            "each 2B entry still needs a word's ECC"
        );
    }

    #[test]
    fn empty_structure_has_a_zero_bill() {
        let b = BufferProtection::ecc(0, 8);
        assert_eq!(b.total_bits(), 0);
        assert_eq!(b.overhead_fraction(), 0.0);
    }
}
