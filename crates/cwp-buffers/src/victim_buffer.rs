//! The dirty-victim buffer for write-back caches.

use std::collections::VecDeque;

use cwp_mem::NextLevel;

/// A small FIFO buffer holding dirty victims between a write-back cache
/// and the next level.
///
/// "In the event of a miss a dirty victim can be transferred into the
/// dirty victim buffer at the same time as the fetch of the requested word
/// is begun" (Section 3) — the buffer lets the fetch start immediately and
/// empties when the next level is free. The paper argues a single entry
/// usually suffices; [`VictimBuffer::forced_drains`] counts how often a
/// deeper buffer would have helped.
///
/// Implements [`NextLevel`] so it slots directly under a `cwp-cache`
/// cache. Fetches drain overlapping pending victims first (preserving
/// transparency) and drain the remainder after the fetch is served, when
/// the next level is free.
#[derive(Debug, Clone)]
pub struct VictimBuffer<N> {
    capacity: usize,
    pending: VecDeque<(u64, Vec<u8>)>,
    forced_drains: u64,
    accepted: u64,
    peak_occupancy: usize,
    next: N,
}

impl<N: NextLevel> VictimBuffer<N> {
    /// Creates a buffer holding up to `capacity` victims.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, next: N) -> Self {
        assert!(capacity > 0, "a victim buffer needs at least one entry");
        VictimBuffer {
            capacity,
            pending: VecDeque::with_capacity(capacity),
            forced_drains: 0,
            accepted: 0,
            peak_occupancy: 0,
            next,
        }
    }

    /// Victims accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Times a victim arrived with the buffer full, forcing a synchronous
    /// drain (a stall in real hardware).
    pub fn forced_drains(&self) -> u64 {
        self.forced_drains
    }

    /// Highest occupancy reached.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// The check-bit bill for this structure's SRAM, given the line size
    /// of the cache above it. A victim buffer holds only dirty victims —
    /// the sole copies of their data — so it requires ECC regardless of
    /// the cache's own protection (Section 3).
    pub fn protection_budget(&self, line_bytes: u32) -> crate::protection::BufferProtection {
        crate::protection::BufferProtection::ecc(self.capacity as u64, u64::from(line_bytes))
    }

    /// Shared access to the next level.
    pub fn next_level(&self) -> &N {
        &self.next
    }

    /// Mutable access to the next level.
    pub fn next_level_mut(&mut self) -> &mut N {
        &mut self.next
    }

    /// Unwraps the buffer, returning the next level. Pending victims are
    /// *not* drained; call [`VictimBuffer::flush`] first if it matters.
    pub fn into_next_level(self) -> N {
        self.next
    }

    /// Drains every pending victim downstream.
    pub fn flush(&mut self) {
        while let Some((addr, data)) = self.pending.pop_front() {
            self.next.write_back(addr, &data);
        }
    }

    fn drain_overlapping(&mut self, addr: u64, len: usize) {
        let end = addr + len as u64;
        // Drain in FIFO order up to and including the last overlapping
        // entry, preserving write ordering.
        while let Some(pos) = self
            .pending
            .iter()
            .position(|(a, d)| *a < end && a + d.len() as u64 > addr)
        {
            for _ in 0..=pos {
                let (a, d) = self.pending.pop_front().expect("position was in range");
                self.next.write_back(a, &d);
            }
        }
    }
}

impl<N: NextLevel> NextLevel for VictimBuffer<N> {
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]) {
        self.drain_overlapping(addr, buf.len());
        self.next.fetch_line(addr, buf);
        // "Once the next lower level is ready to service another request,
        // the dirty victim can be emptied out" (Section 3): after serving
        // the fetch, the next level is free, so pending victims drain.
        self.flush();
    }

    fn write_back(&mut self, addr: u64, data: &[u8]) {
        self.accepted += 1;
        if self.pending.len() == self.capacity {
            self.forced_drains += 1;
            if let Some((a, d)) = self.pending.pop_front() {
                self.next.write_back(a, &d);
            }
        }
        self.pending.push_back((addr, data.to_vec()));
        self.peak_occupancy = self.peak_occupancy.max(self.pending.len());
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) {
        // Ordering: a write-through must not overtake a pending victim of
        // the same address.
        self.drain_overlapping(addr, data.len());
        self.next.write_through(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_mem::{MainMemory, TrafficRecorder};

    fn vb(cap: usize) -> VictimBuffer<TrafficRecorder<MainMemory>> {
        VictimBuffer::new(cap, TrafficRecorder::new(MainMemory::new()))
    }

    #[test]
    fn victims_wait_in_the_buffer() {
        let mut b = vb(2);
        b.write_back(0x00, &[1u8; 16]);
        assert_eq!(b.next_level().traffic().write_back.transactions, 0);
        assert_eq!(b.peak_occupancy(), 1);
        b.flush();
        assert_eq!(b.next_level().traffic().write_back.transactions, 1);
    }

    #[test]
    fn overflow_forces_a_drain() {
        let mut b = vb(1);
        b.write_back(0x00, &[1u8; 16]);
        b.write_back(0x10, &[2u8; 16]);
        assert_eq!(b.forced_drains(), 1);
        assert_eq!(b.next_level().inner().read_byte(0x00), 1);
    }

    #[test]
    fn fetch_drains_overlapping_victims_first() {
        let mut b = vb(4);
        b.write_back(0x20, &[9u8; 16]);
        let mut buf = [0u8; 16];
        b.fetch_line(0x20, &mut buf);
        assert_eq!(buf, [9u8; 16], "fetch observed the pending victim");
    }

    #[test]
    fn victims_drain_once_the_next_level_served_the_fetch() {
        // The usual miss sequence: the victim enters the buffer while the
        // fetch starts, and drains as soon as the next level is free.
        let mut b = vb(4);
        b.write_back(0x20, &[9u8; 16]);
        let mut buf = [0u8; 16];
        b.fetch_line(0x100, &mut buf);
        assert_eq!(b.next_level().traffic().write_back.transactions, 1);
        assert_eq!(b.forced_drains(), 0, "the common case never stalls");
    }

    #[test]
    fn write_through_respects_victim_ordering() {
        let mut b = vb(4);
        b.write_back(0x40, &[1u8; 16]);
        b.write_through(0x44, &[2u8; 4]);
        // The victim must land first, then the write-through over it.
        assert_eq!(b.next_level().inner().read_byte(0x44), 2);
        assert_eq!(b.next_level().inner().read_byte(0x40), 1);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = VictimBuffer::new(0, MainMemory::new());
    }
}
