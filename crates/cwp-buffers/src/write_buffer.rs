//! The coalescing write buffer timing model (Figure 5).

use std::collections::VecDeque;
use std::fmt;

use cwp_obs::event::Event;
use cwp_obs::{NullProbe, Probe};

/// Counters reported by a [`CoalescingWriteBuffer`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteBufferStats {
    /// Writes presented to the buffer.
    pub writes: u64,
    /// Writes merged into an already-pending entry.
    pub merged: u64,
    /// Entries retired to the next level.
    pub retired: u64,
    /// Cycles the processor stalled because the buffer was full.
    pub stall_cycles: u64,
}

impl WriteBufferStats {
    /// Fraction of writes merged (Figure 5's left axis).
    pub fn merged_fraction(&self) -> Option<f64> {
        (self.writes > 0).then(|| self.merged as f64 / self.writes as f64)
    }

    /// Stall cycles per instruction, given the run's instruction count
    /// (Figure 5's right axis).
    pub fn stall_cpi(&self, instructions: u64) -> f64 {
        self.stall_cycles as f64 / instructions as f64
    }
}

impl fmt::Display for WriteBufferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} writes, {} merged, {} retired, {} stall cycles",
            self.writes, self.merged, self.retired, self.stall_cycles
        )
    }
}

/// A coalescing write buffer with a fixed retirement interval.
///
/// Entries are one cache line wide; a write whose line matches a pending
/// entry merges into it. The buffer retires its oldest entry every
/// `retire_interval` cycles (modelling the next level's service rate), and
/// a write arriving to a full buffer stalls until the in-progress
/// retirement completes.
///
/// Following the paper's method, time is the dynamic instruction count:
/// "since cache miss service effectively stops processor execution in many
/// processors, cache misses were ignored. This allows a fixed time between
/// writes to be used as a reasonable model of the write buffer operation."
///
/// # Examples
///
/// ```
/// use cwp_buffers::CoalescingWriteBuffer;
///
/// let mut wb = CoalescingWriteBuffer::new(8, 16, 5);
/// wb.write(0, 0x100);
/// wb.write(1, 0x108); // same 16B line: merges
/// assert_eq!(wb.stats().merged, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoalescingWriteBuffer<P = NullProbe> {
    entries: usize,
    line_shift: u32,
    retire_interval: u64,
    /// Entries below this occupancy are not retired, turning the head of
    /// the buffer into a write cache (the Section 3.2 combined structure).
    reserve: usize,
    pending: VecDeque<u64>,
    /// Completion time of the retirement in progress, if any.
    now: u64,
    next_retire: u64,
    stats: WriteBufferStats,
    probe: P,
}

impl CoalescingWriteBuffer {
    /// Creates a buffer of `entries` lines of `line_bytes` each, retiring
    /// one entry every `retire_interval` cycles. An interval of 0 retires
    /// entries immediately (no merging can occur).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or `line_bytes` is not a power of two.
    pub fn new(entries: usize, line_bytes: u32, retire_interval: u64) -> Self {
        CoalescingWriteBuffer::with_probe(entries, line_bytes, retire_interval, NullProbe)
    }
}

impl<P: Probe> CoalescingWriteBuffer<P> {
    /// As [`CoalescingWriteBuffer::new`], but attaches `probe` to observe
    /// enqueue/merge/stall/retire events (see [`cwp_obs::event::Event`]).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or `line_bytes` is not a power of two.
    pub fn with_probe(entries: usize, line_bytes: u32, retire_interval: u64, probe: P) -> Self {
        assert!(entries > 0, "a write buffer needs at least one entry");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        CoalescingWriteBuffer {
            entries,
            line_shift: line_bytes.trailing_zeros(),
            retire_interval,
            reserve: 0,
            pending: VecDeque::with_capacity(entries),
            now: 0,
            next_retire: retire_interval,
            stats: WriteBufferStats::default(),
            probe,
        }
    }

    /// Consumes the buffer, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    #[inline]
    fn emit(&mut self, event: Event) {
        if P::ENABLED {
            self.probe.on_event(&event);
        }
    }

    /// Converts the buffer into the combined write-cache/write-buffer of
    /// Section 3.2: entries are only retired while more than `reserve`
    /// are pending, so the most recent `reserve` entries linger and keep
    /// merging.
    ///
    /// # Panics
    ///
    /// Panics if `reserve >= entries`.
    pub fn with_reserve(mut self, reserve: usize) -> Self {
        assert!(
            reserve < self.entries,
            "reserve must leave at least one retirable entry"
        );
        self.reserve = reserve;
        self
    }

    /// Number of pending entries.
    pub fn occupancy(&self) -> usize {
        self.pending.len()
    }

    /// The pending entries' line addresses in retirement (FIFO) order,
    /// oldest first. Exposed so order-sensitive property tests can
    /// check the queue discipline, not just the counters.
    pub fn pending_lines(&self) -> Vec<u64> {
        self.pending.iter().map(|&l| l << self.line_shift).collect()
    }

    /// The counters so far.
    pub fn stats(&self) -> WriteBufferStats {
        self.stats
    }

    /// The check-bit bill for this structure's SRAM. Pending write-buffer
    /// entries are un-retired write data — dirty by definition — so they
    /// require ECC even behind a parity-protected write-through cache
    /// (Section 3).
    pub fn protection_budget(&self) -> crate::protection::BufferProtection {
        crate::protection::BufferProtection::ecc(self.entries as u64, 1u64 << self.line_shift)
    }

    /// Retires entries whose service slots have elapsed by `cycle`.
    fn drain_until(&mut self, cycle: u64) {
        if self.retire_interval == 0 {
            while self.pending.pop_front().is_some() {
                self.stats.retired += 1;
                let occupancy = self.pending.len() as u32;
                self.emit(Event::BufferRetire { occupancy });
            }
            return;
        }
        while self.pending.len() > self.reserve && self.next_retire <= cycle {
            self.pending.pop_front();
            self.stats.retired += 1;
            self.next_retire += self.retire_interval;
            let occupancy = self.pending.len() as u32;
            self.emit(Event::BufferRetire { occupancy });
        }
        if self.pending.len() <= self.reserve {
            // Nothing eligible: the retirement clock restarts when the
            // next retirable entry arrives.
            self.next_retire = self.next_retire.max(cycle + self.retire_interval);
        }
    }

    /// Presents a write at time `cycle` (in instructions). Returns the
    /// number of stall cycles this write incurred.
    ///
    /// `cycle` values must be non-decreasing across calls.
    pub fn write(&mut self, cycle: u64, addr: u64) -> u64 {
        self.now = self.now.max(cycle);
        self.drain_until(self.now);
        self.stats.writes += 1;
        let line = addr >> self.line_shift;

        if self.pending.iter().any(|&l| l == line) {
            self.stats.merged += 1;
            self.emit(Event::BufferMerge {
                line_addr: line << self.line_shift,
            });
            return 0;
        }

        let mut stalled = 0u64;
        if self.pending.len() == self.entries {
            // Full: wait for the in-progress retirement.
            let resume = self.next_retire;
            stalled = resume.saturating_sub(self.now);
            self.now = self.now.max(resume);
            self.drain_until(self.now);
            self.stats.stall_cycles += stalled;
            self.emit(Event::BufferStall { cycles: stalled });
        }
        self.pending.push_back(line);
        let occupancy = self.pending.len() as u32;
        self.emit(Event::BufferEnqueue {
            line_addr: line << self.line_shift,
            occupancy,
        });
        stalled
    }

    /// Drains everything, counting the retirements (end of run).
    pub fn flush(&mut self) {
        while self.pending.pop_front().is_some() {
            self.stats.retired += 1;
            let occupancy = self.pending.len() as u32;
            self.emit(Event::BufferRetire { occupancy });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_writes_merge() {
        let mut wb = CoalescingWriteBuffer::new(4, 16, 100);
        wb.write(0, 0x100);
        wb.write(1, 0x104);
        wb.write(2, 0x10c);
        assert_eq!(wb.stats().merged, 2);
        assert_eq!(wb.occupancy(), 1);
    }

    #[test]
    fn zero_interval_never_merges_or_stalls() {
        let mut wb = CoalescingWriteBuffer::new(2, 16, 0);
        for i in 0..100u64 {
            // Alternate between two lines: plenty of merge opportunity.
            assert_eq!(wb.write(i, (i % 2) * 16), 0);
        }
        assert_eq!(wb.stats().merged, 0);
        assert_eq!(wb.stats().stall_cycles, 0);
    }

    #[test]
    fn full_buffer_stalls_until_a_retirement() {
        let mut wb = CoalescingWriteBuffer::new(2, 16, 10);
        wb.write(0, 0x00); // retires at t=10
        wb.write(1, 0x10); // retires at t=20
                           // Distinct line at t=2 with the buffer full: stall until t=10.
        let stall = wb.write(2, 0x20);
        assert_eq!(stall, 8);
        assert_eq!(wb.stats().stall_cycles, 8);
        assert_eq!(wb.occupancy(), 2);
    }

    #[test]
    fn slow_retirement_enables_merging() {
        // Writes every cycle to the same two lines, retire every 50.
        let mut fast = CoalescingWriteBuffer::new(8, 16, 1);
        let mut slow = CoalescingWriteBuffer::new(8, 16, 50);
        for i in 0..200u64 {
            let addr = (i % 2) * 16;
            fast.write(i * 4, addr);
            slow.write(i * 4, addr);
        }
        assert!(slow.stats().merged > fast.stats().merged);
    }

    #[test]
    fn reserve_keeps_recent_entries_for_merging() {
        // With a reserve, entries linger even when the next level is fast.
        let mut plain = CoalescingWriteBuffer::new(8, 16, 2);
        let mut reserved = CoalescingWriteBuffer::new(8, 16, 2).with_reserve(6);
        for i in 0..400u64 {
            let addr = (i % 5) * 16;
            plain.write(i * 8, addr);
            reserved.write(i * 8, addr);
        }
        assert!(
            reserved.stats().merged > plain.stats().merged,
            "reserved {} vs plain {}",
            reserved.stats().merged,
            plain.stats().merged
        );
    }

    #[test]
    fn flush_retires_the_remainder() {
        let mut wb = CoalescingWriteBuffer::new(4, 16, 1000);
        wb.write(0, 0x00);
        wb.write(1, 0x10);
        wb.flush();
        assert_eq!(wb.occupancy(), 0);
        assert_eq!(wb.stats().retired, 2);
    }

    #[test]
    fn merged_fraction_and_cpi() {
        let s = WriteBufferStats {
            writes: 100,
            merged: 25,
            retired: 75,
            stall_cycles: 50,
        };
        assert_eq!(s.merged_fraction(), Some(0.25));
        assert_eq!(s.stall_cpi(1000), 0.05);
        assert_eq!(WriteBufferStats::default().merged_fraction(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = CoalescingWriteBuffer::new(0, 16, 1);
    }

    #[test]
    #[should_panic(expected = "reserve")]
    fn reserve_must_leave_room() {
        let _ = CoalescingWriteBuffer::new(4, 16, 1).with_reserve(4);
    }

    #[test]
    fn probe_events_mirror_buffer_stats() {
        use cwp_obs::RecordingProbe;
        let mut wb = CoalescingWriteBuffer::with_probe(4, 16, 7, RecordingProbe::default());
        for i in 0..500u64 {
            wb.write(i, (i % 9) * 8);
        }
        wb.flush();
        let stats = wb.stats();
        let probe = wb.into_probe();
        let mut enqueues = 0u64;
        let mut merges = 0u64;
        let mut retires = 0u64;
        let mut stall_cycles = 0u64;
        let mut max_occupancy = 0u32;
        for e in &probe.events {
            match *e {
                Event::BufferEnqueue { occupancy, .. } => {
                    enqueues += 1;
                    max_occupancy = max_occupancy.max(occupancy);
                }
                Event::BufferMerge { .. } => merges += 1,
                Event::BufferRetire { .. } => retires += 1,
                Event::BufferStall { cycles } => stall_cycles += cycles,
                _ => panic!("unexpected event {e:?}"),
            }
        }
        assert_eq!(enqueues + merges, stats.writes);
        assert_eq!(merges, stats.merged);
        assert_eq!(retires, stats.retired);
        assert_eq!(stall_cycles, stats.stall_cycles);
        assert_eq!(enqueues, retires, "flush drains every enqueued entry");
        assert!(max_occupancy <= 4, "occupancy bounded by capacity");
        assert!(
            stats.merged > 0 && stats.stall_cycles > 0,
            "workload exercises both paths"
        );
    }
}
