//! The write cache (Figure 6): the paper's proposed structure.

use std::fmt;

use cwp_mem::NextLevel;

/// Counters reported by a [`WriteCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteCacheStats {
    /// Write (sub-)accesses presented.
    pub writes: u64,
    /// Writes merged into a pending entry.
    pub merged: u64,
    /// Entries evicted to the next level during operation.
    pub evictions: u64,
    /// Entries written out by [`WriteCache::flush`].
    pub drained: u64,
    /// Reads supplied (wholly or partly) from pending entries.
    pub read_forwards: u64,
}

impl WriteCacheStats {
    /// Write transactions that left the structure.
    pub fn outbound(&self) -> u64 {
        self.evictions + self.drained
    }

    /// Fraction of writes removed: `1 - outbound / writes` (Figure 7).
    pub fn removed_fraction(&self) -> Option<f64> {
        (self.writes > 0).then(|| 1.0 - self.outbound() as f64 / self.writes as f64)
    }
}

impl fmt::Display for WriteCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} writes, {} merged, {} out",
            self.writes,
            self.merged,
            self.outbound()
        )
    }
}

#[derive(Debug, Clone)]
struct Slot {
    /// Line number (address >> line shift).
    line: u64,
    /// Per-byte validity of `data`.
    mask: u64,
    data: Vec<u8>,
    last_used: u64,
}

/// A small fully-associative cache of write data (Figure 6).
///
/// Sits behind a write-through data cache and in front of the write buffer
/// or next level: every store enters it; stores to a pending line merge;
/// when a store misses and the write cache is full, the LRU entry is
/// written out. Unlike a write buffer, entries *stay* until evicted, so a
/// handful of 8B entries captures most write locality: "a write cache of
/// only five 8B lines can eliminate 50% of the writes for most programs"
/// (Section 3.2).
///
/// The structure is data-carrying and implements [`NextLevel`], so it can
/// be stacked under a `cwp-cache` cache; reads passing through it are
/// overlaid with pending write data ("data to cache if miss in data cache
/// but hit in write cache", Figure 6).
///
/// # Examples
///
/// ```
/// use cwp_buffers::WriteCache;
/// use cwp_mem::{MainMemory, NextLevel};
///
/// let mut wc = WriteCache::new(5, 8, MainMemory::new());
/// wc.write_through(0x100, &[1u8; 8]);
/// wc.write_through(0x100, &[2u8; 8]); // merges: no traffic downstream
/// assert_eq!(wc.stats().merged, 1);
/// assert_eq!(wc.stats().outbound(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct WriteCache<N> {
    entries: usize,
    line_bytes: u32,
    line_shift: u32,
    slots: Vec<Slot>,
    tick: u64,
    stats: WriteCacheStats,
    next: N,
}

impl<N: NextLevel> WriteCache<N> {
    /// Creates a write cache of `entries` lines of `line_bytes` each
    /// (the paper uses 8B lines: "no writes larger than 8B exist in most
    /// architectures, and write paths leaving chips are often 8B").
    ///
    /// `entries == 0` is allowed and turns the structure into a plain
    /// pass-through, the zero point of Figure 7.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two in 1..=64.
    pub fn new(entries: usize, line_bytes: u32, next: N) -> Self {
        assert!(
            line_bytes.is_power_of_two() && (1..=64).contains(&line_bytes),
            "write-cache line size must be a power of two in 1..=64"
        );
        WriteCache {
            entries,
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            slots: Vec::with_capacity(entries),
            tick: 0,
            stats: WriteCacheStats::default(),
            next,
        }
    }

    /// The counters so far.
    pub fn stats(&self) -> WriteCacheStats {
        self.stats
    }

    /// Pending entries.
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// The check-bit bill for this structure's SRAM. Write-cache entries
    /// hold write data that exists nowhere downstream until eviction —
    /// dirty by definition — so they require ECC even behind a
    /// parity-protected write-through cache (Section 3).
    pub fn protection_budget(&self) -> crate::protection::BufferProtection {
        crate::protection::BufferProtection::ecc(self.entries as u64, u64::from(self.line_bytes))
    }

    /// Shared access to the next level.
    pub fn next_level(&self) -> &N {
        &self.next
    }

    /// Mutable access to the next level.
    pub fn next_level_mut(&mut self) -> &mut N {
        &mut self.next
    }

    /// Unwraps the write cache, returning the next level. Pending entries
    /// are *not* drained; call [`WriteCache::flush`] first if it matters.
    pub fn into_next_level(self) -> N {
        self.next
    }

    /// Writes out and clears every pending entry.
    pub fn flush(&mut self) {
        for i in 0..self.slots.len() {
            self.stats.drained += 1;
            Self::emit(
                &mut self.next,
                &self.slots[i],
                self.line_bytes,
                self.line_shift,
            );
        }
        self.slots.clear();
    }

    /// Writes the valid byte-runs of a slot downstream.
    fn emit(next: &mut N, slot: &Slot, line_bytes: u32, line_shift: u32) {
        let base = slot.line << line_shift;
        let mut i = 0u32;
        while i < line_bytes {
            if slot.mask & (1 << i) != 0 {
                let start = i;
                while i < line_bytes && slot.mask & (1 << i) != 0 {
                    i += 1;
                }
                next.write_through(
                    base + u64::from(start),
                    &slot.data[start as usize..i as usize],
                );
            } else {
                i += 1;
            }
        }
    }

    fn write_piece(&mut self, addr: u64, data: &[u8]) {
        self.stats.writes += 1;
        if self.entries == 0 {
            self.stats.evictions += 1;
            self.next.write_through(addr, data);
            return;
        }
        let line = addr >> self.line_shift;
        let offset = (addr & (u64::from(self.line_bytes) - 1)) as usize;
        self.tick += 1;
        let tick = self.tick;

        if let Some(slot) = self.slots.iter_mut().find(|s| s.line == line) {
            self.stats.merged += 1;
            slot.data[offset..offset + data.len()].copy_from_slice(data);
            slot.mask |= (((1u128 << data.len()) - 1) as u64) << offset;
            slot.last_used = tick;
            return;
        }

        if self.slots.len() == self.entries {
            let (lru, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .expect("buffer is full, so nonempty");
            let victim = self.slots.swap_remove(lru);
            self.stats.evictions += 1;
            Self::emit(&mut self.next, &victim, self.line_bytes, self.line_shift);
        }

        let mut slot = Slot {
            line,
            mask: (((1u128 << data.len()) - 1) as u64) << offset,
            data: vec![0u8; self.line_bytes as usize],
            last_used: tick,
        };
        slot.data[offset..offset + data.len()].copy_from_slice(data);
        self.slots.push(slot);
    }

    fn write_split(&mut self, addr: u64, data: &[u8]) {
        let line = u64::from(self.line_bytes);
        let mut pos = 0usize;
        while pos < data.len() {
            let a = addr + pos as u64;
            let room = (line - (a & (line - 1))) as usize;
            let take = room.min(data.len() - pos);
            self.write_piece(a, &data[pos..pos + take]);
            pos += take;
        }
    }
}

impl<N: NextLevel> NextLevel for WriteCache<N> {
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]) {
        self.next.fetch_line(addr, buf);
        // Overlay pending write data that intersects the fetched range.
        let end = addr + buf.len() as u64;
        let mut forwarded = false;
        for slot in &self.slots {
            let base = slot.line << self.line_shift;
            for i in 0..self.line_bytes as u64 {
                if slot.mask & (1 << i) != 0 {
                    let a = base + i;
                    if a >= addr && a < end {
                        buf[(a - addr) as usize] = slot.data[i as usize];
                        forwarded = true;
                    }
                }
            }
        }
        if forwarded {
            self.stats.read_forwards += 1;
        }
    }

    fn write_back(&mut self, addr: u64, data: &[u8]) {
        self.write_split(addr, data);
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) {
        self.write_split(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_mem::{MainMemory, TrafficRecorder};

    fn wc(entries: usize) -> WriteCache<TrafficRecorder<MainMemory>> {
        WriteCache::new(entries, 8, TrafficRecorder::new(MainMemory::new()))
    }

    #[test]
    fn merging_suppresses_downstream_traffic() {
        let mut w = wc(4);
        for _ in 0..10 {
            w.write_through(0x40, &[7u8; 8]);
        }
        assert_eq!(w.stats().writes, 10);
        assert_eq!(w.stats().merged, 9);
        assert_eq!(w.next_level().traffic().write_through.transactions, 0);
        w.flush();
        assert_eq!(w.next_level().traffic().write_through.transactions, 1);
        assert_eq!(w.stats().removed_fraction(), Some(0.9));
    }

    #[test]
    fn lru_entry_is_evicted_when_full() {
        let mut w = wc(2);
        w.write_through(0x00, &[1u8; 8]);
        w.write_through(0x08, &[2u8; 8]);
        w.write_through(0x00, &[3u8; 8]); // touch 0x00: 0x08 becomes LRU
        w.write_through(0x10, &[4u8; 8]); // evicts 0x08
        assert_eq!(w.stats().evictions, 1);
        assert_eq!(w.next_level().inner().read_byte(0x08), 2);
        assert_eq!(
            w.next_level().inner().read_byte(0x00),
            0,
            "0x00 still pending"
        );
    }

    #[test]
    fn reads_see_pending_write_data() {
        let mut w = wc(4);
        w.write_through(0x20, &[9u8; 4]);
        let mut buf = [0u8; 8];
        w.fetch_line(0x20, &mut buf);
        assert_eq!(&buf[..4], &[9u8; 4]);
        assert_eq!(&buf[4..], &[0u8; 4]);
        assert_eq!(w.stats().read_forwards, 1);
    }

    #[test]
    fn zero_entry_cache_is_a_pass_through() {
        let mut w = wc(0);
        w.write_through(0x00, &[1u8; 8]);
        w.write_through(0x00, &[2u8; 8]);
        assert_eq!(w.stats().merged, 0);
        assert_eq!(w.stats().removed_fraction(), Some(0.0));
        assert_eq!(w.next_level().traffic().write_through.transactions, 2);
    }

    #[test]
    fn partial_entries_emit_only_valid_runs() {
        let mut w = wc(1);
        w.write_through(0x00, &[5u8; 4]); // low half of the 8B line
        w.write_through(0x10, &[6u8; 8]); // evicts it
        let t = w.next_level().traffic();
        assert_eq!(t.write_through.transactions, 1);
        assert_eq!(t.write_through.bytes, 4, "only the valid 4 bytes move");
    }

    #[test]
    fn wide_writes_split_across_entries() {
        let mut w = WriteCache::new(4, 4, TrafficRecorder::new(MainMemory::new()));
        w.write_through(0x10, &[1u8; 8]); // two 4B entries
        assert_eq!(w.stats().writes, 2);
        assert_eq!(w.occupancy(), 2);
    }

    #[test]
    fn five_entry_cache_captures_cyclic_write_locality() {
        // Cycling over 5 lines with a 5-entry write cache: after warm-up
        // everything merges.
        let mut w = wc(5);
        for i in 0..500u64 {
            w.write_through((i % 5) * 8, &[i as u8; 8]);
        }
        w.flush();
        let frac = w.stats().removed_fraction().unwrap();
        assert!(frac > 0.98, "got {frac}");
    }
}
