//! Property tests for the write-side structures.

use cwp_buffers::{CoalescingWriteBuffer, DelayedWriteRegister, VictimBuffer, WriteCache};
use cwp_mem::{MainMemory, NextLevel};
use proptest::prelude::*;

/// A small write program: (gap, addr, len) triples.
fn writes_strategy() -> impl Strategy<Value = Vec<(u64, u64, usize)>> {
    prop::collection::vec(
        (
            0u64..20,
            0u64..256,
            prop::sample::select(vec![1usize, 2, 4, 8]),
        ),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_buffer_conserves_writes(ops in writes_strategy(), interval in 0u64..32, entries in 1usize..10) {
        let mut wb = CoalescingWriteBuffer::new(entries, 16, interval);
        let mut cycle = 0u64;
        for (gap, addr, _len) in &ops {
            cycle += gap;
            wb.write(cycle, *addr);
        }
        let before_flush = wb.stats();
        prop_assert_eq!(
            before_flush.merged + before_flush.retired + wb.occupancy() as u64,
            before_flush.writes,
            "every write merges, retires, or is still pending"
        );
        wb.flush();
        let s = wb.stats();
        prop_assert_eq!(wb.occupancy(), 0);
        prop_assert_eq!(s.merged + s.retired, s.writes);
        // Stalls can only happen when the buffer actually fills.
        if (s.writes - s.merged) <= entries as u64 {
            prop_assert_eq!(s.stall_cycles, 0);
        }
    }

    #[test]
    fn write_buffer_merging_is_monotone_in_interval(ops in writes_strategy(), entries in 2usize..9) {
        // A strictly slower next level can only increase merge opportunity.
        let run = |interval: u64| {
            let mut wb = CoalescingWriteBuffer::new(entries, 16, interval);
            let mut cycle = 0u64;
            for (gap, addr, _len) in &ops {
                cycle += gap;
                wb.write(cycle, *addr);
            }
            wb.stats().merged
        };
        prop_assert!(run(0) == 0);
        // Not strictly monotone point-wise in theory, but the extremes hold:
        // an infinite interval merges at least as much as a tiny one.
        prop_assert!(run(1_000_000) >= run(1));
    }

    #[test]
    fn write_cache_preserves_data(ops in writes_strategy(), entries in 0usize..8) {
        let mut wc = WriteCache::new(entries, 8, MainMemory::new());
        let mut golden = MainMemory::new();
        let mut seq = 1u8;
        for (_gap, addr, len) in &ops {
            let addr = addr & !(*len as u64 - 1);
            seq = seq.wrapping_add(1);
            let data = vec![seq; *len];
            wc.write_through(addr, &data);
            golden.write(addr, &data);
            // Reads through the write cache must observe pending data.
            let mut got = vec![0u8; *len];
            wc.fetch_line(addr, &mut got);
            prop_assert_eq!(&got, &data);
        }
        wc.flush();
        let mem = wc.into_next_level();
        for a in 0..256u64 {
            prop_assert_eq!(mem.read_byte(a), golden.read_byte(a), "byte {:#x}", a);
        }
    }

    #[test]
    fn write_cache_conserves_writes(ops in writes_strategy(), entries in 0usize..8) {
        let mut wc = WriteCache::new(entries, 8, MainMemory::new());
        for (_gap, addr, len) in &ops {
            let addr = addr & !(*len as u64 - 1);
            wc.write_through(addr, &vec![1u8; *len]);
        }
        wc.flush();
        let s = wc.stats();
        prop_assert_eq!(s.merged + s.evictions + s.drained, s.writes);
        prop_assert!(s.removed_fraction().unwrap_or(0.0) >= 0.0);
    }

    #[test]
    fn victim_buffer_preserves_order_and_data(ops in writes_strategy(), cap in 1usize..5) {
        let mut vb = VictimBuffer::new(cap, MainMemory::new());
        let mut golden = MainMemory::new();
        let mut seq = 1u8;
        for (i, (_gap, addr, len)) in ops.iter().enumerate() {
            let addr = addr & !(*len as u64 - 1);
            seq = seq.wrapping_add(1);
            let data = vec![seq; *len];
            if i % 3 == 0 {
                vb.write_through(addr, &data);
            } else {
                vb.write_back(addr, &data);
            }
            golden.write(addr, &data);
        }
        vb.flush();
        let mem = vb.into_next_level();
        for a in 0..256u64 {
            prop_assert_eq!(mem.read_byte(a), golden.read_byte(a), "byte {:#x}", a);
        }
    }

    #[test]
    fn delayed_write_cycles_partition_stores(hits in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut dw = DelayedWriteRegister::new();
        for (i, hit) in hits.iter().enumerate() {
            if i % 7 == 3 {
                dw.read_miss();
            }
            let _ = dw.store(i as u64 * 8, *hit);
        }
        let s = dw.stats();
        prop_assert_eq!(s.one_cycle + s.two_cycle, s.stores);
        prop_assert_eq!(s.stores, hits.len() as u64);
        let cps = s.cycles_per_store().unwrap();
        prop_assert!((1.0..=2.0).contains(&cps));
    }
}
