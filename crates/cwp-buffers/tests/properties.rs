//! Property tests for the write-side structures.
//!
//! Formerly driven by proptest; now driven by the in-tree seeded
//! [`SplitMix64`] so the suite builds with no external crates. Each test
//! runs many independently-generated random programs.

use cwp_buffers::{
    CoalescingWriteBuffer, DelayedWriteRegister, Protection, VictimBuffer, WriteCache,
};
use cwp_mem::rng::SplitMix64;
use cwp_mem::{MainMemory, NextLevel};

/// A small write program: (gap, addr, len) triples.
fn gen_writes(rng: &mut SplitMix64) -> Vec<(u64, u64, usize)> {
    let n = 1 + rng.below(200);
    (0..n)
        .map(|_| {
            let gap = rng.below(20);
            let addr = rng.below(256);
            let len = [1usize, 2, 4, 8][rng.below(4) as usize];
            (gap, addr, len)
        })
        .collect()
}

#[test]
fn write_buffer_conserves_writes() {
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0001);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let interval = rng.below(32);
        let entries = 1 + rng.below(9) as usize;
        let mut wb = CoalescingWriteBuffer::new(entries, 16, interval);
        let mut cycle = 0u64;
        for &(gap, addr, _len) in &ops {
            cycle += gap;
            wb.write(cycle, addr);
        }
        let before_flush = wb.stats();
        assert_eq!(
            before_flush.merged + before_flush.retired + wb.occupancy() as u64,
            before_flush.writes,
            "every write merges, retires, or is still pending"
        );
        wb.flush();
        let s = wb.stats();
        assert_eq!(wb.occupancy(), 0);
        assert_eq!(s.merged + s.retired, s.writes);
        // Stalls can only happen when the buffer actually fills.
        if (s.writes - s.merged) <= entries as u64 {
            assert_eq!(s.stall_cycles, 0);
        }
    }
}

#[test]
fn write_buffer_merging_is_monotone_in_interval() {
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0002);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let entries = 2 + rng.below(7) as usize;
        // A strictly slower next level can only increase merge opportunity.
        let run = |interval: u64| {
            let mut wb = CoalescingWriteBuffer::new(entries, 16, interval);
            let mut cycle = 0u64;
            for &(gap, addr, _len) in &ops {
                cycle += gap;
                wb.write(cycle, addr);
            }
            wb.stats().merged
        };
        assert_eq!(run(0), 0);
        // Not strictly monotone point-wise in theory, but the extremes hold:
        // an infinite interval merges at least as much as a tiny one.
        assert!(run(1_000_000) >= run(1));
    }
}

#[test]
fn write_buffer_retires_in_fifo_order() {
    // The queue discipline, not just the counters: after any write, the
    // new pending list is the old one minus a (possibly empty) prefix of
    // retirements at the front, plus at most one enqueue at the back.
    // Entries are never reordered, replaced, or retired from the middle.
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0007);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let interval = rng.below(32);
        let entries = 1 + rng.below(9) as usize;
        let mut wb = CoalescingWriteBuffer::new(entries, 16, interval);
        let mut cycle = 0u64;
        for &(gap, addr, _len) in &ops {
            cycle += gap;
            let before = wb.pending_lines();
            let merged_before = wb.stats().merged;
            wb.write(cycle, addr);
            let after = wb.pending_lines();
            // Split `after` into the surviving tail of `before` and the
            // at-most-one new entry at the back. A merge leaves the queue
            // content unchanged (bar front retirements); anything else
            // enqueues exactly one entry at the back — even a line that
            // was pending before but got retired by this call's drain.
            let survivors = if wb.stats().merged > merged_before {
                &after[..]
            } else {
                assert_eq!(
                    after.last(),
                    Some(&(addr & !15)),
                    "a non-merging write must enqueue its line at the back"
                );
                &after[..after.len() - 1]
            };
            assert!(
                survivors.len() <= before.len(),
                "pending entries appeared from nowhere"
            );
            let dropped = before.len() - survivors.len();
            assert_eq!(
                survivors,
                &before[dropped..],
                "retirement must pop the oldest entries, in order"
            );
            assert!(wb.occupancy() <= entries, "occupancy bounded by capacity");
        }
    }
}

#[test]
fn write_cache_entries_and_runs_respect_line_capacity() {
    // A merged entry can never hold more valid bytes than its line, and
    // every downstream transaction it emits is one contiguous run that
    // stays inside one line. Checked with a recording next level.
    #[derive(Default)]
    struct RunRecorder {
        runs: Vec<(u64, usize)>,
    }
    impl NextLevel for RunRecorder {
        fn fetch_line(&mut self, _addr: u64, buf: &mut [u8]) {
            buf.fill(0);
        }
        fn write_back(&mut self, addr: u64, data: &[u8]) {
            self.runs.push((addr, data.len()));
        }
        fn write_through(&mut self, addr: u64, data: &[u8]) {
            self.runs.push((addr, data.len()));
        }
    }
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0008);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let line_bytes = [4u32, 8, 16][rng.below(3) as usize];
        let entries = 1 + rng.below(6) as usize;
        let mut wc = WriteCache::new(entries, line_bytes, RunRecorder::default());
        for &(_gap, addr, len) in &ops {
            let len = len.min(line_bytes as usize);
            let addr = addr & !(len as u64 - 1);
            wc.write_through(addr, &vec![3u8; len]);
        }
        wc.flush();
        let recorder = wc.into_next_level();
        let line = u64::from(line_bytes);
        for &(addr, len) in &recorder.runs {
            assert!(
                len as u64 <= line,
                "a run of {len} bytes exceeds the {line}B line"
            );
            assert_eq!(
                addr / line,
                (addr + len as u64 - 1) / line,
                "run {addr:#x}+{len} crosses a line boundary"
            );
        }
    }
}

#[test]
fn write_cache_drained_bytes_reconcile_with_traffic() {
    // The Traffic counters agree with the entry counters: with aligned
    // 4B/8B writes on 8B lines every slot's valid mask is one contiguous
    // run, so one outbound entry is exactly one downstream transaction.
    // Byte conservation brackets the total: every distinct address
    // written leaves at least once (flush drains everything), and no
    // emitted byte exists without a write that set its valid bit.
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0009);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let entries = 1 + rng.below(6) as usize;
        let mut wc = WriteCache::new(entries, 8, cwp_mem::TrafficRecorder::new(MainMemory::new()));
        let mut touched = std::collections::BTreeSet::new();
        let mut written_bytes = 0u64;
        for &(_gap, addr, len) in &ops {
            let len = if len < 4 { 4 } else { len };
            let addr = addr & !(len as u64 - 1);
            wc.write_through(addr, &vec![9u8; len]);
            written_bytes += len as u64;
            for a in addr..addr + len as u64 {
                touched.insert(a);
            }
        }
        wc.flush();
        let s = wc.stats();
        let t = wc.next_level().traffic();
        assert_eq!(
            t.write_through.transactions,
            s.outbound(),
            "one transaction per evicted or drained entry"
        );
        assert!(
            t.write_through.bytes >= touched.len() as u64,
            "every distinct written address must drain at least once"
        );
        assert!(
            t.write_through.bytes <= written_bytes,
            "merging can only remove bytes, never invent them"
        );
    }
}

#[test]
fn write_cache_preserves_data() {
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0003);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let entries = rng.below(8) as usize;
        let mut wc = WriteCache::new(entries, 8, MainMemory::new());
        let mut golden = MainMemory::new();
        let mut seq = 1u8;
        for &(_gap, addr, len) in &ops {
            let addr = addr & !(len as u64 - 1);
            seq = seq.wrapping_add(1);
            let data = vec![seq; len];
            wc.write_through(addr, &data);
            golden.write(addr, &data);
            // Reads through the write cache must observe pending data.
            let mut got = vec![0u8; len];
            wc.fetch_line(addr, &mut got);
            assert_eq!(got, data);
        }
        wc.flush();
        let mem = wc.into_next_level();
        for a in 0..256u64 {
            assert_eq!(mem.read_byte(a), golden.read_byte(a), "byte {a:#x}");
        }
    }
}

#[test]
fn write_cache_conserves_writes() {
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0004);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let entries = rng.below(8) as usize;
        let mut wc = WriteCache::new(entries, 8, MainMemory::new());
        for &(_gap, addr, len) in &ops {
            let addr = addr & !(len as u64 - 1);
            wc.write_through(addr, &vec![1u8; len]);
        }
        wc.flush();
        let s = wc.stats();
        assert_eq!(s.merged + s.evictions + s.drained, s.writes);
        assert!(s.removed_fraction().unwrap_or(0.0) >= 0.0);
    }
}

#[test]
fn victim_buffer_preserves_order_and_data() {
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0005);
    for _case in 0..128 {
        let ops = gen_writes(&mut rng);
        let cap = 1 + rng.below(4) as usize;
        let mut vb = VictimBuffer::new(cap, MainMemory::new());
        let mut golden = MainMemory::new();
        let mut seq = 1u8;
        for (i, &(_gap, addr, len)) in ops.iter().enumerate() {
            let addr = addr & !(len as u64 - 1);
            seq = seq.wrapping_add(1);
            let data = vec![seq; len];
            if i % 3 == 0 {
                vb.write_through(addr, &data);
            } else {
                vb.write_back(addr, &data);
            }
            golden.write(addr, &data);
        }
        vb.flush();
        let mem = vb.into_next_level();
        for a in 0..256u64 {
            assert_eq!(mem.read_byte(a), golden.read_byte(a), "byte {a:#x}");
        }
    }
}

#[test]
fn delayed_write_cycles_partition_stores() {
    let mut rng = SplitMix64::seed_from_u64(0xb0f_0006);
    for _case in 0..128 {
        let n = 1 + rng.below(100) as usize;
        let hits: Vec<bool> = (0..n).map(|_| rng.gen_bool()).collect();
        let mut dw = DelayedWriteRegister::new();
        for (i, &hit) in hits.iter().enumerate() {
            if i % 7 == 3 {
                dw.read_miss();
            }
            let _ = dw.store(i as u64 * 8, hit);
        }
        let s = dw.stats();
        assert_eq!(s.one_cycle + s.two_cycle, s.stores);
        assert_eq!(s.stores, hits.len() as u64);
        let cps = s.cycles_per_store().expect("at least one store ran");
        assert!((1.0..=2.0).contains(&cps));
    }
}

#[test]
fn every_buffer_reports_an_ecc_requirement() {
    // Section 3: buffer entries are dirty by definition — the only copy
    // of their data — so each structure's bill demands ECC, never parity.
    let wc = WriteCache::new(5, 8, MainMemory::new());
    let vb = VictimBuffer::new(2, MainMemory::new());
    let wb = CoalescingWriteBuffer::new(6, 16, 5);
    let dw = DelayedWriteRegister::new();

    let bills = [
        wc.protection_budget(),
        vb.protection_budget(16),
        wb.protection_budget(),
        dw.protection_budget(),
    ];
    for bill in bills {
        assert_eq!(bill.required, Protection::EccPerWord);
        assert!(bill.check_bits > 0);
        // 6 check bits per 32-bit word: overhead is at least 18.75%.
        assert!(bill.overhead_fraction() >= 0.1875);
    }
    // The paper's 5-entry 8B-line write cache holds 10 words: 60 check bits.
    assert_eq!(wc.protection_budget().check_bits, 60);
    assert_eq!(vb.protection_budget(16).data_bits, 2 * 16 * 8);
    assert_eq!(dw.protection_budget().data_bits, 64);
}
