//! The cache engine: lookup, replacement, and the policy state machines.

use cwp_mem::{CwpError, MainMemory, NextLevel, Traffic, TrafficRecorder};
use cwp_obs::event::{AccessKind, Event, FaultOutcome, FetchCause, WriteMissAction};
use cwp_obs::{NullProbe, Probe};

use crate::config::CacheConfig;
use crate::fault::{FaultEvent, FaultInjector, FaultKind, Protection};
use crate::mask;
use crate::policy::{WriteHitPolicy, WriteMissPolicy};
use crate::stats::CacheStats;

/// Cap on the structured [`FaultEvent`] log; counters in
/// [`CacheStats::faults`] stay exact past it.
const FAULT_LOG_CAP: usize = 4096;

/// One outstanding injected bit flip, remembered so ECC correction can
/// undo it exactly.
#[derive(Debug, Clone, Copy)]
struct Flip {
    idx: usize,
    byte: u32,
    bit: u8,
}

/// Per-line metadata: tag plus per-byte valid and dirty masks.
#[derive(Debug, Clone, Copy)]
struct LineMeta {
    tag: u64,
    /// Byte `i` of the line holds correct data iff bit `i` is set.
    valid: u64,
    /// Byte `i` differs from the next level iff bit `i` is set.
    dirty: u64,
    /// LRU timestamp.
    last_used: u64,
}

impl LineMeta {
    const EMPTY: LineMeta = LineMeta {
        tag: 0,
        valid: 0,
        dirty: 0,
        last_used: 0,
    };
}

/// A simulated set-associative, data-carrying cache.
///
/// `N` is the next-lower level of the hierarchy: [`cwp_mem::MainMemory`],
/// a [`cwp_mem::TrafficRecorder`], a write buffer from `cwp-buffers`, or
/// another `Cache` (caches implement [`NextLevel`], so hierarchies stack).
///
/// `P` is an observability [`Probe`] receiving the typed event stream.
/// It defaults to [`NullProbe`], whose `ENABLED = false` makes every
/// emission site compile away — an uninstrumented `Cache<N>` is
/// bit-identical to the pre-observability engine. Build a probed cache
/// with [`Cache::with_probe`].
///
/// See the crate documentation for policy semantics and an example.
#[derive(Debug, Clone)]
pub struct Cache<N, P = NullProbe> {
    config: CacheConfig,
    line_bytes: u32,
    line_shift: u32,
    set_count: u32,
    ways: u32,
    meta: Vec<LineMeta>,
    data: Vec<u8>,
    scratch: Vec<u8>,
    tick: u64,
    stats: CacheStats,
    /// Per-line mask of bytes holding an injected (not yet resolved) flip.
    /// Always zero under [`Protection::None`]: without check bits the
    /// cache cannot know, so corruption is tracked only in the counters.
    faulty: Vec<u64>,
    /// Outstanding flips, for exact ECC un-flipping.
    flips: Vec<Flip>,
    injector: FaultInjector,
    fault_log: Vec<FaultEvent>,
    /// Site of the most recent data-loss event, for [`Cache::try_read`] /
    /// [`Cache::try_write`] error reporting.
    last_loss: Option<(u64, u32)>,
    next: N,
    probe: P,
}

/// The common standalone configuration: a cache over main memory with a
/// traffic recorder at its back side.
pub type MemoryCache = Cache<TrafficRecorder<MainMemory>>;

/// A [`MemoryCache`] carrying an observability probe.
pub type ProbedMemoryCache<P> = Cache<TrafficRecorder<MainMemory>, P>;

impl MemoryCache {
    /// Creates a cache backed by fresh [`MainMemory`] behind a
    /// [`TrafficRecorder`].
    pub fn with_memory(config: CacheConfig) -> Self {
        Cache::new(config, TrafficRecorder::new(MainMemory::new()))
    }
}

impl<P: Probe> ProbedMemoryCache<P> {
    /// Creates a probed cache backed by fresh [`MainMemory`] behind a
    /// [`TrafficRecorder`].
    pub fn with_memory_probed(config: CacheConfig, probe: P) -> Self {
        Cache::with_probe(config, TrafficRecorder::new(MainMemory::new()), probe)
    }
}

impl<N: NextLevel, P> Cache<TrafficRecorder<N>, P> {
    /// The back-side traffic recorded so far.
    pub fn traffic(&self) -> Traffic {
        self.next.traffic()
    }
}

impl<N: NextLevel> Cache<N> {
    /// Creates an unobserved cache with `next` as the next-lower
    /// hierarchy level.
    pub fn new(config: CacheConfig, next: N) -> Self {
        Cache::with_probe(config, next, NullProbe)
    }
}

impl<N: NextLevel, P: Probe> Cache<N, P> {
    /// Creates a cache whose event stream feeds `probe`.
    pub fn with_probe(config: CacheConfig, next: N, probe: P) -> Self {
        let line_bytes = config.line_bytes();
        let lines = config.lines() as usize;
        Cache {
            config,
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            set_count: config.sets(),
            ways: config.associativity(),
            meta: vec![LineMeta::EMPTY; lines],
            data: vec![0u8; lines * line_bytes as usize],
            scratch: vec![0u8; line_bytes as usize],
            tick: 0,
            stats: CacheStats::default(),
            faulty: vec![0u64; lines],
            flips: Vec::new(),
            injector: FaultInjector::new(config.fault_rate_ppm(), config.fault_seed()),
            fault_log: Vec::new(),
            last_loss: None,
            next,
            probe,
        }
    }

    /// Shared access to the probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Unwraps the cache into its next level and probe (e.g. to finish
    /// a streaming exporter). Dirty data still resident is *not*
    /// written back; call [`Cache::flush`] first if it matters.
    pub fn into_parts(self) -> (N, P) {
        (self.next, self.probe)
    }

    #[inline]
    fn emit(&mut self, event: Event) {
        if P::ENABLED {
            self.probe.on_event(&event);
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Event counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the event counters (the cache contents are untouched), e.g.
    /// to measure steady-state behaviour after a warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Shared access to the next level.
    pub fn next_level(&self) -> &N {
        &self.next
    }

    /// Mutable access to the next level.
    pub fn next_level_mut(&mut self) -> &mut N {
        &mut self.next
    }

    /// Unwraps the cache, returning the next level.
    ///
    /// Dirty data still resident is *not* written back; call
    /// [`Cache::flush`] first if it matters.
    pub fn into_next_level(self) -> N {
        self.next
    }

    /// Reads `buf.len()` bytes at `addr`, faulting lines in as needed.
    /// Accesses may span any number of lines; each line-sized piece counts
    /// as one access.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let line = u64::from(self.line_bytes);
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let room = (line - (a & (line - 1))) as usize;
            let take = room.min(buf.len() - pos);
            self.read_within(a, pos, pos + take, buf);
            pos += take;
        }
    }

    /// Writes `data` at `addr` under the configured policies. Accesses may
    /// span any number of lines; each line-sized piece counts as one
    /// access.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let line = u64::from(self.line_bytes);
        let mut pos = 0usize;
        while pos < data.len() {
            let a = addr + pos as u64;
            let room = (line - (a & (line - 1))) as usize;
            let take = room.min(data.len() - pos);
            self.write_within(a, &data[pos..pos + take]);
            pos += take;
        }
    }

    /// Writes back any dirty data and counts every resident line as a
    /// flush victim ("flush stop", Section 5).
    pub fn flush(&mut self) {
        for idx in 0..self.meta.len() {
            if self.faulty[idx] != 0 {
                self.resolve_fault(idx, true);
            }
            let m = self.meta[idx];
            if m.valid == 0 {
                continue;
            }
            self.stats.flush.total += 1;
            self.emit(Event::Eviction {
                line_addr: self.line_addr_of(idx),
                dirty_bytes: mask::count(m.dirty),
                flush: true,
            });
            if m.dirty != 0 {
                self.stats.flush.dirty += 1;
                self.stats.flush.dirty_bytes += u64::from(mask::count(m.dirty));
                self.write_back_line(idx);
            }
            self.meta[idx] = LineMeta::EMPTY;
        }
    }

    /// Invalidates everything without writing back (for tests and for
    /// modelling the error-recovery path of parity-protected write-through
    /// caches, which may discard any line).
    pub fn invalidate_all(&mut self) {
        for m in &mut self.meta {
            *m = LineMeta::EMPTY;
        }
        self.faulty.fill(0);
        self.flips.clear();
    }

    /// Returns `true` if every byte of `addr..addr+len` is resident and
    /// valid (a read would hit).
    pub fn is_resident(&self, addr: u64, len: usize) -> bool {
        let line = u64::from(self.line_bytes);
        let mut pos = 0usize;
        while pos < len {
            let a = addr + pos as u64;
            let room = (line - (a & (line - 1))) as usize;
            let take = room.min(len - pos);
            let (set, tag, offset) = self.decompose(a);
            let hit = self.find_way(set, tag).is_some_and(|way| {
                let m = &self.meta[self.line_index(set, way)];
                let need = mask::span(offset, take as u32);
                m.valid & need == need
            });
            if !hit {
                return false;
            }
            pos += take;
        }
        true
    }

    /// Executes a cache-line *allocation instruction* (Section 4): claims
    /// the line containing `addr` without fetching it, marking every byte
    /// valid (and dirty, under write-back). The line's data is zero-filled
    /// here, standing in for the undefined contents real hardware leaves.
    ///
    /// This models the instructions of the 801, MultiTitan, and PA-RISC
    /// that the paper compares write-validate against. It carries the
    /// hazards the paper lists: if the program does not overwrite the
    /// whole line (or is context-switched first), the allocation has
    /// destroyed the memory locations' old contents — the cache is no
    /// longer transparent. `examples/alloc_instructions.rs` demonstrates
    /// both the payoff and the hazard.
    ///
    /// Counts as neither a hit nor a miss; the allocation itself is
    /// tallied in [`CacheStats::line_allocations`].
    ///
    /// [`CacheStats::line_allocations`]: crate::stats::CacheStats::line_allocations
    pub fn allocate_line(&mut self, addr: u64) {
        let (set, tag, _offset) = self.decompose(addr);
        self.stats.line_allocations += 1;
        let line_addr = self.line_addr(set, tag);
        self.emit(Event::LineAllocated { line_addr });
        let way = match self.find_way(set, tag) {
            Some(way) => way,
            None => {
                let way = self.victim_way(set);
                self.evict(set, way);
                way
            }
        };
        let idx = self.line_index(set, way);
        // The whole data array entry is rewritten (with fresh check
        // bits), so any outstanding flip on this line is gone.
        self.drop_fault_state(idx);
        let full = mask::full(self.line_bytes);
        self.line_data(idx).fill(0);
        let write_back = self.config.write_hit() == WriteHitPolicy::WriteBack;
        let was_dirty = self.meta[idx].dirty != 0;
        let m = &mut self.meta[idx];
        m.tag = tag;
        m.valid = full;
        m.dirty = if write_back { full } else { 0 };
        if write_back && !was_dirty {
            self.emit(Event::LineDirtied { line_addr });
        }
        self.touch(set, way);
    }

    // ------------------------------------------------------------------
    // Auditor hooks: read-only views of per-line sub-block state
    // ------------------------------------------------------------------

    /// Read-only snapshots of every resident line's sub-block state, in
    /// set-major order. This is the window the invariant auditor and the
    /// differential-testing oracle use to check mask laws (valid ⊇ dirty,
    /// masks confined to the line) without touching engine internals.
    pub fn line_states(&self) -> Vec<LineState> {
        (0..self.meta.len())
            .filter(|&idx| self.meta[idx].valid != 0)
            .map(|idx| {
                let m = &self.meta[idx];
                LineState {
                    set: idx as u32 / self.ways,
                    way: idx as u32 % self.ways,
                    line_addr: self.line_addr_of(idx),
                    valid: m.valid,
                    dirty: m.dirty,
                }
            })
            .collect()
    }

    /// Checks the mask conservation laws on every resident line: the
    /// dirty mask is a subset of the valid mask, both masks are confined
    /// to the line's bytes, and a write-through cache holds no dirty
    /// bytes at all.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated law.
    pub fn audit_masks(&self) -> Result<(), String> {
        for idx in 0..self.meta.len() {
            self.audit_line(idx)?;
        }
        Ok(())
    }

    /// As [`Cache::audit_masks`], but restricted to the set(s) an access
    /// at `addr..addr + len` touches — O(ways), cheap enough to run
    /// after every reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated law.
    pub fn audit_masks_at(&self, addr: u64, len: usize) -> Result<(), String> {
        let last = addr + (len.max(1) as u64 - 1);
        let (first_set, _, _) = self.decompose(addr);
        let (last_set, _, _) = self.decompose(last);
        for set in [first_set, last_set] {
            for way in 0..self.ways {
                self.audit_line(self.line_index(set, way))?;
            }
            if first_set == last_set {
                break;
            }
        }
        Ok(())
    }

    fn audit_line(&self, idx: usize) -> Result<(), String> {
        let m = &self.meta[idx];
        let full = mask::full(self.line_bytes);
        let site = || {
            format!(
                "line {:#x} (set {}, way {})",
                self.line_addr_of(idx),
                idx as u32 / self.ways,
                idx as u32 % self.ways
            )
        };
        if m.valid & !full != 0 || m.dirty & !full != 0 {
            return Err(format!(
                "{}: mask bits past the {}B line (valid {:#x}, dirty {:#x})",
                site(),
                self.line_bytes,
                m.valid,
                m.dirty
            ));
        }
        if m.dirty & !m.valid != 0 {
            return Err(format!(
                "{}: dirty bytes outside the valid mask (valid {:#x}, dirty {:#x})",
                site(),
                m.valid,
                m.dirty
            ));
        }
        if self.config.write_hit() == WriteHitPolicy::WriteThrough && m.dirty != 0 {
            return Err(format!(
                "{}: dirty bytes ({:#x}) in a write-through cache",
                site(),
                m.dirty
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Address plumbing
    // ------------------------------------------------------------------

    #[inline]
    fn decompose(&self, addr: u64) -> (u32, u64, u32) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr % u64::from(self.set_count)) as u32;
        let tag = line_addr / u64::from(self.set_count);
        let offset = (addr & (u64::from(self.line_bytes) - 1)) as u32;
        (set, tag, offset)
    }

    #[inline]
    fn line_addr(&self, set: u32, tag: u64) -> u64 {
        (tag * u64::from(self.set_count) + u64::from(set)) << self.line_shift
    }

    #[inline]
    fn line_index(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    #[inline]
    fn line_data(&mut self, idx: usize) -> &mut [u8] {
        let lb = self.line_bytes as usize;
        &mut self.data[idx * lb..(idx + 1) * lb]
    }

    #[inline]
    fn find_way(&self, set: u32, tag: u64) -> Option<u32> {
        (0..self.ways).find(|&way| {
            let m = &self.meta[self.line_index(set, way)];
            m.valid != 0 && m.tag == tag
        })
    }

    /// Picks the way a miss in `set` would replace: an invalid way if one
    /// exists, else the least recently used.
    #[inline]
    fn victim_way(&self, set: u32) -> u32 {
        let mut best = 0u32;
        let mut best_used = u64::MAX;
        for way in 0..self.ways {
            let m = &self.meta[self.line_index(set, way)];
            if m.valid == 0 {
                return way;
            }
            if m.last_used < best_used {
                best_used = m.last_used;
                best = way;
            }
        }
        best
    }

    #[inline]
    fn touch(&mut self, set: u32, way: u32) {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.line_index(set, way);
        self.meta[idx].last_used = tick;
    }

    // ------------------------------------------------------------------
    // Line movement
    // ------------------------------------------------------------------

    /// Writes the dirty bytes of line `idx` to the next level.
    ///
    /// A partially valid line (possible only under write-validate) must
    /// write back only its dirty runs even in whole-line mode: the invalid
    /// bytes were never fetched and hold garbage. This is the paper's
    /// observation that "write-validate also requires that lower levels in
    /// the memory system support writes of partial cache lines".
    fn write_back_line(&mut self, idx: usize) {
        let m = self.meta[idx];
        let base = self.line_addr_of(idx);
        let lb = self.line_bytes;
        if self.config.partial_writeback() || m.valid != mask::full(lb) {
            let runs: Vec<(u32, u32)> = mask::runs(m.dirty, lb).collect();
            for (off, len) in runs {
                let lo = idx * lb as usize + off as usize;
                let chunk = self.data[lo..lo + len as usize].to_vec();
                self.emit(Event::WriteBack {
                    addr: base + u64::from(off),
                    bytes: len,
                });
                self.next.write_back(base + u64::from(off), &chunk);
            }
        } else {
            let lbu = lb as usize;
            let chunk = self.data[idx * lbu..(idx + 1) * lbu].to_vec();
            self.emit(Event::WriteBack {
                addr: base,
                bytes: lb,
            });
            self.next.write_back(base, &chunk);
        }
    }

    fn line_addr_of(&self, idx: usize) -> u64 {
        let set = idx as u32 / self.ways;
        let m = &self.meta[idx];
        self.line_addr(set, m.tag)
    }

    /// Evicts the line at (`set`, `way`), recording victim statistics and
    /// writing back dirty bytes. Leaves the way invalid.
    fn evict(&mut self, set: u32, way: u32) {
        let idx = self.line_index(set, way);
        if self.faulty[idx] != 0 {
            // Check bits are verified as the victim is read out. A lost
            // dirty line (parity) empties the way and is counted as a
            // fault loss rather than a victim.
            self.resolve_fault(idx, true);
        }
        let m = self.meta[idx];
        if m.valid != 0 {
            self.stats.victims.total += 1;
            self.emit(Event::Eviction {
                line_addr: self.line_addr_of(idx),
                dirty_bytes: mask::count(m.dirty),
                flush: false,
            });
            if m.dirty != 0 {
                self.stats.victims.dirty += 1;
                self.stats.victims.dirty_bytes += u64::from(mask::count(m.dirty));
                self.write_back_line(idx);
            }
        }
        self.meta[idx] = LineMeta::EMPTY;
    }

    /// Fetches the whole line for (`set`, `tag`) into `way`, merging with
    /// any valid bytes already present (write-validate refill semantics:
    /// valid bytes are newer than memory and must be kept).
    fn fetch_line(&mut self, set: u32, way: u32, tag: u64) {
        self.stats.fetches += 1;
        let addr = self.line_addr(set, tag);
        self.emit(Event::Fetch {
            cause: FetchCause::Demand,
            addr,
            bytes: self.line_bytes,
        });
        let idx = self.line_index(set, way);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.next.fetch_line(addr, &mut scratch);
        let keep = self.meta[idx].valid;
        let line = self.line_data(idx);
        for (i, b) in scratch.iter().enumerate() {
            if keep & (1u64 << i) == 0 {
                line[i] = *b;
            }
        }
        self.scratch = scratch;
        let full = mask::full(self.line_bytes);
        let m = &mut self.meta[idx];
        m.tag = tag;
        m.valid = full;
    }

    // ------------------------------------------------------------------
    // The access state machines
    // ------------------------------------------------------------------

    fn read_within(&mut self, addr: u64, lo: usize, hi: usize, out: &mut [u8]) {
        self.stats.reads += 1;
        self.emit(Event::Access {
            kind: AccessKind::Read,
            addr,
            bytes: (hi - lo) as u32,
        });
        self.maybe_inject();
        let (set, tag, offset) = self.decompose(addr);
        self.scrub(set, tag);
        let need = mask::span(offset, (hi - lo) as u32);

        let way = match self.find_way(set, tag) {
            Some(way) => {
                let idx = self.line_index(set, way);
                if self.meta[idx].valid & need == need {
                    self.stats.read_hits += 1;
                    self.emit(Event::ReadHit { addr });
                } else {
                    // Tag match but some requested bytes invalid: a miss
                    // that refills the line, merging around valid bytes.
                    self.stats.read_misses += 1;
                    self.stats.partial_read_misses += 1;
                    self.emit(Event::ReadMiss {
                        addr,
                        partial: true,
                    });
                    self.fetch_line(set, way, tag);
                }
                way
            }
            None => {
                self.stats.read_misses += 1;
                self.emit(Event::ReadMiss {
                    addr,
                    partial: false,
                });
                let way = self.victim_way(set);
                self.evict(set, way);
                self.fetch_line(set, way, tag);
                way
            }
        };

        let idx = self.line_index(set, way);
        let src = idx * self.line_bytes as usize + offset as usize;
        out[lo..hi].copy_from_slice(&self.data[src..src + (hi - lo)]);
        self.touch(set, way);
    }

    fn write_within(&mut self, addr: u64, data: &[u8]) {
        self.stats.writes += 1;
        self.emit(Event::Access {
            kind: AccessKind::Write,
            addr,
            bytes: data.len() as u32,
        });
        self.maybe_inject();
        let (set, tag, offset) = self.decompose(addr);
        self.scrub(set, tag);
        let span = mask::span(offset, data.len() as u32);

        if let Some(way) = self.find_way(set, tag) {
            // Write hit: the tag is resident. Writing validates the bytes
            // regardless of their previous valid state.
            self.stats.write_hits += 1;
            self.emit(Event::WriteHit { addr });
            self.store_into(set, way, offset, data, span);
            if self.config.write_hit() == WriteHitPolicy::WriteThrough {
                self.send_write_through(addr, data);
            }
            self.touch(set, way);
            return;
        }

        self.stats.write_misses += 1;
        self.emit(Event::WriteMiss {
            addr,
            action: match self.config.write_miss() {
                WriteMissPolicy::FetchOnWrite => WriteMissAction::Fetch,
                WriteMissPolicy::WriteValidate => WriteMissAction::Validate,
                WriteMissPolicy::WriteAround => WriteMissAction::Around,
                WriteMissPolicy::WriteInvalidate => WriteMissAction::Invalidate,
            },
        });
        match self.config.write_miss() {
            WriteMissPolicy::FetchOnWrite => {
                let way = self.victim_way(set);
                self.evict(set, way);
                self.fetch_line(set, way, tag);
                self.store_into(set, way, offset, data, span);
                if self.config.write_hit() == WriteHitPolicy::WriteThrough {
                    self.send_write_through(addr, data);
                }
                self.touch(set, way);
            }
            WriteMissPolicy::WriteValidate => {
                // Allocate without fetching: valid bits cover only the
                // written bytes.
                let way = self.victim_way(set);
                self.evict(set, way);
                let idx = self.line_index(set, way);
                self.meta[idx].tag = tag;
                self.store_into(set, way, offset, data, span);
                if self.config.write_hit() == WriteHitPolicy::WriteThrough {
                    self.send_write_through(addr, data);
                }
                self.touch(set, way);
            }
            WriteMissPolicy::WriteAround => {
                // Bypass: the old line (if any) stays resident.
                self.send_write_through(addr, data);
            }
            WriteMissPolicy::WriteInvalidate => {
                // The concurrent data write corrupted the indexed line, so
                // invalidate it and pass the data on. Write-through caches
                // hold no unique data, so nothing is lost.
                let way = self.victim_way(set);
                let idx = self.line_index(set, way);
                debug_assert_eq!(
                    self.meta[idx].dirty, 0,
                    "write-invalidate requires write-through"
                );
                if self.meta[idx].valid != 0 {
                    self.stats.invalidations += 1;
                    let line_addr = self.line_addr_of(idx);
                    self.emit(Event::Invalidation { line_addr });
                }
                self.clear_line(idx);
                self.send_write_through(addr, data);
            }
        }
    }

    /// Forwards a store to the next level, emitting the write-through
    /// traffic event (exactly one per `NextLevel::write_through` call,
    /// mirroring what a `TrafficRecorder` would count).
    #[inline]
    fn send_write_through(&mut self, addr: u64, data: &[u8]) {
        self.emit(Event::WriteThrough {
            addr,
            bytes: data.len() as u32,
        });
        self.next.write_through(addr, data);
    }

    // ------------------------------------------------------------------
    // Fault injection and recovery (Section 3)
    // ------------------------------------------------------------------

    /// The structured log of resolved fault events, oldest first. The log
    /// is capped at 4096 entries; the counters in
    /// [`CacheStats::faults`](crate::stats::CacheStats::faults) stay
    /// exact past the cap.
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.fault_log
    }

    /// Injected flips that have not yet been detected and resolved.
    pub fn outstanding_faults(&self) -> u64 {
        self.flips.len() as u64
    }

    fn log_fault(&mut self, event: FaultEvent) {
        if self.fault_log.len() < FAULT_LOG_CAP {
            self.fault_log.push(event);
        }
    }

    /// Gives the injector its per-access chance to flip one bit in a
    /// random valid byte of the data array.
    ///
    /// The injector keeps at most one outstanding flip per protected
    /// 32-bit word — the paper's single-bit fault model, and the bound
    /// under which single-error-correcting ECC corrects everything.
    fn maybe_inject(&mut self) {
        if !self.injector.fires() {
            return;
        }
        let valid_lines = self.meta.iter().filter(|m| m.valid != 0).count();
        if valid_lines == 0 {
            return;
        }
        let nth = self.injector.pick(valid_lines as u64) as usize;
        let Some(idx) = self
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.valid != 0)
            .nth(nth)
            .map(|(i, _)| i)
        else {
            return;
        };
        let m = self.meta[idx];
        let byte_choice = self.injector.pick(u64::from(mask::count(m.valid))) as u32;
        let Some(byte) = nth_set_bit(m.valid, byte_choice) else {
            return;
        };
        let protected = self.config.protection() != Protection::None;
        if protected && self.faulty[idx] & (0xFu64 << (byte & !3)) != 0 {
            return;
        }
        let bit = self.injector.pick(8) as u8;
        let off = idx * self.line_bytes as usize + byte as usize;
        self.data[off] ^= 1 << bit;
        self.stats.faults.injected += 1;
        if P::ENABLED {
            let line_addr = self.line_addr_of(idx);
            self.emit(Event::FaultInjected {
                line_addr,
                byte,
                bit,
                silent: !protected,
            });
        }
        if protected {
            self.faulty[idx] |= 1u64 << byte;
            self.flips.push(Flip { idx, byte, bit });
        } else {
            // No check bits: the flip is invisible to the cache and the
            // corrupted byte stays live. Only the simulator's omniscient
            // observer counts it.
            self.stats.faults.silent_corruptions += 1;
            let line_addr = self.line_addr_of(idx);
            self.log_fault(FaultEvent {
                kind: FaultKind::SilentCorruption,
                line_addr,
                byte,
                bit,
                dirty_bytes: 0,
            });
        }
    }

    /// Verifies the check bits of the line about to be accessed and
    /// resolves any outstanding fault on it.
    fn scrub(&mut self, set: u32, tag: u64) {
        if let Some(way) = self.find_way(set, tag) {
            let idx = self.line_index(set, way);
            if self.faulty[idx] != 0 {
                self.resolve_fault(idx, false);
            }
        }
    }

    /// Resolves the detected fault(s) on line `idx` per the configured
    /// protection. `discarding` means the line is being evicted or
    /// flushed: a faulty *clean* parity line is then simply dropped
    /// (clean victims are never read out, so nothing is lost and no
    /// refetch is needed).
    fn resolve_fault(&mut self, idx: usize, discarding: bool) {
        let line_addr = self.line_addr_of(idx);
        let dirty = self.meta[idx].dirty;
        let mut mine = Vec::new();
        let mut i = 0;
        while i < self.flips.len() {
            if self.flips[i].idx == idx {
                mine.push(self.flips.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.faulty[idx] = 0;
        match self.config.protection() {
            // Unreachable in practice: without check bits no fault is
            // ever recorded against a line. State is cleared above.
            Protection::None => {}
            Protection::EccPerWord => {
                for f in mine {
                    let off = idx * self.line_bytes as usize + f.byte as usize;
                    self.data[off] ^= 1 << f.bit;
                    self.stats.faults.corrected_in_place += 1;
                    self.emit(Event::FaultResolved {
                        outcome: FaultOutcome::Corrected,
                        line_addr,
                        dirty_bytes: 0,
                    });
                    self.log_fault(FaultEvent {
                        kind: FaultKind::CorrectedInPlace,
                        line_addr,
                        byte: f.byte,
                        bit: f.bit,
                        dirty_bytes: 0,
                    });
                }
            }
            Protection::ByteParity if dirty == 0 => {
                if discarding {
                    self.stats.faults.discarded_clean += mine.len() as u64;
                    if P::ENABLED {
                        for _ in &mine {
                            self.emit(Event::FaultResolved {
                                outcome: FaultOutcome::DiscardedClean,
                                line_addr,
                                dirty_bytes: 0,
                            });
                        }
                    }
                } else {
                    // Every valid byte of a clean line matches the next
                    // level, so a whole-line refetch recovers all flips
                    // at once (and validates the rest of the line).
                    // This refetch is back-side traffic but not a demand
                    // fetch: it is not counted in `CacheStats::fetches`,
                    // hence the `Recovery` cause.
                    self.emit(Event::Fetch {
                        cause: FetchCause::Recovery,
                        addr: line_addr,
                        bytes: self.line_bytes,
                    });
                    let mut scratch = std::mem::take(&mut self.scratch);
                    self.next.fetch_line(line_addr, &mut scratch);
                    self.line_data(idx).copy_from_slice(&scratch);
                    self.scratch = scratch;
                    self.meta[idx].valid = mask::full(self.line_bytes);
                    self.stats.faults.refetch_recoveries += mine.len() as u64;
                    for f in mine {
                        self.emit(Event::FaultResolved {
                            outcome: FaultOutcome::Refetched,
                            line_addr,
                            dirty_bytes: 0,
                        });
                        self.log_fault(FaultEvent {
                            kind: FaultKind::RefetchRecovery,
                            line_addr,
                            byte: f.byte,
                            bit: f.bit,
                            dirty_bytes: 0,
                        });
                    }
                }
            }
            Protection::ByteParity => {
                // Parity on a dirty line: the dirty bytes exist nowhere
                // else. Count the loss and drop the line un-written-back
                // — never a panic.
                let lost = mask::count(dirty);
                self.stats.faults.data_loss_events += 1;
                self.stats.faults.data_loss_dirty_bytes += u64::from(lost);
                self.last_loss = Some((line_addr, lost));
                self.emit(Event::FaultResolved {
                    outcome: FaultOutcome::DataLoss,
                    line_addr,
                    dirty_bytes: lost,
                });
                let site = mine.first().copied();
                self.log_fault(FaultEvent {
                    kind: FaultKind::DataLoss,
                    line_addr,
                    byte: site.map_or(0, |f| f.byte),
                    bit: site.map_or(0, |f| f.bit),
                    dirty_bytes: lost,
                });
                self.meta[idx] = LineMeta::EMPTY;
            }
        }
    }

    /// Invalidates line `idx` and forgets any fault state attached to it.
    fn clear_line(&mut self, idx: usize) {
        self.meta[idx] = LineMeta::EMPTY;
        self.drop_fault_state(idx);
    }

    /// Forgets fault state for a line whose data is being overwritten or
    /// discarded wholesale (fresh check bits are written with new data).
    fn drop_fault_state(&mut self, idx: usize) {
        if self.faulty[idx] != 0 {
            self.faulty[idx] = 0;
            self.flips.retain(|f| f.idx != idx);
        }
    }

    // ------------------------------------------------------------------
    // Checked access entry points
    // ------------------------------------------------------------------

    /// Like [`Cache::read`], but validates the address span and surfaces
    /// any unrecoverable data loss the access triggered as a typed error
    /// instead of a bare counter.
    ///
    /// # Errors
    ///
    /// [`CwpError::AddressOverflow`] if `addr + buf.len()` exceeds the
    /// address space; [`CwpError::FaultLoss`] if resolving a detected
    /// fault during this access destroyed dirty data (the read still
    /// completes, returning the next level's stale bytes).
    pub fn try_read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), CwpError> {
        check_span(addr, buf.len())?;
        let before = self.stats.faults.data_loss_events;
        self.read(addr, buf);
        self.loss_since(before)
    }

    /// Like [`Cache::write`], but validates the address span and surfaces
    /// any unrecoverable data loss as a typed error. See
    /// [`Cache::try_read`].
    ///
    /// # Errors
    ///
    /// [`CwpError::AddressOverflow`] or [`CwpError::FaultLoss`], as for
    /// [`Cache::try_read`].
    pub fn try_write(&mut self, addr: u64, data: &[u8]) -> Result<(), CwpError> {
        check_span(addr, data.len())?;
        let before = self.stats.faults.data_loss_events;
        self.write(addr, data);
        self.loss_since(before)
    }

    fn loss_since(&self, before: u64) -> Result<(), CwpError> {
        if self.stats.faults.data_loss_events == before {
            return Ok(());
        }
        // `data_loss_events` is incremented in exactly one place — the
        // dirty-line ByteParity arm of `resolve_fault` — which records
        // `last_loss` in the same block. The counter moving without a
        // recorded site is therefore impossible unless that pairing is
        // broken; report it as the bug it would be instead of inventing
        // a (0, 0) loss site.
        match self.last_loss {
            Some((line_addr, dirty_bytes)) => Err(CwpError::FaultLoss {
                line_addr,
                dirty_bytes,
            }),
            None => Err(CwpError::InvariantViolation {
                detail: format!(
                    "data_loss_events advanced from {before} to {} with no loss site recorded",
                    self.stats.faults.data_loss_events
                ),
            }),
        }
    }

    /// Stores `data` into a resident line, updating valid/dirty masks and
    /// the writes-to-already-dirty counter.
    #[inline]
    fn store_into(&mut self, set: u32, way: u32, offset: u32, data: &[u8], span: u64) {
        let write_back = self.config.write_hit() == WriteHitPolicy::WriteBack;
        let idx = self.line_index(set, way);
        if write_back && self.meta[idx].dirty != 0 {
            self.stats.writes_to_dirty += 1;
            if P::ENABLED {
                let line_addr = self.line_addr_of(idx);
                self.emit(Event::WriteToDirty { line_addr });
            }
        } else if write_back && span != 0 {
            // Clean line turning dirty: the sampler integrates these
            // (with dirty evictions and data losses) into a dirty-line
            // gauge.
            if P::ENABLED {
                let line_addr = self.line_addr(set, self.meta[idx].tag);
                self.emit(Event::LineDirtied { line_addr });
            }
        }
        let lo = idx * self.line_bytes as usize + offset as usize;
        self.data[lo..lo + data.len()].copy_from_slice(data);
        let m = &mut self.meta[idx];
        m.valid |= span;
        if write_back {
            m.dirty |= span;
        }
    }
}

/// A read-only snapshot of one resident line's sub-block state, as
/// returned by [`Cache::line_states`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineState {
    /// The set holding the line.
    pub set: u32,
    /// The way within the set.
    pub way: u32,
    /// Line-aligned byte address.
    pub line_addr: u64,
    /// Per-byte valid mask (bit `i` = byte `i` holds correct data).
    pub valid: u64,
    /// Per-byte dirty mask (bit `i` = byte `i` differs from memory).
    pub dirty: u64,
}

/// Index of the `n`-th (0-based) set bit of `mask`, if it has that many.
fn nth_set_bit(mask: u64, n: u32) -> Option<u32> {
    let mut seen = 0;
    (0..64).find(|&i| {
        if mask & (1u64 << i) != 0 {
            if seen == n {
                return true;
            }
            seen += 1;
        }
        false
    })
}

/// Rejects accesses whose last byte would not fit in the address space.
fn check_span(addr: u64, len: usize) -> Result<(), CwpError> {
    if u128::from(addr) + len as u128 > u128::from(u64::MAX) + 1 {
        return Err(CwpError::AddressOverflow { addr, len });
    }
    Ok(())
}

impl<N: NextLevel, P: Probe> NextLevel for Cache<N, P> {
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]) {
        self.read(addr, buf);
    }

    fn write_back(&mut self, addr: u64, data: &[u8]) {
        self.write(addr, data);
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) {
        self.write(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn cfg(hit: WriteHitPolicy, miss: WriteMissPolicy) -> CacheConfig {
        CacheConfig::builder()
            .size_bytes(1024)
            .line_bytes(16)
            .write_hit(hit)
            .write_miss(miss)
            .build()
            .unwrap()
    }

    fn wb_fow() -> MemoryCache {
        Cache::with_memory(cfg(
            WriteHitPolicy::WriteBack,
            WriteMissPolicy::FetchOnWrite,
        ))
    }

    #[test]
    fn read_after_write_returns_written_data() {
        let mut c = wb_fow();
        c.write(0x100, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        c.read(0x100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn loss_with_a_recorded_site_reports_fault_loss() {
        let mut c = wb_fow();
        c.stats.faults.data_loss_events = 1;
        c.last_loss = Some((0x40, 7));
        match c.loss_since(0) {
            Err(CwpError::FaultLoss {
                line_addr,
                dirty_bytes,
            }) => {
                assert_eq!(line_addr, 0x40);
                assert_eq!(dirty_bytes, 7);
            }
            other => panic!("expected FaultLoss, got {other:?}"),
        }
    }

    #[test]
    fn loss_without_a_recorded_site_is_an_invariant_violation() {
        // `data_loss_events` moving while `last_loss` stays `None` can
        // only mean the counter/site pairing in `resolve_fault` broke;
        // `loss_since` must report that bug, not invent a (0, 0) site.
        let mut c = wb_fow();
        c.stats.faults.data_loss_events = 1;
        assert!(c.last_loss.is_none());
        match c.loss_since(0) {
            Err(CwpError::InvariantViolation { detail }) => {
                assert!(detail.contains("no loss site"), "{detail}");
            }
            other => panic!("expected InvariantViolation, got {other:?}"),
        }
    }

    #[test]
    fn second_read_hits() {
        let mut c = wb_fow();
        let mut buf = [0u8; 8];
        c.read(0x40, &mut buf);
        c.read(0x40, &mut buf);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().fetches, 1);
    }

    #[test]
    fn write_back_defers_traffic_until_eviction() {
        let mut c = wb_fow();
        c.write(0x0, &[9; 8]);
        assert_eq!(c.traffic().write_back.transactions, 0);
        assert_eq!(c.traffic().write_through.transactions, 0);
        // Conflicting line (same set in a 1KB direct-mapped cache).
        c.write(0x400, &[8; 8]);
        assert_eq!(c.traffic().write_back.transactions, 1);
        assert_eq!(c.traffic().write_back.bytes, 16, "whole-line write-back");
    }

    #[test]
    fn write_through_sends_every_store() {
        let mut c = Cache::with_memory(cfg(
            WriteHitPolicy::WriteThrough,
            WriteMissPolicy::FetchOnWrite,
        ));
        c.write(0x0, &[1; 4]);
        c.write(0x0, &[2; 4]);
        c.write(0x4, &[3; 4]);
        let t = c.traffic();
        assert_eq!(t.write_through.transactions, 3);
        assert_eq!(t.write_through.bytes, 12);
        assert_eq!(t.write_back.transactions, 0);
    }

    #[test]
    fn writes_to_dirty_counts_second_write_to_a_line() {
        let mut c = wb_fow();
        c.write(0x10, &[1; 4]); // miss, fetch, line becomes dirty
        c.write(0x14, &[2; 4]); // hit on the now-dirty line
        c.write(0x18, &[3; 4]); // hit, dirty again
        assert_eq!(c.stats().writes_to_dirty, 2);
        assert_eq!(c.stats().dirty_write_fraction(), Some(2.0 / 3.0));
    }

    #[test]
    fn fetch_on_write_fetches_the_missed_line() {
        let mut c = wb_fow();
        c.write(0x20, &[7; 4]);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.stats().fetches, 1);
        // The unwritten bytes of the line hold memory's contents.
        let mut buf = [0xffu8; 4];
        c.read(0x24, &mut buf);
        assert_eq!(c.stats().read_hits, 1, "rest of the fetched line is valid");
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn write_validate_skips_the_fetch_and_tracks_validity() {
        let mut c = Cache::with_memory(cfg(
            WriteHitPolicy::WriteBack,
            WriteMissPolicy::WriteValidate,
        ));
        c.write(0x20, &[7; 4]);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.stats().fetches, 0, "write-validate never fetches");
        assert!(c.is_resident(0x20, 4));
        assert!(!c.is_resident(0x24, 4), "unwritten bytes are invalid");
        // Reading the invalid part triggers a merging refill.
        let mut buf = [0u8; 4];
        c.read(0x24, &mut buf);
        assert_eq!(c.stats().partial_read_misses, 1);
        assert_eq!(c.stats().fetches, 1);
        // The written bytes survived the merge.
        let mut buf = [0u8; 4];
        c.read(0x20, &mut buf);
        assert_eq!(buf, [7; 4]);
    }

    #[test]
    fn write_around_bypasses_and_preserves_the_old_line() {
        let mut c = Cache::with_memory(cfg(
            WriteHitPolicy::WriteThrough,
            WriteMissPolicy::WriteAround,
        ));
        // Fault in line at 0x0 by reading it.
        let mut buf = [0u8; 4];
        c.read(0x0, &mut buf);
        // Write to the conflicting line 0x400: goes around.
        c.write(0x400, &[5; 4]);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.stats().fetches, 1, "only the initial read fetched");
        assert!(c.is_resident(0x0, 4), "old line still resident");
        assert!(!c.is_resident(0x400, 4));
        // Memory still saw the write.
        c.read(0x400, &mut buf);
        assert_eq!(buf, [5; 4]);
    }

    #[test]
    fn write_invalidate_clears_the_indexed_line() {
        let mut c = Cache::with_memory(cfg(
            WriteHitPolicy::WriteThrough,
            WriteMissPolicy::WriteInvalidate,
        ));
        let mut buf = [0u8; 4];
        c.read(0x0, &mut buf);
        assert!(c.is_resident(0x0, 4));
        c.write(0x400, &[5; 4]);
        assert_eq!(c.stats().invalidations, 1);
        assert!(!c.is_resident(0x0, 4), "the corrupted line is gone");
        assert!(!c.is_resident(0x400, 4));
        c.read(0x400, &mut buf);
        assert_eq!(buf, [5; 4]);
    }

    #[test]
    fn flush_writes_dirty_lines_and_counts_all_resident() {
        let mut c = wb_fow();
        c.write(0x0, &[1; 8]);
        let mut buf = [0u8; 8];
        c.read(0x100, &mut buf); // clean resident line
        c.flush();
        assert_eq!(c.stats().flush.total, 2);
        assert_eq!(c.stats().flush.dirty, 1);
        assert_eq!(c.stats().flush.dirty_bytes, 8);
        assert_eq!(c.traffic().write_back.transactions, 1);
        assert!(!c.is_resident(0x0, 1));
    }

    #[test]
    fn victims_count_only_valid_replacements() {
        let mut c = wb_fow();
        let mut buf = [0u8; 4];
        c.read(0x0, &mut buf); // cold fill, no victim
        assert_eq!(c.stats().victims.total, 0);
        c.read(0x400, &mut buf); // replaces the clean line
        assert_eq!(c.stats().victims.total, 1);
        assert_eq!(c.stats().victims.dirty, 0);
        c.write(0x400, &[1; 4]);
        c.read(0x800, &mut buf); // replaces a dirty line
        let v = c.stats().victims;
        assert_eq!(v.total, 2);
        assert_eq!(v.dirty, 1);
        assert_eq!(v.dirty_bytes, 4);
    }

    #[test]
    fn partial_writeback_moves_only_dirty_runs() {
        let config = CacheConfig::builder()
            .size_bytes(1024)
            .line_bytes(16)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::WriteValidate)
            .partial_writeback(true)
            .build()
            .unwrap();
        let mut c = Cache::with_memory(config);
        c.write(0x0, &[1; 4]); // only 4 dirty bytes on the line
        c.write(0x400, &[2; 4]); // conflict evicts it
        assert_eq!(c.traffic().write_back.transactions, 1);
        assert_eq!(c.traffic().write_back.bytes, 4);
    }

    #[test]
    fn lru_replacement_in_a_set_associative_cache() {
        let config = CacheConfig::builder()
            .size_bytes(1024)
            .line_bytes(16)
            .associativity(2)
            .build()
            .unwrap();
        let mut c = Cache::with_memory(config);
        let mut buf = [0u8; 4];
        // 32 sets; addresses 0x0, 0x200, 0x400 all map to set 0.
        c.read(0x0, &mut buf);
        c.read(0x200, &mut buf);
        c.read(0x0, &mut buf); // refresh 0x0
        c.read(0x400, &mut buf); // must evict 0x200, the LRU
        assert!(c.is_resident(0x0, 4));
        assert!(!c.is_resident(0x200, 4));
        assert!(c.is_resident(0x400, 4));
    }

    #[test]
    fn accesses_spanning_lines_are_split() {
        let config = CacheConfig::builder()
            .size_bytes(1024)
            .line_bytes(4)
            .build()
            .unwrap();
        let mut c = Cache::with_memory(config);
        c.write(0x8, &[1, 2, 3, 4, 5, 6, 7, 8]); // 8B store, 4B lines
        assert_eq!(c.stats().writes, 2, "split into two line-sized writes");
        let mut buf = [0u8; 8];
        c.read(0x8, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.stats().reads, 2);
    }

    #[test]
    fn caches_stack_as_next_levels() {
        let l2_cfg = CacheConfig::builder()
            .size_bytes(4096)
            .line_bytes(32)
            .build()
            .unwrap();
        let l1_cfg = cfg(WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteAround);
        let l2 = Cache::new(l2_cfg, TrafficRecorder::new(MainMemory::new()));
        let mut l1 = Cache::new(l1_cfg, l2);
        l1.write(0x123 & !3, &[9; 4]);
        let mut buf = [0u8; 4];
        l1.read(0x120, &mut buf);
        assert_eq!(buf[0], 9);
        assert!(l1.next_level().stats().accesses() > 0, "L2 saw traffic");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = wb_fow();
        c.write(0x40, &[3; 4]);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.is_resident(0x40, 4));
    }

    #[test]
    fn allocate_line_claims_without_fetching() {
        let mut c = wb_fow();
        c.allocate_line(0x200);
        assert_eq!(c.stats().fetches, 0, "allocation must not fetch");
        assert_eq!(c.stats().line_allocations, 1);
        assert!(c.is_resident(0x200, 16), "the whole line is valid");
        // Subsequent writes to the allocated line are hits.
        c.write(0x200, &[7; 8]);
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.stats().write_misses, 0);
    }

    #[test]
    fn allocate_line_writes_back_the_displaced_victim() {
        let mut c = wb_fow();
        c.write(0x0, &[9; 8]);
        c.allocate_line(0x400); // conflicts in the 1KB direct-mapped cache
        assert_eq!(c.traffic().write_back.transactions, 1);
        assert_eq!(c.stats().victims.dirty, 1);
    }

    #[test]
    fn partial_overwrite_after_allocation_is_the_papers_hazard() {
        // "Context switches after a line has been allocated and partially
        // written ... result in dirty and incorrect cache lines."
        let mut c = wb_fow();
        // Memory holds known data at the back half of the line.
        c.write(0x108, &[5; 8]);
        c.flush();
        // Allocate the line, overwrite only the front half, then flush
        // (a context switch writing the "dirty and incorrect" line back).
        c.allocate_line(0x100);
        c.write(0x100, &[1; 8]);
        c.flush();
        let mut buf = [0u8; 8];
        c.read(0x108, &mut buf);
        assert_eq!(buf, [0; 8], "the old memory contents were destroyed");
    }

    #[test]
    fn allocating_an_already_resident_line_is_idempotent_on_tags() {
        let mut c = wb_fow();
        c.write(0x80, &[3; 4]);
        c.allocate_line(0x80);
        assert_eq!(c.stats().victims.total, 0, "no self-eviction");
        assert!(c.is_resident(0x80, 16));
    }

    /// Counts probe events by the counter they should mirror.
    fn event_tally(events: &[Event]) -> std::collections::HashMap<&'static str, u64> {
        let mut tally: std::collections::HashMap<&'static str, u64> = Default::default();
        let mut bump = |key: &'static str, by: u64| *tally.entry(key).or_insert(0) += by;
        for e in events {
            match *e {
                Event::Access {
                    kind: AccessKind::Read,
                    ..
                } => bump("reads", 1),
                Event::Access {
                    kind: AccessKind::Write,
                    ..
                } => bump("writes", 1),
                Event::ReadHit { .. } => bump("read_hits", 1),
                Event::ReadMiss { partial, .. } => {
                    bump("read_misses", 1);
                    if partial {
                        bump("partial_read_misses", 1);
                    }
                }
                Event::WriteHit { .. } => bump("write_hits", 1),
                Event::WriteMiss { .. } => bump("write_misses", 1),
                Event::WriteToDirty { .. } => bump("writes_to_dirty", 1),
                Event::Fetch {
                    cause: FetchCause::Demand,
                    bytes,
                    ..
                } => {
                    bump("fetches", 1);
                    bump("fetch_bytes", u64::from(bytes));
                }
                Event::Fetch {
                    cause: FetchCause::Recovery,
                    bytes,
                    ..
                } => {
                    bump("recovery_fetches", 1);
                    bump("fetch_bytes", u64::from(bytes));
                }
                Event::WriteBack { bytes, .. } => {
                    bump("write_back_txns", 1);
                    bump("write_back_bytes", u64::from(bytes));
                }
                Event::WriteThrough { bytes, .. } => {
                    bump("write_through_txns", 1);
                    bump("write_through_bytes", u64::from(bytes));
                }
                Event::Eviction {
                    flush, dirty_bytes, ..
                } => {
                    bump(if flush { "flush_total" } else { "victims" }, 1);
                    if dirty_bytes > 0 {
                        bump(
                            if flush {
                                "flush_dirty"
                            } else {
                                "victims_dirty"
                            },
                            1,
                        );
                        bump(
                            if flush {
                                "flush_dirty_bytes"
                            } else {
                                "victim_dirty_bytes"
                            },
                            u64::from(dirty_bytes),
                        );
                    }
                }
                Event::Invalidation { .. } => bump("invalidations", 1),
                Event::LineAllocated { .. } => bump("line_allocations", 1),
                _ => {}
            }
        }
        tally
    }

    /// Drives a mixed workload and checks that every probe event class
    /// matches the corresponding `CacheStats`/`Traffic` counter exactly
    /// — the contract the windowed sampler's reconciliation rests on.
    fn assert_events_mirror_counters(hit: WriteHitPolicy, miss: WriteMissPolicy) {
        use cwp_obs::RecordingProbe;
        let mut c = Cache::with_probe(
            cfg(hit, miss),
            TrafficRecorder::new(MainMemory::new()),
            RecordingProbe::default(),
        );
        let mut buf = [0u8; 8];
        for i in 0..600u64 {
            let addr = (i * 52) % 4096; // conflicts in a 1KB cache
            if i % 3 == 0 {
                c.read(addr, &mut buf);
            } else {
                c.write(addr, &[i as u8; 8]);
            }
        }
        c.allocate_line(0x40);
        c.flush();

        let stats = *c.stats();
        let traffic = c.traffic();
        let (_, probe) = c.into_parts();
        let t = event_tally(&probe.events);
        let get = |k: &str| t.get(k).copied().unwrap_or(0);

        assert_eq!(get("reads"), stats.reads);
        assert_eq!(get("writes"), stats.writes);
        assert_eq!(get("read_hits"), stats.read_hits);
        assert_eq!(get("read_misses"), stats.read_misses);
        assert_eq!(get("partial_read_misses"), stats.partial_read_misses);
        assert_eq!(get("write_hits"), stats.write_hits);
        assert_eq!(get("write_misses"), stats.write_misses);
        assert_eq!(get("writes_to_dirty"), stats.writes_to_dirty);
        assert_eq!(get("fetches"), stats.fetches);
        assert_eq!(get("invalidations"), stats.invalidations);
        assert_eq!(get("line_allocations"), stats.line_allocations);
        assert_eq!(get("victims"), stats.victims.total);
        assert_eq!(get("victims_dirty"), stats.victims.dirty);
        assert_eq!(get("victim_dirty_bytes"), stats.victims.dirty_bytes);
        assert_eq!(get("flush_total"), stats.flush.total);
        assert_eq!(get("flush_dirty"), stats.flush.dirty);
        assert_eq!(get("flush_dirty_bytes"), stats.flush.dirty_bytes);
        assert_eq!(
            get("fetches") + get("recovery_fetches"),
            traffic.fetch.transactions
        );
        assert_eq!(get("fetch_bytes"), traffic.fetch.bytes);
        assert_eq!(get("write_back_txns"), traffic.write_back.transactions);
        assert_eq!(get("write_back_bytes"), traffic.write_back.bytes);
        assert_eq!(
            get("write_through_txns"),
            traffic.write_through.transactions
        );
        assert_eq!(get("write_through_bytes"), traffic.write_through.bytes);
    }

    #[test]
    fn probe_events_mirror_counters_across_the_policy_matrix() {
        for (hit, miss) in [
            (WriteHitPolicy::WriteBack, WriteMissPolicy::FetchOnWrite),
            (WriteHitPolicy::WriteBack, WriteMissPolicy::WriteValidate),
            (WriteHitPolicy::WriteThrough, WriteMissPolicy::FetchOnWrite),
            (WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteAround),
            (
                WriteHitPolicy::WriteThrough,
                WriteMissPolicy::WriteInvalidate,
            ),
        ] {
            assert_events_mirror_counters(hit, miss);
        }
    }

    #[test]
    fn probe_events_mirror_fault_counters() {
        use cwp_obs::RecordingProbe;
        for protection in [Protection::ByteParity, Protection::EccPerWord] {
            let config = CacheConfig::builder()
                .size_bytes(1024)
                .line_bytes(16)
                .write_hit(WriteHitPolicy::WriteBack)
                .write_miss(WriteMissPolicy::FetchOnWrite)
                .protection(protection)
                .fault_rate_ppm(200_000)
                .fault_seed(7)
                .build()
                .unwrap();
            let mut c = Cache::with_probe(
                config,
                TrafficRecorder::new(MainMemory::new()),
                RecordingProbe::default(),
            );
            let mut buf = [0u8; 4];
            for i in 0..2_000u64 {
                let addr = (i * 28) % 2048;
                if i % 2 == 0 {
                    c.read(addr, &mut buf);
                } else {
                    c.write(addr, &[i as u8; 4]);
                }
            }
            c.flush();
            let faults = c.stats().faults;
            assert!(faults.injected > 0, "injector must fire at this rate");
            let (_, probe) = c.into_parts();
            let mut injected = 0u64;
            let mut corrected = 0u64;
            let mut refetched = 0u64;
            let mut discarded = 0u64;
            let mut losses = 0u64;
            let mut lost_bytes = 0u64;
            for e in &probe.events {
                match *e {
                    Event::FaultInjected { .. } => injected += 1,
                    Event::FaultResolved {
                        outcome,
                        dirty_bytes,
                        ..
                    } => match outcome {
                        FaultOutcome::Corrected => corrected += 1,
                        FaultOutcome::Refetched => refetched += 1,
                        FaultOutcome::DiscardedClean => discarded += 1,
                        FaultOutcome::DataLoss => {
                            losses += 1;
                            lost_bytes += u64::from(dirty_bytes);
                        }
                    },
                    _ => {}
                }
            }
            assert_eq!(injected, faults.injected);
            assert_eq!(corrected, faults.corrected_in_place);
            assert_eq!(refetched, faults.refetch_recoveries);
            assert_eq!(discarded, faults.discarded_clean);
            assert_eq!(losses, faults.data_loss_events);
            assert_eq!(lost_bytes, faults.data_loss_dirty_bytes);
        }
    }
}
