//! Cache configuration and validation.

use std::error::Error;
use std::fmt;

use crate::mask::MAX_LINE_BYTES;
use crate::overhead::Protection;
use crate::policy::{WriteHitPolicy, WriteMissPolicy};

/// A validated cache geometry and policy selection.
///
/// Build one with [`CacheConfig::builder`]; construction checks every
/// invariant the simulator relies on, including the paper's policy
/// compatibility rule: "write-around and write-invalidate (i.e., policies
/// with no-write-allocate) are only useful with write-through caches"
/// (Section 4).
///
/// # Examples
///
/// ```
/// use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
///
/// let config = CacheConfig::builder()
///     .size_bytes(4 * 1024)
///     .line_bytes(16)
///     .associativity(2)
///     .write_hit(WriteHitPolicy::WriteBack)
///     .write_miss(WriteMissPolicy::WriteValidate)
///     .build()
///     .expect("a valid configuration");
/// assert_eq!(config.sets(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u32,
    line_bytes: u32,
    associativity: u32,
    write_hit: WriteHitPolicy,
    write_miss: WriteMissPolicy,
    partial_writeback: bool,
    protection: Protection,
    fault_rate_ppm: u32,
    fault_seed: u64,
}

impl CacheConfig {
    /// Starts building a configuration. Defaults: 8KB, 16B lines,
    /// direct-mapped, write-back, fetch-on-write, whole-line write-backs —
    /// the paper's most common setup.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::new()
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Ways per set (1 = direct-mapped).
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    /// Total number of lines.
    pub fn lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// The write-hit policy.
    pub fn write_hit(&self) -> WriteHitPolicy {
        self.write_hit
    }

    /// The write-miss policy.
    pub fn write_miss(&self) -> WriteMissPolicy {
        self.write_miss
    }

    /// Whether dirty victims write back only their dirty byte runs
    /// (sub-block dirty bits) instead of the whole line.
    pub fn partial_writeback(&self) -> bool {
        self.partial_writeback
    }

    /// The error-protection scheme on the data array (Section 3).
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Fault-injection rate in flipped bits per million accesses
    /// (0 = no injection, the default).
    pub fn fault_rate_ppm(&self) -> u32 {
        self.fault_rate_ppm
    }

    /// Seed for the deterministic fault injector.
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }

    /// Returns a builder seeded with this configuration, for deriving
    /// variants in parameter sweeps.
    pub fn to_builder(&self) -> CacheConfigBuilder {
        CacheConfigBuilder { config: *self }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 16,
            associativity: 1,
            write_hit: WriteHitPolicy::WriteBack,
            write_miss: WriteMissPolicy::FetchOnWrite,
            partial_writeback: false,
            protection: Protection::None,
            fault_rate_ppm: 0,
            fault_seed: 0,
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}B/{}-way {} {}",
            self.size_bytes / 1024,
            self.line_bytes,
            self.associativity,
            self.write_hit,
            self.write_miss
        )?;
        if self.protection != Protection::None || self.fault_rate_ppm > 0 {
            write!(f, " [{}, {}ppm]", self.protection, self.fault_rate_ppm)?;
        }
        Ok(())
    }
}

/// Builder for [`CacheConfig`]. See [`CacheConfig::builder`].
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    config: CacheConfig,
}

impl CacheConfigBuilder {
    fn new() -> Self {
        CacheConfigBuilder {
            config: CacheConfig::default(),
        }
    }

    /// Sets the total capacity in bytes (power of two).
    pub fn size_bytes(mut self, size: u32) -> Self {
        self.config.size_bytes = size;
        self
    }

    /// Sets the line size in bytes (power of two, 4..=64).
    pub fn line_bytes(mut self, line: u32) -> Self {
        self.config.line_bytes = line;
        self
    }

    /// Sets the ways per set (power of two; 1 = direct-mapped).
    pub fn associativity(mut self, ways: u32) -> Self {
        self.config.associativity = ways;
        self
    }

    /// Sets the write-hit policy.
    pub fn write_hit(mut self, policy: WriteHitPolicy) -> Self {
        self.config.write_hit = policy;
        self
    }

    /// Sets the write-miss policy.
    pub fn write_miss(mut self, policy: WriteMissPolicy) -> Self {
        self.config.write_miss = policy;
        self
    }

    /// Enables or disables sub-block (dirty-byte-run) write-backs.
    pub fn partial_writeback(mut self, enabled: bool) -> Self {
        self.config.partial_writeback = enabled;
        self
    }

    /// Sets the error-protection scheme on the data array.
    pub fn protection(mut self, protection: Protection) -> Self {
        self.config.protection = protection;
        self
    }

    /// Sets the fault-injection rate in flipped bits per million accesses
    /// (at most 1,000,000; 0 disables injection).
    pub fn fault_rate_ppm(mut self, rate: u32) -> Self {
        self.config.fault_rate_ppm = rate;
        self
    }

    /// Sets the seed for the deterministic fault injector.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.config.fault_seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any geometry value is not a power of
    /// two, the line size is outside 4..=64, the geometry implies zero
    /// sets, or a no-write-allocate miss policy is combined with
    /// write-back hits.
    pub fn build(self) -> Result<CacheConfig, ConfigError> {
        let c = self.config;
        if !c.size_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                value: c.size_bytes,
            });
        }
        if !c.line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                value: c.line_bytes,
            });
        }
        if !c.associativity.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                value: c.associativity,
            });
        }
        if c.line_bytes < 4 || c.line_bytes > MAX_LINE_BYTES {
            return Err(ConfigError::LineSizeRange {
                value: c.line_bytes,
            });
        }
        if c.line_bytes * c.associativity > c.size_bytes {
            return Err(ConfigError::NoSets {
                size: c.size_bytes,
                line: c.line_bytes,
                ways: c.associativity,
            });
        }
        if c.write_miss.bypasses() && c.write_hit == WriteHitPolicy::WriteBack {
            return Err(ConfigError::PolicyConflict { miss: c.write_miss });
        }
        if c.fault_rate_ppm > 1_000_000 {
            return Err(ConfigError::FaultRateRange {
                value: c.fault_rate_ppm,
            });
        }
        Ok(c)
    }

    /// Returns the configuration without validating it.
    ///
    /// For tests and internal sweeps whose parameters are known-valid by
    /// construction (every value either a compile-time literal or derived
    /// from an already-validated configuration via
    /// [`CacheConfig::to_builder`]). In debug builds the invariants are
    /// still checked — an invalid configuration is a bug at the call
    /// site, not an input error — so a bad literal fails the test suite
    /// instead of silently simulating geometry the engine was never
    /// designed for.
    #[must_use]
    pub fn build_unchecked(self) -> CacheConfig {
        if cfg!(debug_assertions) {
            if let Err(e) = self.clone().build() {
                panic!("build_unchecked on an invalid configuration: {e:?}");
            }
        }
        self.config
    }
}

/// Why a cache configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry parameter must be a power of two.
    NotPowerOfTwo {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: u32,
    },
    /// Line size must be between 4 and 64 bytes.
    LineSizeRange {
        /// The offending value.
        value: u32,
    },
    /// size / (line * ways) must be at least one set.
    NoSets {
        /// Cache size in bytes.
        size: u32,
        /// Line size in bytes.
        line: u32,
        /// Associativity.
        ways: u32,
    },
    /// No-write-allocate miss policies require write-through hits: with a
    /// write-back cache the bypassed data would be shadowed by a later
    /// dirty write-back of a stale line.
    PolicyConflict {
        /// The no-write-allocate policy that was combined with write-back.
        miss: WriteMissPolicy,
    },
    /// The fault rate is a probability in parts per million and cannot
    /// exceed 1,000,000.
    FaultRateRange {
        /// The offending value.
        value: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::LineSizeRange { value } => {
                write!(f, "line size must be between 4 and 64 bytes, got {value}")
            }
            ConfigError::NoSets { size, line, ways } => {
                write!(
                    f,
                    "{size}B cache with {line}B lines and {ways} ways has no sets"
                )
            }
            ConfigError::PolicyConflict { miss } => {
                write!(
                    f,
                    "{miss} requires a write-through cache (no-write-allocate)"
                )
            }
            ConfigError::FaultRateRange { value } => {
                write!(f, "fault rate must be at most 1000000 ppm, got {value}")
            }
        }
    }
}

impl Error for ConfigError {}

impl From<ConfigError> for cwp_mem::CwpError {
    fn from(err: ConfigError) -> Self {
        cwp_mem::CwpError::Config {
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_papers_workhorse() {
        let c = CacheConfig::builder().build().unwrap();
        assert_eq!(c.size_bytes(), 8 * 1024);
        assert_eq!(c.line_bytes(), 16);
        assert_eq!(c.associativity(), 1);
        assert_eq!(c.sets(), 512);
        assert_eq!(c.lines(), 512);
        assert!(!c.partial_writeback());
    }

    #[test]
    fn non_power_of_two_values_are_rejected() {
        assert!(matches!(
            CacheConfig::builder().size_bytes(3000).build(),
            Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::builder().line_bytes(24).build(),
            Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::builder().associativity(3).build(),
            Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                ..
            })
        ));
    }

    #[test]
    fn line_size_bounds() {
        assert!(matches!(
            CacheConfig::builder().line_bytes(2).build(),
            Err(ConfigError::LineSizeRange { value: 2 })
        ));
        assert!(matches!(
            CacheConfig::builder().line_bytes(128).build(),
            Err(ConfigError::LineSizeRange { value: 128 })
        ));
        assert!(CacheConfig::builder().line_bytes(64).build().is_ok());
        assert!(CacheConfig::builder().line_bytes(4).build().is_ok());
    }

    #[test]
    fn geometry_must_leave_at_least_one_set() {
        let err = CacheConfig::builder()
            .size_bytes(64)
            .line_bytes(32)
            .associativity(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::NoSets { .. }));
        // Fully associative (one set) is allowed.
        let ok = CacheConfig::builder()
            .size_bytes(64)
            .line_bytes(16)
            .associativity(4)
            .build();
        assert_eq!(ok.unwrap().sets(), 1);
    }

    #[test]
    fn no_write_allocate_requires_write_through() {
        for miss in [
            WriteMissPolicy::WriteAround,
            WriteMissPolicy::WriteInvalidate,
        ] {
            let err = CacheConfig::builder()
                .write_hit(WriteHitPolicy::WriteBack)
                .write_miss(miss)
                .build()
                .unwrap_err();
            assert_eq!(err, ConfigError::PolicyConflict { miss });
            assert!(CacheConfig::builder()
                .write_hit(WriteHitPolicy::WriteThrough)
                .write_miss(miss)
                .build()
                .is_ok());
        }
    }

    #[test]
    fn write_validate_works_with_both_hit_policies() {
        for hit in WriteHitPolicy::ALL {
            assert!(CacheConfig::builder()
                .write_hit(hit)
                .write_miss(WriteMissPolicy::WriteValidate)
                .build()
                .is_ok());
        }
    }

    #[test]
    fn build_unchecked_matches_build_for_valid_configs() {
        let checked = CacheConfig::builder()
            .size_bytes(4096)
            .line_bytes(32)
            .associativity(2)
            .build()
            .unwrap();
        let unchecked = CacheConfig::builder()
            .size_bytes(4096)
            .line_bytes(32)
            .associativity(2)
            .build_unchecked();
        assert_eq!(checked, unchecked);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "build_unchecked on an invalid configuration")]
    fn build_unchecked_catches_bad_literals_in_debug_builds() {
        let _ = CacheConfig::builder().size_bytes(3000).build_unchecked();
    }

    #[test]
    fn to_builder_round_trips() {
        let base = CacheConfig::builder()
            .size_bytes(32 * 1024)
            .build()
            .unwrap();
        let derived = base.to_builder().line_bytes(32).build().unwrap();
        assert_eq!(derived.size_bytes(), 32 * 1024);
        assert_eq!(derived.line_bytes(), 32);
    }

    #[test]
    fn display_is_compact() {
        let c = CacheConfig::default();
        assert_eq!(c.to_string(), "8KB/16B/1-way write-back fetch-on-write");
    }

    #[test]
    fn display_shows_protection_only_when_configured() {
        let c = CacheConfig::builder()
            .protection(Protection::ByteParity)
            .fault_rate_ppm(250)
            .build()
            .unwrap();
        assert_eq!(
            c.to_string(),
            "8KB/16B/1-way write-back fetch-on-write [byte-parity, 250ppm]"
        );
    }

    #[test]
    fn fault_rate_is_bounded_and_seed_is_free() {
        assert!(matches!(
            CacheConfig::builder().fault_rate_ppm(1_000_001).build(),
            Err(ConfigError::FaultRateRange { value: 1_000_001 })
        ));
        let c = CacheConfig::builder()
            .fault_rate_ppm(1_000_000)
            .fault_seed(u64::MAX)
            .build()
            .unwrap();
        assert_eq!(c.fault_rate_ppm(), 1_000_000);
        assert_eq!(c.fault_seed(), u64::MAX);
        assert_eq!(c.protection(), Protection::None);
    }

    #[test]
    fn config_errors_convert_to_cwp_errors() {
        let err = CacheConfig::builder().size_bytes(3000).build().unwrap_err();
        let cwp: cwp_mem::CwpError = err.into();
        assert!(matches!(cwp, cwp_mem::CwpError::Config { .. }));
        assert!(cwp.to_string().contains("power of two"));
    }

    #[test]
    fn error_display_is_lowercase_without_trailing_punctuation() {
        let e = ConfigError::LineSizeRange { value: 1 }.to_string();
        assert!(e.starts_with(char::is_lowercase));
        assert!(!e.ends_with('.'));
    }
}
