//! Fault injection and the error-recovery event model (Section 3).
//!
//! The paper's reliability argument is qualitative: parity is enough for a
//! write-through cache because every line is clean and can be refetched,
//! while a write-back cache's dirty lines exist nowhere else and need ECC.
//! This module makes the argument *measurable*: a deterministic seeded
//! [`FaultInjector`] flips bits in the data array between accesses, and
//! the cache resolves each detected fault exactly as the paper prescribes:
//!
//! | protection | clean line | dirty line |
//! |---|---|---|
//! | [`Protection::None`] | silent corruption | silent corruption |
//! | [`Protection::ByteParity`] | refetch from next level | **unrecoverable loss** |
//! | [`Protection::EccPerWord`] | correct in place | correct in place |
//!
//! Every resolution is a counted [`FaultEvent`] in
//! [`FaultStats`](crate::stats::CacheStats::faults) — never a panic. The
//! injector keeps at most one flipped bit per protected 32-bit word,
//! matching the paper's single-bit fault model (and the guarantee that
//! single-error-correcting ECC corrects everything injected).

use cwp_mem::rng::SplitMix64;

pub use crate::overhead::Protection;

/// What the cache did about one detected (or silently suffered) fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// ECC corrected the flipped bit in place.
    CorrectedInPlace,
    /// Parity detected the error on a clean line; the line was refetched
    /// from the next level.
    RefetchRecovery,
    /// Parity detected the error on a dirty line: the dirty bytes existed
    /// nowhere else and are gone. The line is dropped without write-back.
    DataLoss,
    /// No protection bits: the flip went undetected and the corrupted
    /// data remains live. Counted at injection time by the simulator's
    /// omniscient observer; real hardware would see nothing.
    SilentCorruption,
}

/// One resolved fault, as recorded in the cache's bounded event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// How the fault was resolved.
    pub kind: FaultKind,
    /// Line-aligned address of the affected line.
    pub line_addr: u64,
    /// Byte offset of the flipped bit within the line.
    pub byte: u32,
    /// Bit position (0..8) within that byte.
    pub bit: u8,
    /// Dirty bytes on the line at resolution time (nonzero only for
    /// [`FaultKind::DataLoss`], where it is the number of bytes lost).
    pub dirty_bytes: u32,
}

/// Counters for injected faults and their resolutions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bits flipped in the data array by the injector.
    pub injected: u64,
    /// Faults corrected in place by ECC.
    pub corrected_in_place: u64,
    /// Faults recovered by refetching a clean parity-protected line.
    pub refetch_recoveries: u64,
    /// Unrecoverable faults: parity on a dirty line.
    pub data_loss_events: u64,
    /// Total dirty bytes destroyed across all data-loss events.
    pub data_loss_dirty_bytes: u64,
    /// Faults suffered with no protection bits (undetectable).
    pub silent_corruptions: u64,
    /// Faulty clean lines that were simply discarded at eviction or
    /// flush before any access detected them (nothing was lost: clean
    /// victims are not read out).
    pub discarded_clean: u64,
}

impl FaultStats {
    /// Faults the cache detected and resolved (everything except silent
    /// corruptions and harmless discards).
    pub fn detected(&self) -> u64 {
        self.corrected_in_place + self.refetch_recoveries + self.data_loss_events
    }

    /// Detected faults that were recovered without loss.
    pub fn recovered(&self) -> u64 {
        self.corrected_in_place + self.refetch_recoveries
    }

    /// Unrecoverable events as a fraction of injected faults.
    pub fn loss_fraction(&self) -> Option<f64> {
        (self.injected > 0).then(|| self.data_loss_events as f64 / self.injected as f64)
    }

    /// Adds another tally into this one.
    pub fn absorb(&mut self, other: FaultStats) {
        self.injected += other.injected;
        self.corrected_in_place += other.corrected_in_place;
        self.refetch_recoveries += other.refetch_recoveries;
        self.data_loss_events += other.data_loss_events;
        self.data_loss_dirty_bytes += other.data_loss_dirty_bytes;
        self.silent_corruptions += other.silent_corruptions;
        self.discarded_clean += other.discarded_clean;
    }
}

/// A deterministic seeded source of fault decisions.
///
/// Each access gives the injector one chance to fire, with probability
/// `rate_ppm / 1_000_000`. The injector only decides *whether* and
/// *where at random*; the cache supplies the candidate lines and applies
/// the flip, so identical seeds over identical access sequences produce
/// identical fault sites.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
    rate_ppm: u32,
}

impl FaultInjector {
    /// Creates an injector firing with probability `rate_ppm / 1e6` per
    /// access (rates above 1e6 are clamped), seeded with `seed`.
    pub fn new(rate_ppm: u32, seed: u64) -> Self {
        FaultInjector {
            rng: SplitMix64::seed_from_u64(seed),
            rate_ppm: rate_ppm.min(1_000_000),
        }
    }

    /// The configured fault rate in parts per million per access.
    pub fn rate_ppm(&self) -> u32 {
        self.rate_ppm
    }

    /// Decides whether a fault strikes on this access.
    pub fn fires(&mut self) -> bool {
        self.rate_ppm > 0 && self.rng.gen_ratio(self.rate_ppm, 1_000_000)
    }

    /// A uniform choice in `0..bound` (for picking lines, bytes, bits).
    pub fn pick(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let mut inj = FaultInjector::new(0, 123);
        assert!((0..10_000).all(|_| !inj.fires()));
    }

    #[test]
    fn full_rate_always_fires() {
        let mut inj = FaultInjector::new(1_000_000, 123);
        assert!((0..1_000).all(|_| inj.fires()));
        let clamped = FaultInjector::new(u32::MAX, 123);
        assert_eq!(clamped.rate_ppm(), 1_000_000);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultInjector::new(50_000, 9);
        let mut b = FaultInjector::new(50_000, 9);
        for _ in 0..5_000 {
            assert_eq!(a.fires(), b.fires());
        }
        assert_eq!(a.pick(64), b.pick(64));
    }

    #[test]
    fn stats_roll_up() {
        let mut s = FaultStats {
            injected: 10,
            corrected_in_place: 4,
            refetch_recoveries: 3,
            data_loss_events: 2,
            data_loss_dirty_bytes: 17,
            silent_corruptions: 1,
            discarded_clean: 0,
        };
        assert_eq!(s.detected(), 9);
        assert_eq!(s.recovered(), 7);
        assert_eq!(s.loss_fraction(), Some(0.2));
        let other = s;
        s.absorb(other);
        assert_eq!(s.injected, 20);
        assert_eq!(s.data_loss_dirty_bytes, 34);
        assert_eq!(FaultStats::default().loss_fraction(), None);
    }
}
