//! The first-level data-cache simulator at the heart of `cwp`.
//!
//! Implements the full write-policy matrix the paper studies:
//!
//! * **Write hits** (Section 3): [`WriteHitPolicy::WriteThrough`] passes
//!   every store to the next level; [`WriteHitPolicy::WriteBack`] marks
//!   lines dirty and writes them back on eviction.
//! * **Write misses** (Section 4, Figure 12): the four useful combinations
//!   of fetch-on-write / write-allocate / write-invalidate —
//!   [`WriteMissPolicy::FetchOnWrite`], [`WriteMissPolicy::WriteValidate`]
//!   (sub-block valid bits, no fetch), [`WriteMissPolicy::WriteAround`]
//!   (bypass, leave the old line), and [`WriteMissPolicy::WriteInvalidate`]
//!   (invalidate the indexed line, bypass).
//!
//! The cache is *data-carrying*: lines hold real bytes with per-byte valid
//! and dirty masks, so correctness is testable (any policy must be
//! functionally transparent over [`cwp_mem::MainMemory`]) and the paper's
//! byte-granularity dirty-victim statistics (Figures 20-25) fall out
//! directly.
//!
//! # Examples
//!
//! An 8KB direct-mapped write-back cache over recorded main memory:
//!
//! ```
//! use cwp_cache::{Cache, CacheConfig, WriteHitPolicy, WriteMissPolicy};
//!
//! # fn main() -> Result<(), cwp_cache::ConfigError> {
//! let config = CacheConfig::builder()
//!     .size_bytes(8 * 1024)
//!     .line_bytes(16)
//!     .write_hit(WriteHitPolicy::WriteBack)
//!     .write_miss(WriteMissPolicy::FetchOnWrite)
//!     .build()?;
//! let mut cache = Cache::with_memory(config);
//!
//! cache.write(0x1000, &[0xaa; 8]);
//! let mut buf = [0u8; 8];
//! cache.read(0x1000, &mut buf);
//! assert_eq!(buf, [0xaa; 8]);
//! assert_eq!(cache.stats().write_misses, 1);
//! assert_eq!(cache.stats().read_hits, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod config;
pub mod fault;
pub mod mask;
pub mod metrics;
pub mod overhead;
pub mod policy;
pub mod stats;

pub use cache::{Cache, LineState, MemoryCache, ProbedMemoryCache};
pub use config::{CacheConfig, CacheConfigBuilder, ConfigError};
pub use cwp_mem::CwpError;
pub use cwp_obs::{NullProbe, Probe};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultStats};
pub use overhead::Protection;
pub use policy::{WriteHitPolicy, WriteMissPolicy};
pub use stats::{CacheStats, FlushStats, VictimStats};
