//! Per-byte line masks.
//!
//! Valid and dirty state is tracked per byte with a `u64` bitmask, so lines
//! up to 64 bytes are supported — exactly the paper's 4B..64B sweep range.
//! Bit `i` of a mask corresponds to byte `i` of the line.

/// Largest supported line size in bytes.
pub const MAX_LINE_BYTES: u32 = 64;

/// A mask covering `len` bytes starting at byte `offset` of a line.
///
/// # Panics
///
/// Panics in debug builds if the range overruns 64 bytes.
#[inline]
pub fn span(offset: u32, len: u32) -> u64 {
    debug_assert!(
        offset + len <= MAX_LINE_BYTES,
        "span {offset}+{len} exceeds 64 bytes"
    );
    if len == 0 {
        return 0;
    }
    let ones = if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    };
    ones << offset
}

/// A mask covering all bytes of a `line_bytes`-byte line.
#[inline]
pub fn full(line_bytes: u32) -> u64 {
    span(0, line_bytes)
}

/// Number of bytes set in a mask.
#[inline]
pub fn count(mask: u64) -> u32 {
    mask.count_ones()
}

/// Iterates over the contiguous `(offset, len)` runs of set bytes in
/// `mask`, restricted to the low `line_bytes` bits.
///
/// Used for partial write-backs: each run becomes one contiguous data
/// transfer.
pub fn runs(mask: u64, line_bytes: u32) -> Runs {
    Runs {
        mask: mask & full(line_bytes),
        pos: 0,
        line_bytes,
    }
}

/// Iterator over contiguous set-byte runs of a mask. See [`runs`].
#[derive(Debug, Clone)]
pub struct Runs {
    mask: u64,
    pos: u32,
    line_bytes: u32,
}

impl Iterator for Runs {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        while self.pos < self.line_bytes {
            if self.mask & (1u64 << self.pos) != 0 {
                let start = self.pos;
                while self.pos < self.line_bytes && self.mask & (1u64 << self.pos) != 0 {
                    self.pos += 1;
                }
                return Some((start, self.pos - start));
            }
            self.pos += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_places_bits() {
        assert_eq!(span(0, 4), 0b1111);
        assert_eq!(span(4, 4), 0b1111_0000);
        assert_eq!(span(0, 0), 0);
        assert_eq!(span(0, 64), u64::MAX);
    }

    #[test]
    fn full_covers_the_line() {
        assert_eq!(full(16), 0xffff);
        assert_eq!(count(full(64)), 64);
        assert_eq!(count(full(4)), 4);
    }

    #[test]
    fn runs_finds_contiguous_spans() {
        let m = span(0, 4) | span(8, 8);
        let got: Vec<(u32, u32)> = runs(m, 16).collect();
        assert_eq!(got, [(0, 4), (8, 8)]);
    }

    #[test]
    fn runs_ignores_bits_past_the_line() {
        let m = span(0, 2) | span(20, 4);
        let got: Vec<(u32, u32)> = runs(m, 16).collect();
        assert_eq!(got, [(0, 2)]);
    }

    #[test]
    fn runs_of_empty_mask_is_empty() {
        assert_eq!(runs(0, 64).count(), 0);
    }

    #[test]
    fn runs_partition_the_mask() {
        // Formerly a proptest; now driven by the in-tree PRNG over random
        // masks and every supported line size.
        let mut rng = cwp_mem::rng::SplitMix64::seed_from_u64(0x6a5c);
        for _ in 0..512 {
            let mask = rng.next_u64();
            for line in [4u32, 8, 16, 32, 64] {
                let clipped = mask & full(line);
                let mut rebuilt = 0u64;
                let mut total = 0u32;
                for (off, len) in runs(mask, line) {
                    assert!(len >= 1);
                    // Runs are maximal: bytes just outside are clear.
                    if off > 0 {
                        assert_eq!(clipped & (1 << (off - 1)), 0);
                    }
                    rebuilt |= span(off, len);
                    total += len;
                }
                assert_eq!(rebuilt, clipped);
                assert_eq!(total, count(clipped));
            }
        }
    }
}
