//! Derived metrics comparing policy runs, as the paper's figures define
//! them.

use crate::stats::CacheStats;

/// Percentage of the baseline's *write* misses removed by an alternative
/// write-miss policy (Figures 13 and 15).
///
/// The paper counts the misses that actually fetch (and therefore stall):
/// `(baseline_fetch_misses - policy_fetch_misses) / baseline_write_misses`.
/// The result can exceed 100% — the paper observes this for write-around on
/// liver at 32-64KB, where bypassing also avoids *read* misses by
/// preserving resident input data.
///
/// Returns `None` if the baseline had no write misses.
pub fn write_miss_reduction(baseline: &CacheStats, policy: &CacheStats) -> Option<f64> {
    (baseline.write_misses > 0).then(|| {
        (baseline.fetch_misses() as f64 - policy.fetch_misses() as f64)
            / baseline.write_misses as f64
    })
}

/// Percentage of the baseline's *total* misses removed by an alternative
/// write-miss policy (Figures 14 and 16).
///
/// Returns `None` if the baseline had no misses.
pub fn total_miss_reduction(baseline: &CacheStats, policy: &CacheStats) -> Option<f64> {
    (baseline.fetch_misses() > 0).then(|| {
        (baseline.fetch_misses() as f64 - policy.fetch_misses() as f64)
            / baseline.fetch_misses() as f64
    })
}

/// Write-back transactions implied by the write-hit stream alone:
/// `writes - writes_to_already_dirty_lines` (Section 3's identity).
///
/// Each write that does not hit an already-dirty line makes a line newly
/// dirty, and each newly dirty line is written back exactly once (counting
/// the final flush).
pub fn write_hit_writeback_transactions(stats: &CacheStats) -> u64 {
    stats.writes - stats.writes_to_dirty
}

/// Formats a fraction as a percentage with one decimal, the paper's usual
/// axis unit.
pub fn pct(fraction: f64) -> f64 {
    fraction * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(read_misses: u64, write_misses: u64, fetches: u64) -> CacheStats {
        CacheStats {
            read_misses,
            write_misses,
            fetches,
            ..CacheStats::default()
        }
    }

    #[test]
    fn reductions_against_a_fetch_on_write_baseline() {
        // Baseline: 60 read misses + 40 write misses, all fetch.
        let base = stats(60, 40, 100);
        // Write-validate: writes never fetch, reads unchanged.
        let wv = stats(60, 40, 60);
        assert_eq!(write_miss_reduction(&base, &wv), Some(1.0));
        assert_eq!(total_miss_reduction(&base, &wv), Some(0.4));
    }

    #[test]
    fn write_around_can_exceed_one_hundred_percent() {
        let base = stats(60, 40, 100);
        // Write-around also eliminated 10 read misses.
        let wa = stats(50, 40, 50);
        assert_eq!(write_miss_reduction(&base, &wa), Some(1.25));
    }

    #[test]
    fn zero_baselines_yield_none() {
        let base = stats(10, 0, 10);
        let pol = stats(10, 0, 10);
        assert_eq!(write_miss_reduction(&base, &pol), None);
        assert!(total_miss_reduction(&base, &pol).is_some());
        let empty = stats(0, 0, 0);
        assert_eq!(total_miss_reduction(&empty, &pol), None);
    }

    #[test]
    fn writeback_transaction_identity() {
        let s = CacheStats {
            writes: 100,
            writes_to_dirty: 58,
            ..CacheStats::default()
        };
        assert_eq!(write_hit_writeback_transactions(&s), 42);
    }

    #[test]
    fn pct_scales() {
        assert_eq!(pct(0.5), 50.0);
    }
}
