//! SRAM metadata and error-protection overhead arithmetic (Section 3).
//!
//! The paper's fourth dimension of write-hit comparison is error
//! tolerance: "a write-through cache can function with either hard or soft
//! single-bit errors, if parity is provided... A write-back cache can not
//! tolerate a single-bit error of any type unless ECC is provided." This
//! module reproduces the paper's bit arithmetic:
//!
//! * single-error-correct ECC needs 6 check bits per 32-bit word
//!   (18.75% of data), and byte stores must read-decode-modify-encode;
//! * byte parity needs 4 bits per 32-bit word (12.5%), two-thirds of the
//!   ECC overhead, while tolerating one error *per byte* — four per word;
//! * write-validate needs sub-block valid bits: one per word (3.1%) or,
//!   for architectures with byte writes, one per byte (12.5%).

use std::fmt;

use crate::config::CacheConfig;
use crate::policy::{WriteHitPolicy, WriteMissPolicy};

/// Error-protection scheme for the data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// No protection bits.
    None,
    /// One parity bit per byte: detects (and, by refetching, corrects)
    /// single-bit errors in clean data. Sufficient only for write-through
    /// caches, which hold no unique dirty data.
    ByteParity,
    /// Single-error-correcting ECC over each 32-bit word: 6 check bits.
    /// Required for write-back caches.
    EccPerWord,
}

impl Protection {
    /// Check bits per 32-bit data word.
    pub fn bits_per_word(self) -> u32 {
        match self {
            Protection::None => 0,
            Protection::ByteParity => 4,
            Protection::EccPerWord => 6,
        }
    }

    /// Correctable single-bit errors per 32-bit word (by refetch for
    /// parity in a write-through cache, in place for ECC).
    ///
    /// The paper: "byte parity on a four-byte word would allow four
    /// single-bit errors to be corrected by refetching a write-through
    /// line in comparison to only one error for an ECC-protected
    /// write-back cache word."
    pub fn correctable_errors_per_word(self, refetch_possible: bool) -> u32 {
        match self {
            Protection::None => 0,
            Protection::ByteParity => {
                if refetch_possible {
                    4
                } else {
                    0
                }
            }
            Protection::EccPerWord => 1,
        }
    }

    /// The protection the paper says a cache with this write-hit policy
    /// needs for single-bit error safety.
    pub fn required_for(hit: WriteHitPolicy) -> Protection {
        match hit {
            WriteHitPolicy::WriteThrough => Protection::ByteParity,
            WriteHitPolicy::WriteBack => Protection::EccPerWord,
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protection::None => "none",
            Protection::ByteParity => "byte-parity",
            Protection::EccPerWord => "ecc",
        })
    }
}

/// A bit-level inventory of one cache configuration's SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitBudget {
    /// Data bits.
    pub data_bits: u64,
    /// Address tag bits (assuming 32-bit physical addresses).
    pub tag_bits: u64,
    /// Line/sub-block valid bits.
    pub valid_bits: u64,
    /// Dirty bits (zero for write-through).
    pub dirty_bits: u64,
    /// Parity or ECC check bits.
    pub protection_bits: u64,
}

impl BitBudget {
    /// Everything except the data bits.
    pub fn overhead_bits(&self) -> u64 {
        self.tag_bits + self.valid_bits + self.dirty_bits + self.protection_bits
    }

    /// Overhead as a fraction of the data bits.
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_bits() as f64 / self.data_bits as f64
    }

    /// Total SRAM bits.
    pub fn total_bits(&self) -> u64 {
        self.data_bits + self.overhead_bits()
    }
}

/// Computes the bit budget of a configuration under a protection scheme.
///
/// Valid bits: one per line normally; one per 32-bit word when the miss
/// policy is write-validate (the sub-block valid bits it requires). Dirty
/// bits: one per line for write-back (or one per word with
/// [`CacheConfig::partial_writeback`]); none for write-through.
pub fn bit_budget(config: &CacheConfig, protection: Protection) -> BitBudget {
    let lines = u64::from(config.lines());
    let line_bits = u64::from(config.line_bytes()) * 8;
    let words_per_line = u64::from(config.line_bytes()) / 4;

    // 32-bit physical address: offset + index bits are implicit.
    let offset_bits = config.line_bytes().trailing_zeros();
    let index_bits = config.sets().trailing_zeros();
    let tag_bits_per_line = u64::from(32 - offset_bits - index_bits);

    let valid_per_line = if config.write_miss() == WriteMissPolicy::WriteValidate {
        words_per_line
    } else {
        1
    };
    let dirty_per_line = match config.write_hit() {
        WriteHitPolicy::WriteThrough => 0,
        WriteHitPolicy::WriteBack => {
            if config.partial_writeback() {
                words_per_line
            } else {
                1
            }
        }
    };

    BitBudget {
        data_bits: lines * line_bits,
        tag_bits: lines * tag_bits_per_line,
        valid_bits: lines * valid_per_line,
        dirty_bits: lines * dirty_per_line,
        protection_bits: lines * words_per_line * u64::from(protection.bits_per_word()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(hit: WriteHitPolicy, miss: WriteMissPolicy) -> CacheConfig {
        CacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(16)
            .write_hit(hit)
            .write_miss(miss)
            .build()
            .unwrap()
    }

    #[test]
    fn papers_protection_arithmetic() {
        // "single bit detection and correction ECC requires 6 bits per 32
        // bit word versus 4 bits per 8 bit byte giving 16 bits per 4
        // bytes" — i.e. 4 parity bits per word.
        assert_eq!(Protection::EccPerWord.bits_per_word(), 6);
        assert_eq!(Protection::ByteParity.bits_per_word(), 4);
        // "byte parity requires only two-thirds of the overhead of word ECC"
        assert_eq!(
            Protection::ByteParity.bits_per_word() * 3,
            Protection::EccPerWord.bits_per_word() * 2
        );
        // "four single-bit errors ... in comparison to only one"
        assert_eq!(Protection::ByteParity.correctable_errors_per_word(true), 4);
        assert_eq!(Protection::EccPerWord.correctable_errors_per_word(true), 1);
        // Parity cannot correct unique dirty data (no refetch possible).
        assert_eq!(Protection::ByteParity.correctable_errors_per_word(false), 0);
    }

    #[test]
    fn required_protection_follows_the_hit_policy() {
        assert_eq!(
            Protection::required_for(WriteHitPolicy::WriteThrough),
            Protection::ByteParity
        );
        assert_eq!(
            Protection::required_for(WriteHitPolicy::WriteBack),
            Protection::EccPerWord
        );
    }

    #[test]
    fn write_through_parity_is_cheaper_than_write_back_ecc() {
        let wt = cfg(WriteHitPolicy::WriteThrough, WriteMissPolicy::FetchOnWrite);
        let wb = cfg(WriteHitPolicy::WriteBack, WriteMissPolicy::FetchOnWrite);
        let wt_bits = bit_budget(&wt, Protection::required_for(wt.write_hit()));
        let wb_bits = bit_budget(&wb, Protection::required_for(wb.write_hit()));
        assert!(wt_bits.total_bits() < wb_bits.total_bits());
        assert_eq!(wt_bits.dirty_bits, 0, "write-through needs no dirty bits");
        assert_eq!(wb_bits.dirty_bits, u64::from(wb.lines()));
    }

    #[test]
    fn write_validate_adds_word_valid_bits() {
        let fow = cfg(WriteHitPolicy::WriteThrough, WriteMissPolicy::FetchOnWrite);
        let wv = cfg(WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteValidate);
        let fow_bits = bit_budget(&fow, Protection::None);
        let wv_bits = bit_budget(&wv, Protection::None);
        // 16B lines = 4 words: 4 valid bits instead of 1.
        assert_eq!(wv_bits.valid_bits, 4 * fow_bits.valid_bits);
        // "a valid bit per word (3.1%)" — of the data bits.
        let valid_fraction = wv_bits.valid_bits as f64 / wv_bits.data_bits as f64;
        assert!((valid_fraction - 1.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn subblock_dirty_bits_cost_a_bit_per_word() {
        let whole = cfg(WriteHitPolicy::WriteBack, WriteMissPolicy::FetchOnWrite);
        let partial = whole.to_builder().partial_writeback(true).build().unwrap();
        let a = bit_budget(&whole, Protection::None);
        let b = bit_budget(&partial, Protection::None);
        assert_eq!(b.dirty_bits, 4 * a.dirty_bits);
    }

    #[test]
    fn budget_totals_are_consistent() {
        let c = cfg(WriteHitPolicy::WriteBack, WriteMissPolicy::FetchOnWrite);
        let b = bit_budget(&c, Protection::EccPerWord);
        assert_eq!(b.total_bits(), b.data_bits + b.overhead_bits());
        assert_eq!(b.data_bits, 8 * 1024 * 8);
        assert!(b.overhead_fraction() > 0.0 && b.overhead_fraction() < 0.5);
    }
}
