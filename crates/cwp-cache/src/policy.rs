//! The write-hit and write-miss policy enums (Sections 3 and 4).

use std::fmt;

/// What happens when a write *hits* in the cache (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WriteHitPolicy {
    /// Store into the cache *and* pass the data to the next level
    /// ("store-through").
    WriteThrough,
    /// Store only into the cache, marking the line dirty; the data reaches
    /// the next level when the dirty line is evicted ("store-in",
    /// "copy-back").
    WriteBack,
}

impl WriteHitPolicy {
    /// Both policies, write-through first.
    pub const ALL: [WriteHitPolicy; 2] = [WriteHitPolicy::WriteThrough, WriteHitPolicy::WriteBack];
}

impl fmt::Display for WriteHitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteHitPolicy::WriteThrough => f.write_str("write-through"),
            WriteHitPolicy::WriteBack => f.write_str("write-back"),
        }
    }
}

/// What happens when a write *misses* in the cache (Section 4, Figure 12).
///
/// The paper derives these four from three semi-independent bits:
/// fetch-on-write?, write-allocate?, and write-invalidate?. The other four
/// combinations are not useful (fetching data only to discard it, or
/// allocating a line only to invalidate it), so they are unrepresentable
/// here — the enum *is* Figure 12's decision tree.
///
/// | Policy | fetch? | allocate? | invalidate? |
/// |---|---|---|---|
/// | `FetchOnWrite` | yes | yes | no |
/// | `WriteValidate` | no | yes | no |
/// | `WriteAround` | no | no | no |
/// | `WriteInvalidate` | no | no | yes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WriteMissPolicy {
    /// Fetch the missed line, allocate it, then write: the literature's
    /// near-universal default, and the baseline of Figures 13-16.
    FetchOnWrite,
    /// Allocate the line without fetching; valid bits cover only the bytes
    /// written. Requires sub-block valid bits and partial-line writes in
    /// lower levels. The paper's best performer.
    WriteValidate,
    /// Pass the write to the next level, leaving the cached line's old
    /// contents in place. Only meaningful with write-through hits.
    WriteAround,
    /// Invalidate the indexed line and pass the write on. Models a
    /// direct-mapped write-through cache that writes data concurrently
    /// with the tag probe and corrupts the line when the probe misses.
    /// Only meaningful with write-through hits.
    WriteInvalidate,
}

impl WriteMissPolicy {
    /// All four policies, in Figure 17's most-traffic-first order.
    pub const ALL: [WriteMissPolicy; 4] = [
        WriteMissPolicy::FetchOnWrite,
        WriteMissPolicy::WriteInvalidate,
        WriteMissPolicy::WriteAround,
        WriteMissPolicy::WriteValidate,
    ];

    /// Does a write miss fetch the missed line from the next level?
    pub fn fetches_on_write(self) -> bool {
        matches!(self, WriteMissPolicy::FetchOnWrite)
    }

    /// Does a write miss allocate a line for the written address?
    pub fn allocates(self) -> bool {
        matches!(
            self,
            WriteMissPolicy::FetchOnWrite | WriteMissPolicy::WriteValidate
        )
    }

    /// Does a write miss invalidate the line it indexed?
    pub fn invalidates(self) -> bool {
        matches!(self, WriteMissPolicy::WriteInvalidate)
    }

    /// Does the written data bypass the cache to the next level on a miss?
    ///
    /// True exactly for the no-write-allocate policies.
    pub fn bypasses(self) -> bool {
        !self.allocates()
    }
}

impl fmt::Display for WriteMissPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteMissPolicy::FetchOnWrite => f.write_str("fetch-on-write"),
            WriteMissPolicy::WriteValidate => f.write_str("write-validate"),
            WriteMissPolicy::WriteAround => f.write_str("write-around"),
            WriteMissPolicy::WriteInvalidate => f.write_str("write-invalidate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_12_decision_bits() {
        use WriteMissPolicy::*;
        // (policy, fetch?, allocate?, invalidate?)
        let table = [
            (FetchOnWrite, true, true, false),
            (WriteValidate, false, true, false),
            (WriteAround, false, false, false),
            (WriteInvalidate, false, false, true),
        ];
        for (p, fetch, alloc, inval) in table {
            assert_eq!(p.fetches_on_write(), fetch, "{p}");
            assert_eq!(p.allocates(), alloc, "{p}");
            assert_eq!(p.invalidates(), inval, "{p}");
            assert_eq!(p.bypasses(), !alloc, "{p}");
        }
    }

    #[test]
    fn all_lists_are_complete_and_distinct() {
        assert_eq!(WriteMissPolicy::ALL.len(), 4);
        assert_eq!(WriteHitPolicy::ALL.len(), 2);
        let mut seen = std::collections::HashSet::new();
        assert!(WriteMissPolicy::ALL.iter().all(|p| seen.insert(*p)));
    }

    #[test]
    fn display_names_match_the_paper() {
        assert_eq!(WriteMissPolicy::WriteValidate.to_string(), "write-validate");
        assert_eq!(WriteHitPolicy::WriteBack.to_string(), "write-back");
    }
}
