//! Cache event counters and victim statistics.

use std::fmt;

use crate::fault::FaultStats;

/// Statistics about evicted lines ("victims"), at byte granularity.
///
/// The paper's Figures 20-25 are built from exactly these counters. A
/// *victim* is a valid line replaced on a miss; filling a previously
/// invalid way is not an eviction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VictimStats {
    /// Valid lines replaced.
    pub total: u64,
    /// Victims with at least one dirty byte.
    pub dirty: u64,
    /// Total dirty bytes over all dirty victims.
    pub dirty_bytes: u64,
}

impl VictimStats {
    /// Fraction of victims with at least one dirty byte (Figure 20/23).
    ///
    /// Returns `None` when there were no victims.
    pub fn dirty_fraction(&self) -> Option<f64> {
        (self.total > 0).then(|| self.dirty as f64 / self.total as f64)
    }

    /// Average fraction of bytes dirty within dirty victims (Figure 21/24).
    pub fn bytes_dirty_in_dirty_fraction(&self, line_bytes: u32) -> Option<f64> {
        (self.dirty > 0)
            .then(|| self.dirty_bytes as f64 / (self.dirty * u64::from(line_bytes)) as f64)
    }

    /// Average fraction of bytes dirty over *all* victims (Figure 22/25).
    pub fn bytes_dirty_per_victim_fraction(&self, line_bytes: u32) -> Option<f64> {
        (self.total > 0)
            .then(|| self.dirty_bytes as f64 / (self.total * u64::from(line_bytes)) as f64)
    }

    /// Adds another victim tally into this one.
    pub fn absorb(&mut self, other: VictimStats) {
        self.total += other.total;
        self.dirty += other.dirty;
        self.dirty_bytes += other.dirty_bytes;
    }
}

impl fmt::Display for VictimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} victims ({} dirty, {} dirty bytes)",
            self.total, self.dirty, self.dirty_bytes
        )
    }
}

/// Statistics from flushing the cache after a run ("flush stop").
///
/// The paper distinguishes *cold stop* (measure only evictions during
/// execution) from *flush stop* (also write out what remains in the cache);
/// Section 5 shows cold stop badly undercounts write-back traffic for
/// benchmarks whose working set fits the cache.
pub type FlushStats = VictimStats;

/// Event counters for one cache over one run.
///
/// Accesses wider than a line are split at line boundaries and each piece
/// counts separately, matching how the paper's 4B-line configurations see
/// 8B stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read sub-accesses.
    pub reads: u64,
    /// Write sub-accesses.
    pub writes: u64,
    /// Reads whose tag matched with all accessed bytes valid.
    pub read_hits: u64,
    /// Reads that required a line fetch (tag mismatch, or invalid bytes).
    pub read_misses: u64,
    /// Subset of `read_misses` where the tag matched but some accessed
    /// bytes were invalid (possible only after write-validate allocations).
    pub partial_read_misses: u64,
    /// Writes whose tag matched a resident line.
    pub write_hits: u64,
    /// Writes with no matching tag.
    pub write_misses: u64,
    /// Writes (hits) to lines that already had a dirty byte — the metric
    /// behind Figures 1 and 2.
    pub writes_to_dirty: u64,
    /// Lines fetched from the next level (read misses, partial-validity
    /// refills, and fetch-on-write misses).
    pub fetches: u64,
    /// Lines invalidated by write-invalidate misses.
    pub invalidations: u64,
    /// Lines claimed by cache-line allocation instructions
    /// ([`crate::Cache::allocate_line`]).
    pub line_allocations: u64,
    /// Evictions during execution (cold stop).
    pub victims: VictimStats,
    /// Lines written out / discarded by [`crate::Cache::flush`].
    pub flush: FlushStats,
    /// Injected faults and their resolutions (Section 3's error model).
    pub faults: FaultStats,
}

impl CacheStats {
    /// Total sub-accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Raw miss events: reads or writes whose tag (or validity) missed,
    /// regardless of whether a fetch resulted.
    pub fn total_misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss events per access.
    pub fn miss_rate(&self) -> f64 {
        self.total_misses() as f64 / self.accesses() as f64
    }

    /// Misses that actually stall for a fetch: the quantity Figures 13-16
    /// compare across write-miss policies. Under fetch-on-write this equals
    /// [`CacheStats::total_misses`]; under the no-fetch policies writes
    /// never fetch, so only (possibly extra) read misses remain.
    pub fn fetch_misses(&self) -> u64 {
        self.fetches
    }

    /// Fraction of all misses that are write misses (Figures 10 and 11).
    pub fn write_miss_fraction(&self) -> Option<f64> {
        let total = self.total_misses();
        (total > 0).then(|| self.write_misses as f64 / total as f64)
    }

    /// Fraction of writes that hit already-dirty lines (Figures 1 and 2).
    ///
    /// For a write-back cache this is exactly the fraction of write traffic
    /// the cache removes relative to write-through, when whole dirty lines
    /// are written back.
    pub fn dirty_write_fraction(&self) -> Option<f64> {
        (self.writes > 0).then(|| self.writes_to_dirty as f64 / self.writes as f64)
    }

    /// Victim statistics including the flush ("flush stop", the paper's
    /// dotted lines in Figure 20).
    pub fn victims_with_flush(&self) -> VictimStats {
        let mut v = self.victims;
        v.absorb(self.flush);
        v
    }

    /// Adds another run's counters into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.partial_read_misses += other.partial_read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.writes_to_dirty += other.writes_to_dirty;
        self.fetches += other.fetches;
        self.invalidations += other.invalidations;
        self.line_allocations += other.line_allocations;
        self.victims.absorb(other.victims);
        self.flush.absorb(other.flush);
        self.faults.absorb(other.faults);
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads ({} miss), {} writes ({} miss), {} fetches",
            self.reads, self.read_misses, self.writes, self.write_misses, self.fetches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_fractions() {
        let v = VictimStats {
            total: 10,
            dirty: 5,
            dirty_bytes: 40,
        };
        assert_eq!(v.dirty_fraction(), Some(0.5));
        assert_eq!(v.bytes_dirty_in_dirty_fraction(16), Some(0.5));
        assert_eq!(v.bytes_dirty_per_victim_fraction(16), Some(0.25));
    }

    #[test]
    fn empty_victims_yield_none() {
        let v = VictimStats::default();
        assert_eq!(v.dirty_fraction(), None);
        assert_eq!(v.bytes_dirty_in_dirty_fraction(16), None);
        assert_eq!(v.bytes_dirty_per_victim_fraction(16), None);
    }

    #[test]
    fn stats_arithmetic() {
        let mut s = CacheStats {
            reads: 80,
            writes: 20,
            read_hits: 70,
            read_misses: 10,
            write_hits: 15,
            write_misses: 5,
            writes_to_dirty: 9,
            fetches: 15,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 100);
        assert_eq!(s.total_misses(), 15);
        assert!((s.miss_rate() - 0.15).abs() < 1e-12);
        assert_eq!(s.write_miss_fraction(), Some(5.0 / 15.0));
        assert_eq!(s.dirty_write_fraction(), Some(0.45));
        let other = s;
        s.absorb(&other);
        assert_eq!(s.accesses(), 200);
        assert_eq!(s.fetches, 30);
    }

    #[test]
    fn victims_with_flush_combines_both() {
        let s = CacheStats {
            victims: VictimStats {
                total: 3,
                dirty: 1,
                dirty_bytes: 16,
            },
            flush: VictimStats {
                total: 2,
                dirty: 2,
                dirty_bytes: 20,
            },
            ..CacheStats::default()
        };
        let all = s.victims_with_flush();
        assert_eq!(
            all,
            VictimStats {
                total: 5,
                dirty: 3,
                dirty_bytes: 36
            }
        );
    }
}
