//! Fault-injection and error-recovery semantics (Section 3).
//!
//! These tests pin down the paper's reliability claims as measured
//! behaviour: write-through + byte parity never loses data (clean lines
//! refetch), write-back + byte parity loses dirty lines, ECC corrects
//! everything in place, and the whole fault machinery is deterministic
//! under a fixed seed.

use cwp_cache::{
    Cache, CacheConfig, CwpError, FaultKind, FaultStats, Protection, WriteHitPolicy,
    WriteMissPolicy,
};
use cwp_mem::rng::SplitMix64;
use cwp_mem::MainMemory;

fn faulty_config(
    hit: WriteHitPolicy,
    protection: Protection,
    rate_ppm: u32,
    seed: u64,
) -> CacheConfig {
    CacheConfig::builder()
        .size_bytes(256)
        .line_bytes(16)
        .write_hit(hit)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .protection(protection)
        .fault_rate_ppm(rate_ppm)
        .fault_seed(seed)
        .build()
        .expect("valid configuration")
}

/// A conflict-heavy random workload; returns the cache's final fault
/// counters after a flush.
fn run_workload(config: CacheConfig, workload_seed: u64) -> (FaultStats, Vec<u64>) {
    let mut rng = SplitMix64::seed_from_u64(workload_seed);
    let mut cache = Cache::new(config, MainMemory::new());
    let mut buf = [0u8; 8];
    for _ in 0..4_000 {
        let addr = rng.below(1024) & !7;
        if rng.gen_bool() {
            cache.write(addr, &[rng.next_u64() as u8; 8]);
        } else {
            cache.read(addr, &mut buf);
        }
    }
    cache.flush();
    let sites: Vec<u64> = cache
        .fault_log()
        .iter()
        .map(|e| e.line_addr ^ (u64::from(e.byte) << 48) ^ (u64::from(e.bit) << 56))
        .collect();
    (cache.stats().faults, sites)
}

#[test]
fn fault_injection_is_deterministic_under_a_fixed_seed() {
    for protection in [
        Protection::None,
        Protection::ByteParity,
        Protection::EccPerWord,
    ] {
        let hit = if protection == Protection::ByteParity {
            WriteHitPolicy::WriteThrough
        } else {
            WriteHitPolicy::WriteBack
        };
        let config = faulty_config(hit, protection, 30_000, 0x5eed_0001);
        let a = run_workload(config, 42);
        let b = run_workload(config, 42);
        assert_eq!(a, b, "{protection:?}: same seeds must give same faults");
        assert!(a.0.injected > 0, "{protection:?}: workload saw no faults");

        let reseeded = faulty_config(hit, protection, 30_000, 0x5eed_0002);
        let c = run_workload(reseeded, 42);
        assert_ne!(a.1, c.1, "{protection:?}: a new seed must move the faults");
    }
}

#[test]
fn wt_parity_never_loses_data_and_counts_refetches() {
    let config = faulty_config(
        WriteHitPolicy::WriteThrough,
        Protection::ByteParity,
        50_000,
        0x11,
    );
    let (faults, _) = run_workload(config, 7);
    assert!(faults.injected > 50, "workload should see plenty of faults");
    assert_eq!(faults.data_loss_events, 0, "WT+parity must never lose data");
    assert_eq!(faults.data_loss_dirty_bytes, 0);
    assert_eq!(
        faults.corrected_in_place, 0,
        "parity cannot correct in place"
    );
    assert!(
        faults.refetch_recoveries > 0,
        "recoveries happen by refetch"
    );
    // Every injected fault is accounted for: recovered by refetch, still
    // outstanding at the end (flush discards clean faulty lines), or
    // harmlessly discarded with a clean victim.
    assert_eq!(
        faults.injected,
        faults.refetch_recoveries + faults.discarded_clean,
        "after a flush no fault may remain unaccounted"
    );
}

#[test]
fn wb_parity_loses_dirty_lines_at_the_dirty_fraction() {
    let config = faulty_config(
        WriteHitPolicy::WriteBack,
        Protection::ByteParity,
        50_000,
        0x22,
    );
    let (faults, _) = run_workload(config, 7);
    assert!(faults.injected > 50);
    assert!(
        faults.data_loss_events > 0,
        "WB+parity must lose dirty lines"
    );
    assert!(faults.data_loss_dirty_bytes >= faults.data_loss_events);
    // The loss share should be material: this write-heavy workload keeps
    // roughly half the lines dirty, and faults land uniformly.
    let lost = faults.data_loss_events as f64;
    let resolved =
        (faults.data_loss_events + faults.refetch_recoveries + faults.discarded_clean) as f64;
    let share = lost / resolved;
    assert!(
        (0.15..=0.95).contains(&share),
        "loss share {share:.2} should track the dirty-line fraction"
    );
}

#[test]
fn wb_ecc_corrects_every_injected_fault() {
    let config = faulty_config(
        WriteHitPolicy::WriteBack,
        Protection::EccPerWord,
        50_000,
        0x33,
    );
    let (faults, _) = run_workload(config, 7);
    assert!(faults.injected > 50);
    assert_eq!(faults.data_loss_events, 0, "ECC never loses data");
    assert_eq!(faults.refetch_recoveries, 0, "ECC corrects without refetch");
    assert_eq!(
        faults.corrected_in_place, faults.injected,
        "after a flush every injected fault has been corrected"
    );
}

#[test]
fn unprotected_faults_are_counted_but_invisible() {
    let config = faulty_config(WriteHitPolicy::WriteBack, Protection::None, 50_000, 0x44);
    let (faults, _) = run_workload(config, 7);
    assert!(faults.injected > 50);
    assert_eq!(faults.silent_corruptions, faults.injected);
    assert_eq!(faults.detected(), 0, "no check bits, no detection");
}

#[test]
fn try_write_surfaces_data_loss_as_a_typed_error() {
    // 100% fault rate, write-back + parity: the very next access after a
    // dirty line faults must report the loss (and must not panic).
    let config = faulty_config(
        WriteHitPolicy::WriteBack,
        Protection::ByteParity,
        1_000_000,
        0x55,
    );
    let mut cache = Cache::new(config, MainMemory::new());
    cache.write(0x0, &[0xaa; 8]); // line becomes dirty (no fault: array was empty)
                                  // Each subsequent access injects one fault; keep touching the same
                                  // dirty line until its fault is detected.
    let mut saw_loss = false;
    for _ in 0..64 {
        match cache.try_write(0x8, &[0xbb; 8]) {
            Ok(()) => {}
            Err(CwpError::FaultLoss {
                line_addr,
                dirty_bytes,
            }) => {
                assert_eq!(line_addr, 0x0);
                assert!(dirty_bytes > 0);
                saw_loss = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        saw_loss,
        "a 100% fault rate must eventually hit the dirty line"
    );
    let log = cache.fault_log();
    assert!(
        log.iter().any(|e| e.kind == FaultKind::DataLoss),
        "the loss must appear in the structured event log"
    );
}

#[test]
fn try_read_and_try_write_reject_address_overflow() {
    let mut cache = Cache::new(CacheConfig::default(), MainMemory::new());
    let mut buf = [0u8; 8];
    assert!(matches!(
        cache.try_read(u64::MAX - 2, &mut buf),
        Err(CwpError::AddressOverflow { .. })
    ));
    assert!(matches!(
        cache.try_write(u64::MAX, &buf),
        Err(CwpError::AddressOverflow { .. })
    ));
    // A span ending exactly at the top of the address space is fine.
    assert!(cache.try_read(u64::MAX - 7, &mut buf).is_ok());
    assert!(cache.try_write(0x100, &buf).is_ok());
}

#[test]
fn fault_log_matches_counters_and_is_bounded() {
    let config = faulty_config(
        WriteHitPolicy::WriteThrough,
        Protection::ByteParity,
        100_000,
        0x66,
    );
    let mut rng = SplitMix64::seed_from_u64(3);
    let mut cache = Cache::new(config, MainMemory::new());
    let mut buf = [0u8; 4];
    for _ in 0..2_000 {
        cache.read(rng.below(512) & !3, &mut buf);
    }
    let refetches = cache
        .fault_log()
        .iter()
        .filter(|e| e.kind == FaultKind::RefetchRecovery)
        .count() as u64;
    assert_eq!(refetches, cache.stats().faults.refetch_recoveries);
    assert!(cache.fault_log().len() <= 4096);
}
