//! Differential testing against an independent reference model.
//!
//! A deliberately naive tag-only simulator re-implements the lookup,
//! LRU replacement, and policy semantics with different data structures
//! (per-set `VecDeque` recency lists instead of timestamps, no data).
//! Hit/miss/victim counts must match the real cache exactly on random
//! access streams across geometries and policies.

use std::collections::VecDeque;

use cwp_cache::{Cache, CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_mem::MainMemory;
use proptest::prelude::*;

/// Counts produced by either model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counts {
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
    fetches: u64,
    victims: u64,
    dirty_victims: u64,
}

/// The naive model: per set, a recency-ordered list of (tag, dirty).
/// Front = most recent. No partial validity (fetch-on-write and
/// write-around/write-invalidate only — policies whose lines are always
/// whole).
struct Reference {
    sets: Vec<VecDeque<(u64, bool)>>,
    ways: usize,
    line_shift: u32,
    hit: WriteHitPolicy,
    miss: WriteMissPolicy,
    counts: Counts,
}

impl Reference {
    fn new(config: &CacheConfig) -> Self {
        Reference {
            sets: vec![VecDeque::new(); config.sets() as usize],
            ways: config.associativity() as usize,
            line_shift: config.line_bytes().trailing_zeros(),
            hit: config.write_hit(),
            miss: config.write_miss(),
            counts: Counts::default(),
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    fn evict_for_fill(&mut self, set: usize) {
        if self.sets[set].len() == self.ways {
            let (_tag, dirty) = self.sets[set].pop_back().expect("set is full");
            self.counts.victims += 1;
            if dirty {
                self.counts.dirty_victims += 1;
            }
        }
    }

    fn read(&mut self, addr: u64) {
        let (set, tag) = self.locate(addr);
        if let Some(pos) = self.sets[set].iter().position(|&(t, _)| t == tag) {
            self.counts.read_hits += 1;
            let entry = self.sets[set].remove(pos).expect("position just found");
            self.sets[set].push_front(entry);
        } else {
            self.counts.read_misses += 1;
            self.counts.fetches += 1;
            self.evict_for_fill(set);
            self.sets[set].push_front((tag, false));
        }
    }

    fn write(&mut self, addr: u64) {
        let (set, tag) = self.locate(addr);
        let dirty = self.hit == WriteHitPolicy::WriteBack;
        if let Some(pos) = self.sets[set].iter().position(|&(t, _)| t == tag) {
            self.counts.write_hits += 1;
            let (t, was_dirty) = self.sets[set].remove(pos).expect("position just found");
            self.sets[set].push_front((t, was_dirty || dirty));
            return;
        }
        self.counts.write_misses += 1;
        match self.miss {
            WriteMissPolicy::FetchOnWrite => {
                self.counts.fetches += 1;
                self.evict_for_fill(set);
                self.sets[set].push_front((tag, dirty));
            }
            WriteMissPolicy::WriteValidate => {
                self.evict_for_fill(set);
                self.sets[set].push_front((tag, dirty));
            }
            WriteMissPolicy::WriteAround => {}
            WriteMissPolicy::WriteInvalidate => {
                // Invalidate the way a fill would have replaced: the LRU
                // (or nothing if the set has a free way).
                if self.sets[set].len() == self.ways {
                    self.sets[set].pop_back();
                }
            }
        }
    }
}

/// Single-line accesses only: the reference has no split logic, so keep
/// each access within one line.
fn access_strategy(line: u64) -> impl Strategy<Value = (bool, u64)> {
    (any::<bool>(), 0u64..1024).prop_map(move |(is_write, slot)| (is_write, slot * line))
}

fn compare(config: CacheConfig, ops: &[(bool, u64)]) {
    let mut real = Cache::new(config, MainMemory::new());
    let mut reference = Reference::new(&config);
    let line = config.line_bytes() as usize;
    let mut buf = vec![0u8; line];
    for &(is_write, addr) in ops {
        if is_write {
            real.write(addr, &buf[..4.min(line)]);
            reference.write(addr);
        } else {
            real.read(addr, &mut buf[..4.min(line)]);
            reference.read(addr);
        }
    }
    let s = real.stats();
    let got = Counts {
        read_hits: s.read_hits,
        read_misses: s.read_misses,
        write_hits: s.write_hits,
        write_misses: s.write_misses,
        fetches: s.fetches,
        victims: s.victims.total,
        dirty_victims: s.victims.dirty,
    };
    assert_eq!(got, reference.counts, "divergence under {config}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn real_cache_matches_reference_model(
        ops in prop::collection::vec(access_strategy(16), 1..400),
        size in prop::sample::select(vec![256u32, 512, 1024]),
        ways in prop::sample::select(vec![1u32, 2, 4]),
        hit_wb: bool,
        miss_idx in 0usize..4,
    ) {
        let miss = WriteMissPolicy::ALL[miss_idx];
        let hit = if hit_wb && !miss.bypasses() {
            WriteHitPolicy::WriteBack
        } else {
            WriteHitPolicy::WriteThrough
        };
        let config = CacheConfig::builder()
            .size_bytes(size)
            .line_bytes(16)
            .associativity(ways)
            .write_hit(hit)
            .write_miss(miss)
            .build()
            .expect("valid configuration");
        compare(config, &ops);
    }

    #[test]
    fn reference_agreement_holds_across_line_sizes(
        ops in prop::collection::vec(access_strategy(4), 1..300),
        line in prop::sample::select(vec![4u32, 8, 32, 64]),
    ) {
        // Addresses are 4B-slot-aligned; accesses are 4B so they never
        // span lines at any of these line sizes.
        let config = CacheConfig::builder()
            .size_bytes(512)
            .line_bytes(line)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .expect("valid configuration");
        compare(config, &ops);
    }
}
