//! Differential testing against an independent reference model.
//!
//! A deliberately naive tag-only simulator re-implements the lookup,
//! LRU replacement, and policy semantics with different data structures
//! (per-set `VecDeque` recency lists instead of timestamps, no data).
//! Hit/miss/victim counts must match the real cache exactly on random
//! access streams across geometries and policies.
//!
//! Formerly driven by proptest; now driven by the in-tree seeded
//! [`SplitMix64`] so the suite builds with no external crates.

use std::collections::VecDeque;

use cwp_cache::{Cache, CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_mem::rng::SplitMix64;
use cwp_mem::MainMemory;

/// Counts produced by either model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counts {
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
    fetches: u64,
    victims: u64,
    dirty_victims: u64,
}

/// The naive model: per set, a recency-ordered list of (tag, dirty).
/// Front = most recent. No partial validity (fetch-on-write and
/// write-around/write-invalidate only — policies whose lines are always
/// whole).
struct Reference {
    sets: Vec<VecDeque<(u64, bool)>>,
    ways: usize,
    line_shift: u32,
    hit: WriteHitPolicy,
    miss: WriteMissPolicy,
    counts: Counts,
}

impl Reference {
    fn new(config: &CacheConfig) -> Self {
        Reference {
            sets: vec![VecDeque::new(); config.sets() as usize],
            ways: config.associativity() as usize,
            line_shift: config.line_bytes().trailing_zeros(),
            hit: config.write_hit(),
            miss: config.write_miss(),
            counts: Counts::default(),
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    fn evict_for_fill(&mut self, set: usize) {
        if self.sets[set].len() == self.ways {
            let (_tag, dirty) = self.sets[set].pop_back().expect("set is full");
            self.counts.victims += 1;
            if dirty {
                self.counts.dirty_victims += 1;
            }
        }
    }

    fn read(&mut self, addr: u64) {
        let (set, tag) = self.locate(addr);
        if let Some(pos) = self.sets[set].iter().position(|&(t, _)| t == tag) {
            self.counts.read_hits += 1;
            let entry = self.sets[set].remove(pos).expect("position just found");
            self.sets[set].push_front(entry);
        } else {
            self.counts.read_misses += 1;
            self.counts.fetches += 1;
            self.evict_for_fill(set);
            self.sets[set].push_front((tag, false));
        }
    }

    fn write(&mut self, addr: u64) {
        let (set, tag) = self.locate(addr);
        let dirty = self.hit == WriteHitPolicy::WriteBack;
        if let Some(pos) = self.sets[set].iter().position(|&(t, _)| t == tag) {
            self.counts.write_hits += 1;
            let (t, was_dirty) = self.sets[set].remove(pos).expect("position just found");
            self.sets[set].push_front((t, was_dirty || dirty));
            return;
        }
        self.counts.write_misses += 1;
        match self.miss {
            WriteMissPolicy::FetchOnWrite => {
                self.counts.fetches += 1;
                self.evict_for_fill(set);
                self.sets[set].push_front((tag, dirty));
            }
            WriteMissPolicy::WriteValidate => {
                self.evict_for_fill(set);
                self.sets[set].push_front((tag, dirty));
            }
            WriteMissPolicy::WriteAround => {}
            WriteMissPolicy::WriteInvalidate => {
                // Invalidate the way a fill would have replaced: the LRU
                // (or nothing if the set has a free way).
                if self.sets[set].len() == self.ways {
                    self.sets[set].pop_back();
                }
            }
        }
    }
}

/// Single-line accesses only: the reference has no split logic, so keep
/// each access within one line. Addresses are `line`-aligned slots.
fn gen_accesses(rng: &mut SplitMix64, line: u64, max_ops: u64) -> Vec<(bool, u64)> {
    let n = 1 + rng.below(max_ops);
    (0..n)
        .map(|_| (rng.gen_bool(), rng.below(1024) * line))
        .collect()
}

fn compare(config: CacheConfig, ops: &[(bool, u64)]) {
    let mut real = Cache::new(config, MainMemory::new());
    let mut reference = Reference::new(&config);
    let line = config.line_bytes() as usize;
    let mut buf = vec![0u8; line];
    for &(is_write, addr) in ops {
        if is_write {
            real.write(addr, &buf[..4.min(line)]);
            reference.write(addr);
        } else {
            real.read(addr, &mut buf[..4.min(line)]);
            reference.read(addr);
        }
    }
    let s = real.stats();
    let got = Counts {
        read_hits: s.read_hits,
        read_misses: s.read_misses,
        write_hits: s.write_hits,
        write_misses: s.write_misses,
        fetches: s.fetches,
        victims: s.victims.total,
        dirty_victims: s.victims.dirty,
    };
    assert_eq!(got, reference.counts, "divergence under {config}");
}

#[test]
fn real_cache_matches_reference_model() {
    let mut rng = SplitMix64::seed_from_u64(0x4ef_0001);
    let sizes = [256u32, 512, 1024];
    let ways = [1u32, 2, 4];
    for _case in 0..96 {
        let ops = gen_accesses(&mut rng, 16, 400);
        let size = sizes[rng.below(3) as usize];
        let way = ways[rng.below(3) as usize];
        let miss = WriteMissPolicy::ALL[rng.below(4) as usize];
        let hit = if rng.gen_bool() && !miss.bypasses() {
            WriteHitPolicy::WriteBack
        } else {
            WriteHitPolicy::WriteThrough
        };
        let config = CacheConfig::builder()
            .size_bytes(size)
            .line_bytes(16)
            .associativity(way)
            .write_hit(hit)
            .write_miss(miss)
            .build()
            .expect("valid configuration");
        compare(config, &ops);
    }
}

#[test]
fn reference_agreement_holds_across_line_sizes() {
    let mut rng = SplitMix64::seed_from_u64(0x4ef_0002);
    let lines = [4u32, 8, 32, 64];
    for _case in 0..96 {
        // Addresses are 4B-slot-aligned; accesses are 4B so they never
        // span lines at any of these line sizes.
        let ops = gen_accesses(&mut rng, 4, 300);
        let line = lines[rng.below(4) as usize];
        let config = CacheConfig::builder()
            .size_bytes(512)
            .line_bytes(line)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .expect("valid configuration");
        compare(config, &ops);
    }
}
