//! Functional-transparency property tests.
//!
//! Whatever the geometry and policy combination, a cache must be invisible
//! to software: reads return exactly what a flat memory would return. This
//! is the load-bearing correctness property for the write-miss policies —
//! write-validate's sub-block valid bits, write-around's bypassing, and
//! write-invalidate's corruption rule all have to preserve it.
//!
//! Formerly driven by proptest; now driven by the in-tree seeded
//! [`SplitMix64`] so the suite builds with no external crates. Each test
//! runs many independently-seeded random programs.

use cwp_cache::{Cache, CacheConfig, ConfigError, Protection, WriteHitPolicy, WriteMissPolicy};
use cwp_mem::rng::SplitMix64;
use cwp_mem::MainMemory;

/// One logical access in a generated program.
#[derive(Debug, Clone)]
enum Op {
    Read { addr: u64, len: usize },
    Write { addr: u64, fill: u8, len: usize },
    Flush,
}

/// A random program over a small address space with few lines, forcing
/// heavy conflicts. Weights match the old proptest strategy: 4:4:1
/// read:write:flush.
fn gen_ops(rng: &mut SplitMix64, max_len: usize) -> Vec<Op> {
    let n = rng.gen_range(1..200usize);
    (0..n)
        .map(|_| match rng.below(9) {
            0..=3 => Op::Read {
                addr: rng.below(512),
                len: 1 + rng.below(max_len as u64) as usize,
            },
            4..=7 => Op::Write {
                addr: rng.below(512),
                fill: rng.next_u64() as u8,
                len: 1 + rng.below(max_len as u64) as usize,
            },
            _ => Op::Flush,
        })
        .collect()
}

fn all_configs(size: u32, line: u32, ways: u32) -> Vec<CacheConfig> {
    let mut configs = Vec::new();
    for hit in WriteHitPolicy::ALL {
        for miss in WriteMissPolicy::ALL {
            match CacheConfig::builder()
                .size_bytes(size)
                .line_bytes(line)
                .associativity(ways)
                .write_hit(hit)
                .write_miss(miss)
                .build()
            {
                Ok(c) => configs.push(c),
                Err(ConfigError::PolicyConflict { .. }) => {}
                Err(e) => panic!("unexpected config error: {e}"),
            }
        }
    }
    configs
}

/// Runs `ops` against a cache and a golden flat memory; every read and the
/// final post-flush memory state must agree.
fn run_program(config: CacheConfig, ops: &[Op]) {
    let mut cache = Cache::new(config, MainMemory::new());
    let mut golden = MainMemory::new();
    let mut seq: u8 = 0;
    for op in ops {
        match *op {
            Op::Read { addr, len } => {
                let mut got = vec![0u8; len];
                cache.read(addr, &mut got);
                let mut want = vec![0u8; len];
                golden.read(addr, &mut want);
                assert_eq!(got, want, "{config}: read {len}B at {addr:#x} diverged");
            }
            Op::Write { addr, fill, len } => {
                seq = seq.wrapping_add(1);
                let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8) ^ seq).collect();
                cache.write(addr, &data);
                golden.write(addr, &data);
            }
            Op::Flush => cache.flush(),
        }
    }
    // After a final flush the next level must hold the complete state.
    cache.flush();
    let memory = cache.into_next_level();
    for addr in 0..512u64 {
        assert_eq!(
            memory.read_byte(addr),
            golden.read_byte(addr),
            "{config}: memory byte {addr:#x} diverged after flush"
        );
    }
}

#[test]
fn every_policy_combination_is_transparent() {
    let mut rng = SplitMix64::seed_from_u64(0x7a5_0001);
    let lines = [4u32, 8, 16, 32, 64];
    let ways = [1u32, 2, 4];
    for case in 0..64 {
        let ops = gen_ops(&mut rng, 16);
        let line = lines[rng.below(lines.len() as u64) as usize];
        let way = ways[rng.below(ways.len() as u64) as usize];
        // A tiny cache (256B) over a tiny address space maximizes
        // evictions, partial-validity refills, and policy interactions.
        for config in all_configs(256, line, way) {
            run_program(config, &ops);
        }
        let _ = case;
    }
}

#[test]
fn two_level_hierarchies_are_transparent() {
    let mut rng = SplitMix64::seed_from_u64(0x7a5_0002);
    for _case in 0..64 {
        let ops = gen_ops(&mut rng, 16);
        let l1_cfg = CacheConfig::builder()
            .size_bytes(128)
            .line_bytes(8)
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::WriteValidate)
            .build()
            .unwrap();
        let l2_cfg = CacheConfig::builder()
            .size_bytes(512)
            .line_bytes(32)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .unwrap();
        let l2 = Cache::new(l2_cfg, MainMemory::new());
        let mut l1 = Cache::new(l1_cfg, l2);
        let mut golden = MainMemory::new();
        let mut seq: u8 = 0;
        for op in &ops {
            match *op {
                Op::Read { addr, len } => {
                    let mut got = vec![0u8; len];
                    l1.read(addr, &mut got);
                    let mut want = vec![0u8; len];
                    golden.read(addr, &mut want);
                    assert_eq!(got, want, "two-level read at {addr:#x} diverged");
                }
                Op::Write { addr, fill, len } => {
                    seq = seq.wrapping_add(1);
                    let data: Vec<u8> =
                        (0..len).map(|i| fill.wrapping_add(i as u8) ^ seq).collect();
                    l1.write(addr, &data);
                    golden.write(addr, &data);
                }
                Op::Flush => {
                    l1.flush();
                    l1.next_level_mut().flush();
                }
            }
        }
    }
}

/// The transparency property extended with fault injection: ECC-corrected
/// single-bit faults must never change the bytes a read returns, for every
/// policy combination, even at an absurd fault rate.
#[test]
fn ecc_corrects_injected_faults_transparently() {
    let mut rng = SplitMix64::seed_from_u64(0x7a5_0003);
    for case in 0..24 {
        let ops = gen_ops(&mut rng, 16);
        for base in all_configs(256, 16, 2) {
            let config = base
                .to_builder()
                .protection(Protection::EccPerWord)
                .fault_rate_ppm(200_000) // a fault every ~5 accesses
                .fault_seed(0xecc_0000 + case)
                .build()
                .unwrap();
            run_program(config, &ops);
        }
    }
}

/// Same, for the paper's write-through + byte-parity pairing: every fault
/// lands on a clean line (write-through has no dirty data) and is
/// recovered by refetch, so transparency holds and nothing is ever lost.
#[test]
fn wt_parity_recovers_injected_faults_transparently() {
    let mut rng = SplitMix64::seed_from_u64(0x7a5_0004);
    for case in 0..24 {
        let ops = gen_ops(&mut rng, 16);
        for miss in WriteMissPolicy::ALL {
            let config = CacheConfig::builder()
                .size_bytes(256)
                .line_bytes(16)
                .associativity(2)
                .write_hit(WriteHitPolicy::WriteThrough)
                .write_miss(miss)
                .protection(Protection::ByteParity)
                .fault_rate_ppm(200_000)
                .fault_seed(0xbad_0000 + case)
                .build()
                .unwrap();
            run_program(config, &ops);
        }
    }
}
