//! Functional-transparency property tests.
//!
//! Whatever the geometry and policy combination, a cache must be invisible
//! to software: reads return exactly what a flat memory would return. This
//! is the load-bearing correctness property for the write-miss policies —
//! write-validate's sub-block valid bits, write-around's bypassing, and
//! write-invalidate's corruption rule all have to preserve it.

use cwp_cache::{Cache, CacheConfig, ConfigError, WriteHitPolicy, WriteMissPolicy};
use cwp_mem::MainMemory;
use proptest::prelude::*;

/// One logical access in a generated program.
#[derive(Debug, Clone)]
enum Op {
    Read { addr: u64, len: usize },
    Write { addr: u64, fill: u8, len: usize },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small address space with few lines forces heavy conflicts.
    let addr = 0u64..512;
    let len = 1usize..=16;
    prop_oneof![
        4 => (addr.clone(), len.clone()).prop_map(|(addr, len)| Op::Read { addr, len }),
        4 => (addr, any::<u8>(), len).prop_map(|(addr, fill, len)| Op::Write { addr, fill, len }),
        1 => Just(Op::Flush),
    ]
}

fn all_configs(size: u32, line: u32, ways: u32) -> Vec<CacheConfig> {
    let mut configs = Vec::new();
    for hit in WriteHitPolicy::ALL {
        for miss in WriteMissPolicy::ALL {
            match CacheConfig::builder()
                .size_bytes(size)
                .line_bytes(line)
                .associativity(ways)
                .write_hit(hit)
                .write_miss(miss)
                .build()
            {
                Ok(c) => configs.push(c),
                Err(ConfigError::PolicyConflict { .. }) => {}
                Err(e) => panic!("unexpected config error: {e}"),
            }
        }
    }
    configs
}

fn run_program(config: CacheConfig, ops: &[Op]) {
    let mut cache = Cache::new(config, MainMemory::new());
    let mut golden = MainMemory::new();
    let mut seq: u8 = 0;
    for op in ops {
        match *op {
            Op::Read { addr, len } => {
                let mut got = vec![0u8; len];
                cache.read(addr, &mut got);
                let mut want = vec![0u8; len];
                golden.read(addr, &mut want);
                assert_eq!(got, want, "{config}: read {len}B at {addr:#x} diverged");
            }
            Op::Write { addr, fill, len } => {
                seq = seq.wrapping_add(1);
                let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8) ^ seq).collect();
                cache.write(addr, &data);
                golden.write(addr, &data);
            }
            Op::Flush => cache.flush(),
        }
    }
    // After a final flush the next level must hold the complete state.
    cache.flush();
    let memory = cache.into_next_level();
    for addr in 0..512u64 {
        assert_eq!(
            memory.read_byte(addr),
            golden.read_byte(addr),
            "{config}: memory byte {addr:#x} diverged after flush"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_policy_combination_is_transparent(
        ops in prop::collection::vec(op_strategy(), 1..200),
        line in prop::sample::select(vec![4u32, 8, 16, 32, 64]),
        ways in prop::sample::select(vec![1u32, 2, 4]),
    ) {
        // A tiny cache (256B) over a tiny address space maximizes evictions,
        // partial-validity refills, and policy interactions.
        for config in all_configs(256, line, ways) {
            run_program(config, &ops);
        }
    }

    #[test]
    fn two_level_hierarchies_are_transparent(
        ops in prop::collection::vec(op_strategy(), 1..150),
    ) {
        let l1_cfg = CacheConfig::builder()
            .size_bytes(128)
            .line_bytes(8)
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::WriteValidate)
            .build()
            .unwrap();
        let l2_cfg = CacheConfig::builder()
            .size_bytes(512)
            .line_bytes(32)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .unwrap();
        let l2 = Cache::new(l2_cfg, MainMemory::new());
        let mut l1 = Cache::new(l1_cfg, l2);
        let mut golden = MainMemory::new();
        let mut seq: u8 = 0;
        for op in &ops {
            match *op {
                Op::Read { addr, len } => {
                    let mut got = vec![0u8; len];
                    l1.read(addr, &mut got);
                    let mut want = vec![0u8; len];
                    golden.read(addr, &mut want);
                    prop_assert_eq!(got, want, "two-level read at {:#x} diverged", addr);
                }
                Op::Write { addr, fill, len } => {
                    seq = seq.wrapping_add(1);
                    let data: Vec<u8> =
                        (0..len).map(|i| fill.wrapping_add(i as u8) ^ seq).collect();
                    l1.write(addr, &data);
                    golden.write(addr, &data);
                }
                Op::Flush => {
                    l1.flush();
                    l1.next_level_mut().flush();
                }
            }
        }
    }
}
