//! The crash-point explorer: drive a recovery check over every crash
//! state of a recorded mutation history.
//!
//! Usage pattern (per durable artifact):
//!
//! 1. Run the component against a fresh [`MemIo`], recording its
//!    mutation history and whatever the component *acknowledged*
//!    (memo puts, checkpointed jobs, saved traces).
//! 2. Call [`explore`] with that history. For every enumerated crash
//!    point — boundary and torn-prefix states alike — the callback
//!    restarts the component against the rebuilt filesystem and
//!    asserts its documented recovery contract.
//!
//! The enumeration is exhaustive up to `budget` states; when a history
//! is longer, a deterministic stride keeps the first and last states
//! and samples the middle, and the report says so.

use crate::memio::{crash_points, CrashPoint, MemOp};

/// What an exploration covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreReport {
    /// Crash states checked.
    pub checked: usize,
    /// Of those, torn-prefix states.
    pub torn: usize,
    /// States enumerated but skipped by the budget (0 = exhaustive).
    pub skipped: usize,
}

/// Enumerates the crash states of `ops` (seeded torn cuts included) and
/// runs `check` on each. `budget` caps the states actually checked; the
/// subsample is deterministic and always keeps the first and last
/// states.
///
/// # Errors
///
/// Returns the first check failure, prefixed with the crash point's
/// label so the failing boundary is reproducible from the seed.
pub fn explore(
    ops: &[MemOp],
    seed: u64,
    budget: usize,
    mut check: impl FnMut(&CrashPoint) -> Result<(), String>,
) -> Result<ExploreReport, String> {
    let points = crash_points(ops, seed);
    let total = points.len();
    let budget = budget.max(2.min(total));
    let mut report = ExploreReport {
        checked: 0,
        torn: 0,
        skipped: total.saturating_sub(budget),
    };
    // Deterministic subsample: indices spread evenly, endpoints kept.
    let take = budget.min(total);
    for i in 0..take {
        let index = if take == total {
            i
        } else {
            i * (total - 1) / (take - 1).max(1)
        };
        let point = &points[index];
        check(point).map_err(|e| format!("crash point [{}]: {e}", point.label))?;
        report.checked += 1;
        if point.label.starts_with("torn") {
            report.torn += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::ChaosIo;
    use crate::memio::{crash_points, MemIo};
    use std::path::PathBuf;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn history() -> Vec<MemOp> {
        let io = MemIo::new();
        for i in 0..4u32 {
            io.write(&p("/j.tmp"), format!("gen {i} line\n").as_bytes())
                .unwrap();
            io.rename(&p("/j.tmp"), &p("/j")).unwrap();
        }
        io.journal()
    }

    #[test]
    fn exhaustive_exploration_visits_boundary_and_torn_states() {
        let ops = history();
        let report = explore(&ops, 7, usize::MAX, |point| {
            // The atomic-replace contract: /j is absent or holds a
            // complete generation. Torn bytes only ever live in .tmp.
            if let Some(content) = point.io.file(&p("/j")) {
                let text = String::from_utf8(content).map_err(|e| e.to_string())?;
                if !(text.starts_with("gen ") && text.ends_with("line\n")) {
                    return Err(format!("torn committed file: {text:?}"));
                }
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(report.skipped, 0);
        // 9 boundaries plus 2-3 torn cuts per write (3 unless the
        // seeded interior cut collides with 1 or len-1).
        assert_eq!(report.checked, 9 + report.torn);
        assert!((8..=12).contains(&report.torn), "torn = {}", report.torn);
    }

    #[test]
    fn failures_name_the_crash_point() {
        let ops = history();
        let err = explore(&ops, 7, usize::MAX, |point| {
            if point.label.starts_with("torn op 2") {
                Err("contract broken".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(err.contains("torn op 2"), "{err}");
        assert!(err.contains("contract broken"));
    }

    #[test]
    fn budget_subsamples_deterministically_keeping_endpoints() {
        let ops = history();
        let mut labels = Vec::new();
        let report = explore(&ops, 7, 5, |point| {
            labels.push(point.label.clone());
            Ok(())
        })
        .unwrap();
        let total = crash_points(&history(), 7).len();
        assert_eq!(report.checked, 5);
        assert_eq!(report.skipped, total - 5);
        assert_eq!(labels[0], "before any op");
        assert!(labels.last().unwrap().contains("after op 7"));
        let mut again = Vec::new();
        explore(&ops, 7, 5, |point| {
            again.push(point.label.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(labels, again);
    }
}
