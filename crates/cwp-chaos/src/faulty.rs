//! [`FaultyIo`]: a seeded fault-injecting [`ChaosIo`] wrapper.
//!
//! The storage counterpart of `cwp_mem::FaultyNextLevel`: every
//! operation rolls a SplitMix64-driven schedule and may fail with a
//! typed fault instead of (or after partially) reaching the inner
//! backend. A fixed `(plan, seed)` pair yields the same fault sites on
//! every run, which is what lets verify.sh gate on chaos runs.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use cwp_mem::SplitMix64;
use cwp_obs::event::{Event, IoFaultKind, IoOp};

use crate::io::{ChaosIo, RealIo};

/// Per-fault-kind injection rates, in parts per million per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the SplitMix64 schedule.
    pub seed: u64,
    /// A write fails after persisting only a prefix.
    pub torn_ppm: u32,
    /// A read returns only a prefix of the file.
    pub short_read_ppm: u32,
    /// A mutation fails with `ENOSPC`.
    pub no_space_ppm: u32,
    /// Any operation fails with `EINTR` (transient; a retry re-rolls).
    pub interrupted_ppm: u32,
    /// The commit rename of an atomic replace fails, leaving the
    /// temporary file behind.
    pub rename_ppm: u32,
    /// A write reports success but persists only a prefix — a lost
    /// fsync, the one fault the caller cannot observe at write time.
    pub fsync_loss_ppm: u32,
}

impl FaultPlan {
    /// Every fault kind at the same `rate_ppm`.
    pub fn uniform(rate_ppm: u32, seed: u64) -> Self {
        let rate = rate_ppm.min(1_000_000);
        FaultPlan {
            seed,
            torn_ppm: rate,
            short_read_ppm: rate,
            no_space_ppm: rate,
            interrupted_ppm: rate,
            rename_ppm: rate,
            fsync_loss_ppm: rate,
        }
    }

    /// Only transient `EINTR` faults — every operation eventually
    /// succeeds under retry, so recovery loops must converge.
    pub fn transient_only(rate_ppm: u32, seed: u64) -> Self {
        FaultPlan {
            interrupted_ppm: rate_ppm.min(1_000_000),
            ..FaultPlan::uniform(0, seed)
        }
    }

    /// Terminal faults only (torn, `ENOSPC`, rename failure): every
    /// injected fault is visible to the caller as a hard error.
    pub fn terminal_only(rate_ppm: u32, seed: u64) -> Self {
        let rate = rate_ppm.min(1_000_000);
        FaultPlan {
            seed,
            torn_ppm: rate,
            short_read_ppm: 0,
            no_space_ppm: rate,
            interrupted_ppm: 0,
            rename_ppm: rate,
            fsync_loss_ppm: 0,
        }
    }
}

/// Counters kept by a [`FaultyIo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultStats {
    /// Operations attempted (including retries the caller makes).
    pub ops: u64,
    /// Writes failed after persisting a prefix.
    pub torn_writes: u64,
    /// Reads that returned a prefix.
    pub short_reads: u64,
    /// Operations failed with `ENOSPC`.
    pub no_space: u64,
    /// Operations failed with `EINTR`.
    pub interrupted: u64,
    /// Renames failed.
    pub rename_failures: u64,
    /// Writes acknowledged but partially lost.
    pub fsync_losses: u64,
}

impl IoFaultStats {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.torn_writes
            + self.short_reads
            + self.no_space
            + self.interrupted
            + self.rename_failures
            + self.fsync_losses
    }
}

/// An observer for injected faults (the [`cwp_obs::Probe`] trait is not
/// object-safe, so the injector takes a plain callback).
pub type FaultObserver = Arc<dyn Fn(Event) + Send + Sync>;

struct FaultState {
    rng: SplitMix64,
    stats: IoFaultStats,
}

/// Wraps any [`ChaosIo`] and injects storage faults from a seeded
/// schedule.
///
/// # Examples
///
/// ```
/// use cwp_chaos::{ChaosIo, FaultPlan, FaultyIo};
/// use std::path::Path;
///
/// let io = FaultyIo::wrapping(cwp_chaos::MemIo::new(), FaultPlan::uniform(500_000, 7));
/// let mut failures = 0;
/// for i in 0..32 {
///     if io.write(Path::new("/j"), format!("line{i}\n").as_bytes()).is_err() {
///         failures += 1;
///     }
/// }
/// assert!(failures > 0, "half of all ops should fault");
/// assert_eq!(io.stats().injected() > 0, true);
/// ```
pub struct FaultyIo<I = RealIo> {
    inner: I,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    observer: Option<FaultObserver>,
}

impl FaultyIo<RealIo> {
    /// Injects faults over the real filesystem.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyIo::wrapping(RealIo, plan)
    }
}

impl<I: ChaosIo> FaultyIo<I> {
    /// Injects faults over `inner`.
    pub fn wrapping(inner: I, plan: FaultPlan) -> Self {
        FaultyIo {
            inner,
            plan,
            state: Mutex::new(FaultState {
                rng: SplitMix64::seed_from_u64(plan.seed),
                stats: IoFaultStats::default(),
            }),
            observer: None,
        }
    }

    /// Attaches an observer that receives one [`Event::IoFault`] per
    /// injected fault.
    pub fn with_observer(mut self, observer: FaultObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> IoFaultStats {
        self.lock().stats
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A panicked holder can only have been mid-injection; the rng
        // and counters are still coherent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn emit(&self, op: IoOp, fault: IoFaultKind, bytes: u64) {
        if let Some(observer) = &self.observer {
            observer(Event::IoFault { op, fault, bytes });
        }
    }

    /// Rolls the schedule for one operation: the first firing fault in
    /// plan order wins. Counts the op and any injected fault.
    fn roll(&self, op: IoOp, len: usize) -> Option<(IoFaultKind, usize)> {
        let mut state = self.lock();
        state.stats.ops += 1;
        let mutates = !matches!(op, IoOp::Read);
        let candidates: &[(IoFaultKind, u32)] = &[
            (IoFaultKind::Interrupted, self.plan.interrupted_ppm),
            (
                IoFaultKind::NoSpace,
                if mutates { self.plan.no_space_ppm } else { 0 },
            ),
            (
                IoFaultKind::Torn,
                if op == IoOp::Write {
                    self.plan.torn_ppm
                } else {
                    0
                },
            ),
            (
                IoFaultKind::FsyncLost,
                if op == IoOp::Write {
                    self.plan.fsync_loss_ppm
                } else {
                    0
                },
            ),
            (
                IoFaultKind::ShortRead,
                if op == IoOp::Read {
                    self.plan.short_read_ppm
                } else {
                    0
                },
            ),
            (
                IoFaultKind::RenameFailed,
                if op == IoOp::Rename {
                    self.plan.rename_ppm
                } else {
                    0
                },
            ),
        ];
        for &(kind, ppm) in candidates {
            if ppm > 0 && state.rng.gen_ratio(ppm, 1_000_000) {
                // Cut point for partial-data faults: 0..len bytes survive.
                let cut = if len > 0 {
                    state.rng.below(len as u64) as usize
                } else {
                    0
                };
                match kind {
                    IoFaultKind::Torn => state.stats.torn_writes += 1,
                    IoFaultKind::ShortRead => state.stats.short_reads += 1,
                    IoFaultKind::NoSpace => state.stats.no_space += 1,
                    IoFaultKind::Interrupted => state.stats.interrupted += 1,
                    IoFaultKind::RenameFailed => state.stats.rename_failures += 1,
                    IoFaultKind::FsyncLost => state.stats.fsync_losses += 1,
                }
                drop(state);
                self.emit(op, kind, cut as u64);
                return Some((kind, cut));
            }
        }
        None
    }
}

fn fault_error(kind: IoFaultKind, detail: String) -> io::Error {
    let io_kind = match kind {
        IoFaultKind::Torn => io::ErrorKind::WriteZero,
        IoFaultKind::ShortRead => io::ErrorKind::UnexpectedEof,
        IoFaultKind::NoSpace => io::ErrorKind::StorageFull,
        IoFaultKind::Interrupted => io::ErrorKind::Interrupted,
        IoFaultKind::RenameFailed => io::ErrorKind::ResourceBusy,
        IoFaultKind::FsyncLost => io::ErrorKind::Other,
    };
    io::Error::new(io_kind, format!("injected {}: {detail}", kind.tag()))
}

impl<I: ChaosIo> ChaosIo for FaultyIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let data = self.inner.read(path)?;
        match self.roll(IoOp::Read, data.len()) {
            Some((IoFaultKind::Interrupted, _)) => Err(fault_error(
                IoFaultKind::Interrupted,
                path.display().to_string(),
            )),
            Some((IoFaultKind::ShortRead, cut)) => {
                let mut data = data;
                data.truncate(cut);
                Ok(data)
            }
            _ => Ok(data),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.roll(IoOp::Write, data.len()) {
            Some((IoFaultKind::Interrupted, _)) => Err(fault_error(
                IoFaultKind::Interrupted,
                path.display().to_string(),
            )),
            Some((IoFaultKind::NoSpace, _)) => Err(fault_error(
                IoFaultKind::NoSpace,
                path.display().to_string(),
            )),
            Some((IoFaultKind::Torn, cut)) => {
                self.inner.write(path, &data[..cut])?;
                Err(fault_error(
                    IoFaultKind::Torn,
                    format!(
                        "{}: {cut} of {} bytes persisted",
                        path.display(),
                        data.len()
                    ),
                ))
            }
            Some((IoFaultKind::FsyncLost, cut)) => {
                // The caller sees success; the device kept only a prefix.
                self.inner.write(path, &data[..cut])
            }
            _ => self.inner.write(path, data),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.roll(IoOp::Rename, 0) {
            Some((IoFaultKind::Interrupted, _)) => Err(fault_error(
                IoFaultKind::Interrupted,
                from.display().to_string(),
            )),
            Some((IoFaultKind::NoSpace, _)) => Err(fault_error(
                IoFaultKind::NoSpace,
                from.display().to_string(),
            )),
            Some((IoFaultKind::RenameFailed, _)) => Err(fault_error(
                IoFaultKind::RenameFailed,
                format!("{} -> {}", from.display(), to.display()),
            )),
            _ => self.inner.rename(from, to),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.roll(IoOp::CreateDir, 0) {
            Some((IoFaultKind::Interrupted, _)) => Err(fault_error(
                IoFaultKind::Interrupted,
                path.display().to_string(),
            )),
            Some((IoFaultKind::NoSpace, _)) => Err(fault_error(
                IoFaultKind::NoSpace,
                path.display().to_string(),
            )),
            _ => self.inner.create_dir_all(path),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.roll(IoOp::Remove, 0) {
            Some((IoFaultKind::Interrupted, _)) => Err(fault_error(
                IoFaultKind::Interrupted,
                path.display().to_string(),
            )),
            Some((IoFaultKind::NoSpace, _)) => Err(fault_error(
                IoFaultKind::NoSpace,
                path.display().to_string(),
            )),
            _ => self.inner.remove_file(path),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memio::MemIo;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn zero_rate_is_transparent() {
        let io = FaultyIo::wrapping(MemIo::new(), FaultPlan::uniform(0, 1));
        io.write(&p("/a"), b"hello").unwrap();
        assert_eq!(io.read(&p("/a")).unwrap(), b"hello");
        io.rename(&p("/a"), &p("/b")).unwrap();
        assert!(io.exists(&p("/b")));
        assert_eq!(io.stats().injected(), 0);
        assert_eq!(io.stats().ops, 3);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let run = |seed| {
            let io = FaultyIo::wrapping(MemIo::new(), FaultPlan::uniform(300_000, seed));
            for i in 0..64u32 {
                let _ = io.write(&p("/f"), &[i as u8; 64]);
                let _ = io.read(&p("/f"));
                let _ = io.rename(&p("/f"), &p("/g"));
                let _ = io.rename(&p("/g"), &p("/f"));
            }
            io.stats()
        };
        assert_eq!(run(0x1993), run(0x1993));
        assert_ne!(run(0x1993), run(0x1994), "different seeds should differ");
    }

    #[test]
    fn torn_writes_persist_a_strict_prefix_and_fail_typed() {
        let mem = std::sync::Arc::new(MemIo::new());
        let io = FaultyIo::wrapping(
            mem.clone(),
            FaultPlan {
                seed: 3,
                torn_ppm: 1_000_000,
                ..FaultPlan::uniform(0, 3)
            },
        );
        let data = b"0123456789abcdef";
        let err = io.write(&p("/t"), data).unwrap_err();
        assert_eq!(crate::VfsError::classify(&err), crate::VfsError::Torn);
        let kept = mem.file(&p("/t")).unwrap();
        assert!(kept.len() < data.len(), "a strict prefix survives");
        assert_eq!(&data[..kept.len()], &kept[..]);
        assert_eq!(io.stats().torn_writes, 1);
    }

    #[test]
    fn fsync_loss_acks_but_keeps_only_a_prefix() {
        let mem = std::sync::Arc::new(MemIo::new());
        let io = FaultyIo::wrapping(
            mem.clone(),
            FaultPlan {
                seed: 9,
                fsync_loss_ppm: 1_000_000,
                ..FaultPlan::uniform(0, 9)
            },
        );
        io.write(&p("/j"), b"abcdefgh").unwrap();
        let kept = mem.file(&p("/j")).unwrap();
        assert!(kept.len() < 8, "the tail never reached the device");
        assert_eq!(io.stats().fsync_losses, 1);
    }

    #[test]
    fn rename_failure_leaves_the_source_in_place() {
        let mem = std::sync::Arc::new(MemIo::new());
        let io = FaultyIo::wrapping(
            mem.clone(),
            FaultPlan {
                seed: 5,
                rename_ppm: 1_000_000,
                ..FaultPlan::uniform(0, 5)
            },
        );
        io.write(&p("/x.tmp"), b"new").unwrap();
        let err = io.rename(&p("/x.tmp"), &p("/x")).unwrap_err();
        assert_eq!(
            crate::VfsError::classify(&err),
            crate::VfsError::RenameFailed
        );
        assert!(mem.file(&p("/x.tmp")).is_some(), "tmp file left behind");
        assert!(mem.file(&p("/x")).is_none());
    }

    #[test]
    fn transient_only_plans_converge_under_retry() {
        let io = FaultyIo::wrapping(MemIo::new(), FaultPlan::transient_only(400_000, 0xd1));
        for i in 0..100u32 {
            crate::retry_interrupted(|| io.write(&p("/j"), &i.to_le_bytes())).unwrap();
        }
        assert!(io.stats().interrupted > 0, "the injector must fire");
        assert_eq!(io.stats().injected(), io.stats().interrupted);
    }

    #[test]
    fn observer_sees_one_event_per_injected_fault() {
        let seen = std::sync::Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let io = FaultyIo::wrapping(MemIo::new(), FaultPlan::uniform(500_000, 0xab)).with_observer(
            std::sync::Arc::new(move |event| {
                assert!(matches!(event, Event::IoFault { .. }));
                seen2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for _ in 0..50 {
            let _ = io.write(&p("/w"), b"data bytes here");
            let _ = io.read(&p("/w"));
        }
        assert_eq!(seen.load(Ordering::Relaxed), io.stats().injected());
        assert!(io.stats().injected() > 0);
    }
}
