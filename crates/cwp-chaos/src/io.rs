//! The [`ChaosIo`] seam: whole-file storage operations every durable
//! artifact writes through.
//!
//! The trait is deliberately whole-file (read all, write all, rename):
//! every durable artifact in the workspace already works that way —
//! journals are rewritten atomically via write-then-rename, traces and
//! snapshots are single buffered writes — so the seam captures every
//! byte that reaches disk without imposing a stream abstraction the
//! callers don't use.

use std::io;
use std::path::Path;
use std::sync::Arc;

/// Whole-file storage operations, the seam fault injection threads
/// through. [`RealIo`] is the passthrough default.
pub trait ChaosIo: Send + Sync {
    /// Reads the entire file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error (`NotFound`, injected faults).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates or truncates `path` and writes `data` in full.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error. A failed write may have
    /// persisted a prefix of `data` (a torn write).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (the commit step of
    /// write-then-rename).
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error; on failure `from` is left
    /// in place.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates `path` and any missing parents.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists (file or directory).
    fn exists(&self, path: &Path) -> bool;
}

impl<T: ChaosIo + ?Sized> ChaosIo for &T {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        (**self).read(path)
    }
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        (**self).write(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        (**self).rename(from, to)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        (**self).create_dir_all(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        (**self).remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        (**self).exists(path)
    }
}

impl<T: ChaosIo + ?Sized> ChaosIo for Arc<T> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        (**self).read(path)
    }
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        (**self).write(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        (**self).rename(from, to)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        (**self).create_dir_all(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        (**self).remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        (**self).exists(path)
    }
}

/// A cloneable, `Debug`-able handle to a shared [`ChaosIo`] backend,
/// so `#[derive(Debug, Clone)]` config structs can carry the seam
/// without naming a concrete backend type.
#[derive(Clone)]
pub struct IoHandle(Arc<dyn ChaosIo>);

impl IoHandle {
    /// Wraps an already-shared backend.
    pub fn new(io: Arc<dyn ChaosIo>) -> Self {
        IoHandle(io)
    }

    /// The passthrough backend ([`RealIo`]).
    pub fn real() -> Self {
        IoHandle(Arc::new(RealIo))
    }

    /// A fresh clone of the inner shared backend.
    pub fn arc(&self) -> Arc<dyn ChaosIo> {
        Arc::clone(&self.0)
    }
}

impl Default for IoHandle {
    fn default() -> Self {
        IoHandle::real()
    }
}

impl std::fmt::Debug for IoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("IoHandle(..)")
    }
}

impl ChaosIo for IoHandle {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.0.read(path)
    }
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.0.write(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.0.rename(from, to)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.0.create_dir_all(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.0.remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.0.exists(path)
    }
}

/// The passthrough backend: plain `std::fs`, byte-for-byte what the
/// code did before the seam existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl ChaosIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The typed classification of a storage failure, recovered from the
/// `io::Error` kinds the fault injector (and real filesystems) produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsError {
    /// The file does not exist.
    NotFound,
    /// The device is out of space (`ENOSPC`).
    NoSpace,
    /// The call was interrupted (`EINTR`); retrying may succeed.
    Interrupted,
    /// A write persisted only a prefix of its bytes.
    Torn,
    /// A read returned fewer bytes than the file holds.
    ShortRead,
    /// The commit rename of an atomic replace failed.
    RenameFailed,
    /// Any other I/O failure.
    Other,
}

impl VfsError {
    /// Classifies an `io::Error` by kind.
    pub fn classify(error: &io::Error) -> VfsError {
        match error.kind() {
            io::ErrorKind::NotFound => VfsError::NotFound,
            io::ErrorKind::StorageFull => VfsError::NoSpace,
            io::ErrorKind::Interrupted => VfsError::Interrupted,
            io::ErrorKind::WriteZero => VfsError::Torn,
            io::ErrorKind::UnexpectedEof => VfsError::ShortRead,
            io::ErrorKind::ResourceBusy => VfsError::RenameFailed,
            _ => VfsError::Other,
        }
    }

    /// Whether a retry of the same call can reasonably succeed.
    pub fn is_transient(self) -> bool {
        matches!(self, VfsError::Interrupted)
    }
}

/// Maximum automatic retries of an `EINTR`-interrupted call.
const EINTR_RETRIES: u32 = 8;

/// Runs `op`, retrying up to a small bound while it fails with
/// `ErrorKind::Interrupted` — the `EINTR` loop every robust I/O call
/// site needs, centralized.
///
/// # Errors
///
/// Returns the last error once the retry bound is exhausted, and any
/// non-transient error immediately.
pub fn retry_interrupted<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempts = 0;
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted && attempts < EINTR_RETRIES => {
                attempts += 1;
            }
            other => return other,
        }
    }
}

/// Reads a file as UTF-8 text through the seam.
///
/// # Errors
///
/// Propagates backend errors; non-UTF-8 content is `InvalidData`.
pub fn read_to_string(io: &dyn ChaosIo, path: &Path) -> io::Result<String> {
    let bytes = retry_interrupted(|| io.read(path))?;
    String::from_utf8(bytes).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Writes `data` atomically through the seam: a `.tmp` sibling first,
/// then a rename over `path` — so a crash or injected fault at any
/// boundary leaves either the old complete file or the new one.
///
/// # Errors
///
/// Propagates backend errors from the write or the commit rename (the
/// `EINTR` retry loop is applied to both steps).
pub fn write_atomic(io: &dyn ChaosIo, path: &Path, data: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    retry_interrupted(|| io.write(&tmp, data))?;
    retry_interrupted(|| io.rename(&tmp, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_io_round_trips_through_the_seam() {
        let dir = std::env::temp_dir().join(format!("cwp-chaos-real-{}", std::process::id()));
        let io = RealIo;
        io.create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        assert!(!io.exists(&path));
        write_atomic(&io, &path, b"payload").unwrap();
        assert!(io.exists(&path));
        assert_eq!(io.read(&path).unwrap(), b"payload");
        assert_eq!(read_to_string(&io, &path).unwrap(), "payload");
        assert!(
            !io.exists(&path.with_file_name("artifact.bin.tmp")),
            "the tmp sibling is renamed away"
        );
        io.remove_file(&path).unwrap();
        assert!(!io.exists(&path));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn classify_maps_the_injected_error_kinds() {
        let cases = [
            (io::ErrorKind::NotFound, VfsError::NotFound),
            (io::ErrorKind::StorageFull, VfsError::NoSpace),
            (io::ErrorKind::Interrupted, VfsError::Interrupted),
            (io::ErrorKind::WriteZero, VfsError::Torn),
            (io::ErrorKind::UnexpectedEof, VfsError::ShortRead),
            (io::ErrorKind::ResourceBusy, VfsError::RenameFailed),
            (io::ErrorKind::PermissionDenied, VfsError::Other),
        ];
        for (kind, want) in cases {
            let got = VfsError::classify(&io::Error::new(kind, "x"));
            assert_eq!(got, want, "{kind:?}");
        }
        assert!(VfsError::Interrupted.is_transient());
        assert!(!VfsError::NoSpace.is_transient());
    }

    #[test]
    fn retry_interrupted_retries_eintr_but_not_real_errors() {
        let mut calls = 0;
        let out: io::Result<u32> = retry_interrupted(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: io::Result<u32> = retry_interrupted(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::StorageFull, "enospc"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::StorageFull);
        assert_eq!(calls, 1, "terminal errors are not retried");

        let mut calls = 0;
        let out: io::Result<u32> = retry_interrupted(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(calls, 9, "bounded: initial attempt + 8 retries");
    }
}
