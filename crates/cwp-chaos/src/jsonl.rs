//! JSONL helpers threaded through the [`ChaosIo`] seam.
//!
//! Byte-for-byte the same formats as `cwp_obs::{read_jsonl_tolerant,
//! write_jsonl_atomic}` — they share the pure parse/render halves — but
//! every byte moves through a [`ChaosIo`] backend, so journals can be
//! exercised under injected faults and in-memory crash exploration.

use std::io;
use std::path::Path;

use cwp_obs::json::Json;
use cwp_obs::jsonl::{parse_jsonl_tolerant, render_jsonl, JsonlDocument};

use crate::io::{read_to_string, retry_interrupted, ChaosIo};

/// Reads a JSONL file through the seam, tolerating a torn final line —
/// the exact contract of [`cwp_obs::read_jsonl_tolerant`].
///
/// # Errors
///
/// Fails on backend I/O errors or malformed JSON before the final line.
pub fn read_jsonl_tolerant_io(io: &dyn ChaosIo, path: &Path) -> io::Result<JsonlDocument> {
    let text = read_to_string(io, path)?;
    parse_jsonl_tolerant(&text, &path.display().to_string())
}

/// Writes a JSONL file atomically through the seam (`.tmp` sibling,
/// then rename) — the exact contract of [`cwp_obs::write_jsonl_atomic`].
///
/// # Errors
///
/// Fails on backend I/O errors from the write or the commit rename.
pub fn write_jsonl_atomic_io(io: &dyn ChaosIo, path: &Path, lines: &[Json]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    retry_interrupted(|| io.write(&tmp, render_jsonl(lines).as_bytes()))?;
    retry_interrupted(|| io.rename(&tmp, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memio::MemIo;
    use std::path::PathBuf;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn io_threaded_jsonl_matches_the_fs_backed_format() {
        let mem = MemIo::new();
        let lines = vec![
            Json::obj([("a", Json::UInt(1))]),
            Json::obj([("b", Json::Str("two".into()))]),
        ];
        write_jsonl_atomic_io(&mem, &p("/j.jsonl"), &lines).unwrap();
        assert_eq!(
            mem.file(&p("/j.jsonl")).unwrap(),
            cwp_obs::render_jsonl(&lines).into_bytes(),
        );
        assert!(!mem.exists(&p("/j.jsonl.tmp")), "tmp renamed away");
        let doc = read_jsonl_tolerant_io(&mem, &p("/j.jsonl")).unwrap();
        assert_eq!(doc.lines, lines);
        assert!(!doc.truncated);
    }

    #[test]
    fn torn_final_line_is_tolerated_through_the_seam() {
        let mem = MemIo::new();
        mem.write(&p("/j.jsonl"), b"{\"a\":1}\n{\"b\":").unwrap();
        let doc = read_jsonl_tolerant_io(&mem, &p("/j.jsonl")).unwrap();
        assert_eq!(doc.lines.len(), 1);
        assert!(doc.truncated);
    }
}
