//! Storage chaos: deterministic I/O fault injection and crash-point
//! exploration for the workspace's durable artifacts.
//!
//! The simulator's durability layer — the serve memo journal, the
//! runner's checkpoint journal, recorded trace files, and metrics
//! snapshot files — makes crash-consistency promises (lenient reload of
//! a torn final line, atomic write-then-rename) that until now were
//! only exercised by a single SIGKILL test. This crate holds those
//! promises to the same standard the simulator applies to the memory
//! hierarchy it models:
//!
//! - [`ChaosIo`]: the seam. A whole-file I/O trait every durable
//!   artifact writes through, with [`RealIo`] as the passthrough
//!   default, so production code keeps its exact behavior.
//! - [`FaultyIo`]: a seeded wrapper injecting torn writes, short reads,
//!   `ENOSPC`, `EINTR`, rename failure, and fsync loss from a
//!   SplitMix64 schedule — the storage counterpart of
//!   `cwp_mem::FaultyNextLevel`'s transit faults.
//! - [`MemIo`]: an in-memory filesystem that journals every mutation,
//!   from which [`crash_points`] enumerates every write boundary of a
//!   run — including torn-prefix states — and rebuilds the filesystem
//!   a crash at that boundary would leave behind.
//! - [`explore`]: the harness that drives a recovery check over every
//!   enumerated crash point under a fixed seed budget.
//!
//! Everything is deterministic: a fixed `(seed, plan)` pair yields the
//! same fault schedule and the same crash points on every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod explore;
pub mod faulty;
pub mod io;
pub mod jsonl;
pub mod memio;

pub use explore::{explore, ExploreReport};
pub use faulty::{FaultPlan, FaultyIo, IoFaultStats};
pub use io::{
    read_to_string, retry_interrupted, write_atomic, ChaosIo, IoHandle, RealIo, VfsError,
};
pub use jsonl::{read_jsonl_tolerant_io, write_jsonl_atomic_io};
pub use memio::{crash_points, CrashPoint, MemIo, MemOp};
