//! [`MemIo`]: an in-memory filesystem that journals every mutation,
//! and [`crash_points`]: the enumeration of every state a crash could
//! leave that filesystem in.
//!
//! Because every durable artifact writes through [`ChaosIo`], running a
//! component against a [`MemIo`] captures its complete write history as
//! an ordered list of [`MemOp`]s. A crash can then be simulated *at
//! every boundary* of that history — after any prefix of the ops, plus
//! torn-prefix states where the next write persisted only some of its
//! bytes — and the component restarted against the rebuilt filesystem
//! to check its recovery contract. This turns "we survived one SIGKILL"
//! into "we survive a crash at every write boundary of the run".

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use cwp_mem::SplitMix64;

use crate::io::ChaosIo;

/// One journaled mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOp {
    /// A whole-file create-or-truncate write.
    Write {
        /// Destination path.
        path: PathBuf,
        /// The full content written.
        data: Vec<u8>,
    },
    /// An atomic rename.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
    /// A file removal.
    Remove {
        /// The removed path.
        path: PathBuf,
    },
    /// A directory creation.
    CreateDir {
        /// The created path.
        path: PathBuf,
    },
}

impl MemOp {
    /// A short human label for explorer failure messages.
    fn describe(&self) -> String {
        match self {
            MemOp::Write { path, data } => {
                format!("write {} ({} bytes)", path.display(), data.len())
            }
            MemOp::Rename { from, to } => {
                format!("rename {} -> {}", from.display(), to.display())
            }
            MemOp::Remove { path } => format!("remove {}", path.display()),
            MemOp::CreateDir { path } => format!("create_dir {}", path.display()),
        }
    }
}

#[derive(Default)]
struct MemState {
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
    journal: Vec<MemOp>,
}

impl MemState {
    /// Applies `op` to the filesystem maps (without journaling).
    fn apply(&mut self, op: &MemOp) -> io::Result<()> {
        match op {
            MemOp::Write { path, data } => {
                self.files.insert(path.clone(), data.clone());
            }
            MemOp::Rename { from, to } => {
                let data = self.files.remove(from).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("rename source missing: {}", from.display()),
                    )
                })?;
                self.files.insert(to.clone(), data);
            }
            MemOp::Remove { path } => {
                if self.files.remove(path).is_none() {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("remove target missing: {}", path.display()),
                    ));
                }
            }
            MemOp::CreateDir { path } => {
                self.dirs.insert(path.clone());
            }
        }
        Ok(())
    }
}

/// An in-memory [`ChaosIo`] backend that journals every mutation.
#[derive(Default)]
pub struct MemIo {
    state: Mutex<MemState>,
}

impl MemIo {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemIo::default()
    }

    /// Rebuilds the filesystem a crash would leave behind: the first
    /// `ops[..applied]` fully applied, plus — if `torn` names a write in
    /// `ops[applied..]` — that write's first `torn.1` bytes.
    ///
    /// The rebuilt filesystem journals its own mutations from scratch,
    /// so a restarted component can itself be explored.
    pub fn replay(ops: &[MemOp], applied: usize, torn: Option<(usize, usize)>) -> MemIo {
        let mut state = MemState::default();
        for op in &ops[..applied.min(ops.len())] {
            // Replaying a previously-journaled history cannot fail.
            let _ = state.apply(op);
        }
        if let Some((index, cut)) = torn {
            if let Some(MemOp::Write { path, data }) = ops.get(index) {
                let cut = cut.min(data.len());
                state.files.insert(path.clone(), data[..cut].to_vec());
            }
        }
        state.journal.clear();
        MemIo {
            state: Mutex::new(state),
        }
    }

    /// A deep copy of the current filesystem state with an empty
    /// journal — the restart point for re-opening a component at a
    /// crash state without mutating the original.
    pub fn fork(&self) -> MemIo {
        let state = self.lock();
        MemIo {
            state: Mutex::new(MemState {
                files: state.files.clone(),
                dirs: state.dirs.clone(),
                journal: Vec::new(),
            }),
        }
    }

    /// The journaled mutations, in order.
    pub fn journal(&self) -> Vec<MemOp> {
        self.lock().journal.clone()
    }

    /// Number of journaled mutations.
    pub fn op_count(&self) -> usize {
        self.lock().journal.len()
    }

    /// The content of `path`, if present.
    pub fn file(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).cloned()
    }

    /// Snapshot of every file (for assertions).
    pub fn files(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.lock().files.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl ChaosIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.lock().files.get(path).cloned().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            )
        })
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        let op = MemOp::Write {
            path: path.to_path_buf(),
            data: data.to_vec(),
        };
        state.apply(&op)?;
        state.journal.push(op);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        let op = MemOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        };
        state.apply(&op)?;
        state.journal.push(op);
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        let op = MemOp::CreateDir {
            path: path.to_path_buf(),
        };
        state.apply(&op)?;
        state.journal.push(op);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        let op = MemOp::Remove {
            path: path.to_path_buf(),
        };
        state.apply(&op)?;
        state.journal.push(op);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let state = self.lock();
        state.files.contains_key(path)
            || state.dirs.contains(path)
            || state.files.keys().any(|f| f.starts_with(path) && f != path)
    }
}

/// One simulated crash state: the filesystem as a crash at this
/// boundary would leave it.
pub struct CrashPoint {
    /// Human-readable boundary description (op index, op, torn cut).
    pub label: String,
    /// Ops from the recorded history fully applied before the crash.
    pub applied: usize,
    /// The rebuilt filesystem.
    pub io: MemIo,
}

/// Enumerates every crash state of a recorded mutation history:
///
/// - one boundary state per prefix `ops[..k]`, `k = 0..=len` (a crash
///   *between* ops — which also covers a failed atomic rename, since
///   renames either happen or don't);
/// - for every write op, torn states where only a prefix of its bytes
///   reached the device: the 1-byte cut, the all-but-one cut, and one
///   seeded interior cut.
///
/// The enumeration is deterministic for a fixed `(ops, seed)`.
pub fn crash_points(ops: &[MemOp], seed: u64) -> Vec<CrashPoint> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut points = Vec::new();
    for k in 0..=ops.len() {
        points.push(CrashPoint {
            label: match k {
                0 => "before any op".to_string(),
                _ => format!("after op {} ({})", k - 1, ops[k - 1].describe()),
            },
            applied: k,
            io: MemIo::replay(ops, k, None),
        });
        if let Some(MemOp::Write { data, .. }) = ops.get(k) {
            if data.len() >= 2 {
                let mut cuts = vec![1, data.len() - 1];
                cuts.push(1 + rng.below((data.len() - 1) as u64) as usize);
                cuts.sort_unstable();
                cuts.dedup();
                for cut in cuts {
                    points.push(CrashPoint {
                        label: format!("torn op {} ({}) at {cut} bytes", k, ops[k].describe()),
                        applied: k,
                        io: MemIo::replay(ops, k, Some((k, cut))),
                    });
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn mem_io_behaves_like_a_filesystem() {
        let io = MemIo::new();
        io.create_dir_all(&p("/run")).unwrap();
        assert!(io.exists(&p("/run")));
        io.write(&p("/run/j"), b"one").unwrap();
        assert_eq!(io.read(&p("/run/j")).unwrap(), b"one");
        io.write(&p("/run/j.tmp"), b"two").unwrap();
        io.rename(&p("/run/j.tmp"), &p("/run/j")).unwrap();
        assert_eq!(io.read(&p("/run/j")).unwrap(), b"two");
        assert!(!io.exists(&p("/run/j.tmp")));
        assert!(io.exists(&p("/run")), "parent of a live file exists");
        io.remove_file(&p("/run/j")).unwrap();
        assert!(io.read(&p("/run/j")).is_err());
        assert_eq!(io.op_count(), 5);
    }

    #[test]
    fn rename_of_a_missing_source_fails_and_is_not_journaled() {
        let io = MemIo::new();
        assert!(io.rename(&p("/a"), &p("/b")).is_err());
        assert!(io.remove_file(&p("/a")).is_err());
        assert_eq!(io.op_count(), 0);
    }

    #[test]
    fn replay_rebuilds_any_prefix() {
        let io = MemIo::new();
        io.write(&p("/j"), b"v1").unwrap();
        io.write(&p("/j.tmp"), b"v2-longer").unwrap();
        io.rename(&p("/j.tmp"), &p("/j")).unwrap();
        let ops = io.journal();

        let at0 = MemIo::replay(&ops, 0, None);
        assert!(at0.file(&p("/j")).is_none());
        let at1 = MemIo::replay(&ops, 1, None);
        assert_eq!(at1.file(&p("/j")).unwrap(), b"v1");
        let at2 = MemIo::replay(&ops, 2, None);
        assert_eq!(at2.file(&p("/j")).unwrap(), b"v1");
        assert_eq!(at2.file(&p("/j.tmp")).unwrap(), b"v2-longer");
        let at3 = MemIo::replay(&ops, 3, None);
        assert_eq!(at3.file(&p("/j")).unwrap(), b"v2-longer");
        assert!(at3.file(&p("/j.tmp")).is_none());

        // Torn second write: only a prefix of the tmp file survives.
        let torn = MemIo::replay(&ops, 1, Some((1, 3)));
        assert_eq!(torn.file(&p("/j")).unwrap(), b"v1");
        assert_eq!(torn.file(&p("/j.tmp")).unwrap(), b"v2-");
        assert_eq!(torn.op_count(), 0, "replayed state journals from scratch");
    }

    #[test]
    fn crash_points_cover_every_boundary_and_torn_writes() {
        let io = MemIo::new();
        io.create_dir_all(&p("/d")).unwrap();
        io.write(&p("/d/f"), b"abcdef").unwrap();
        io.rename(&p("/d/f"), &p("/d/g")).unwrap();
        let ops = io.journal();
        let points = crash_points(&ops, 42);
        // 4 boundaries + up to 3 torn cuts for the one write.
        let boundaries = points
            .iter()
            .filter(|c| !c.label.starts_with("torn"))
            .count();
        let torn: Vec<_> = points
            .iter()
            .filter(|c| c.label.starts_with("torn"))
            .collect();
        assert_eq!(boundaries, ops.len() + 1);
        assert!((2..=3).contains(&torn.len()), "1, len-1, and a seeded cut");
        for point in &torn {
            let kept = point.io.file(&p("/d/f")).unwrap();
            assert!(kept.len() < 6 && !kept.is_empty());
            assert_eq!(&b"abcdef"[..kept.len()], &kept[..]);
        }
        // Determinism.
        let again = crash_points(&ops, 42);
        assert_eq!(
            points.iter().map(|c| c.label.clone()).collect::<Vec<_>>(),
            again.iter().map(|c| c.label.clone()).collect::<Vec<_>>(),
        );
    }
}
