//! Deterministic differential fuzzer for the simulation engine.
//!
//! ```text
//! cwp-fuzz [--seed N] [--cases N] [--max-refs N] [--out DIR]
//!          [--replay PATH] [--shrink-demo]
//! ```
//!
//! Each case draws a cache configuration and a reference stream from a
//! [`SplitMix64`] chain and lock-steps every optimized engine path —
//! the data-carrying cache, the recorded-trace replay, the data-free
//! bank of `simulate_many`, and the audited replay — against the naive
//! `cwp-verify` [`ModelCache`] oracle. Configurations cycle through all
//! six valid write-policy combinations; streams cycle through windows
//! of the six paper workloads plus pure-random, strided, and hot-set
//! shapes. On divergence the case is shrunk (drop reference chunks,
//! simplify the configuration toward the default) to a minimal JSONL
//! repro written under `--out` (default `tests/repros/`), and the run
//! exits nonzero.
//!
//! `--replay PATH` re-checks a saved case file or every `*.jsonl` in a
//! directory (the committed repro corpus). `--shrink-demo` proves the
//! shrinker end to end: it plants an off-by-one accounting bug in the
//! model, shrinks the resulting divergence to a handful of references,
//! and writes the minimized case — which must agree under the correct
//! model — into `--out`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cwp_buffers::CoalescingWriteBuffer;
use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_core::{replay, replay_audited, simulate, simulate_many};
use cwp_mem::rng::SplitMix64;
use cwp_trace::{workloads, MemRef, RecordedTrace, Scale, TraceSink, TraceSummary, Workload};
use cwp_verify::{check_case, check_case_with, shrink, CaseRef, FuzzCase, ModelBug, ModelCache};

fn usage() -> &'static str {
    "usage: cwp-fuzz [--seed N] [--cases N] [--max-refs N] [--out DIR]\n\
     \x20               [--replay PATH] [--shrink-demo]\n\
     --seed: master seed for the case chain (default 1)\n\
     --cases: number of generated cases to check (default 200)\n\
     --max-refs: reference-stream length cap per case (default 256)\n\
     --out: directory minimized repros are written to (default tests/repros)\n\
     --replay: re-check a saved .jsonl case, or every case in a directory\n\
     --shrink-demo: plant a model bug, shrink the divergence, save the repro"
}

struct Cli {
    seed: u64,
    cases: u64,
    max_refs: usize,
    out: PathBuf,
    replay: Option<PathBuf>,
    shrink_demo: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        seed: 1,
        cases: 200,
        max_refs: 256,
        out: PathBuf::from("tests/repros"),
        replay: None,
        shrink_demo: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = value(&mut args, "--seed")?;
                cli.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--cases" => {
                let v = value(&mut args, "--cases")?;
                cli.cases = v.parse().map_err(|_| format!("bad cases '{v}'"))?;
            }
            "--max-refs" => {
                let v = value(&mut args, "--max-refs")?;
                cli.max_refs = match v.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => return Err(format!("bad max-refs '{v}'")),
                };
            }
            "--out" => cli.out = PathBuf::from(value(&mut args, "--out")?),
            "--replay" => cli.replay = Some(PathBuf::from(value(&mut args, "--replay")?)),
            "--shrink-demo" => cli.shrink_demo = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(cli)
}

// ---------------------------------------------------------------------
// Reference streams as workloads
// ---------------------------------------------------------------------

/// Wraps a case's reference stream as a [`Workload`] so it can drive
/// every engine entry point: `simulate`, `RecordedTrace::record`,
/// `simulate_many`, and the audited replay. `scale` is ignored — fuzz
/// streams are already exactly the length the case says.
struct RefStream {
    refs: Vec<MemRef>,
}

impl RefStream {
    /// Builds the stream, or `None` if any reference is not expressible
    /// as a [`MemRef`] (engine traces carry only aligned 4/8-byte
    /// accesses; foreign case files may be looser).
    fn from_case(case: &FuzzCase) -> Option<RefStream> {
        let mut refs = Vec::with_capacity(case.refs.len());
        for r in &case.refs {
            if !matches!(r.size, 4 | 8) || r.addr % u64::from(r.size) != 0 {
                return None;
            }
            refs.push(if r.write {
                MemRef::write(r.addr, r.size)
            } else {
                MemRef::read(r.addr, r.size)
            });
        }
        Some(RefStream { refs })
    }
}

impl Workload for RefStream {
    fn name(&self) -> &'static str {
        "fuzz-stream"
    }

    fn description(&self) -> &'static str {
        "synthetic reference stream generated by cwp-fuzz"
    }

    fn run(&self, _scale: Scale, sink: &mut dyn TraceSink) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for r in &self.refs {
            summary.instructions += u64::from(r.before_insts);
            if r.is_write() {
                summary.writes += 1;
            } else {
                summary.reads += 1;
            }
            sink.record(*r);
        }
        summary
    }
}

// ---------------------------------------------------------------------
// Case generation
// ---------------------------------------------------------------------

/// The six valid write-policy combinations, cycled so every fuzz run
/// covers all of them regardless of case count.
const POLICY_COMBOS: [(WriteHitPolicy, WriteMissPolicy); 6] = [
    (WriteHitPolicy::WriteBack, WriteMissPolicy::FetchOnWrite),
    (WriteHitPolicy::WriteBack, WriteMissPolicy::WriteValidate),
    (WriteHitPolicy::WriteThrough, WriteMissPolicy::FetchOnWrite),
    (WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteValidate),
    (WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteAround),
    (
        WriteHitPolicy::WriteThrough,
        WriteMissPolicy::WriteInvalidate,
    ),
];

fn gen_config(rng: &mut SplitMix64, combo: usize) -> CacheConfig {
    let (hit, miss) = POLICY_COMBOS[combo % POLICY_COMBOS.len()];
    let size = 256u32 << rng.below(7); // 256B ..= 16KB
    let line = 4u32 << rng.below(5); // 4B ..= 64B
    let ways = 1u32 << rng.below(3); // 1, 2, 4
    CacheConfig::builder()
        .size_bytes(size)
        .line_bytes(line)
        .associativity(ways)
        .write_hit(hit)
        .write_miss(miss)
        .partial_writeback(hit == WriteHitPolicy::WriteBack && rng.gen_bool())
        .build()
        .expect("generated geometry is always valid: line*ways <= 256 <= size")
}

/// Lazily recorded paper-workload traces, reused across cases.
struct WorkloadPool {
    names: Vec<&'static str>,
    traces: Vec<Option<Vec<CaseRef>>>,
}

impl WorkloadPool {
    fn new() -> WorkloadPool {
        let suite = workloads::suite();
        WorkloadPool {
            names: suite.iter().map(|w| w.name()).collect(),
            traces: suite.iter().map(|_| None).collect(),
        }
    }

    fn refs(&mut self, idx: usize) -> &[CaseRef] {
        if self.traces[idx].is_none() {
            let suite = workloads::suite();
            let rec = RecordedTrace::record(suite[idx].as_ref(), Scale::Test);
            let refs = rec
                .iter()
                .map(|r| CaseRef {
                    write: r.is_write(),
                    addr: r.addr,
                    size: r.size,
                })
                .collect();
            self.traces[idx] = Some(refs);
        }
        self.traces[idx].as_deref().expect("just recorded")
    }
}

fn gen_refs(
    rng: &mut SplitMix64,
    shape: usize,
    max_refs: usize,
    pool: &mut WorkloadPool,
) -> (String, Vec<CaseRef>) {
    let aligned = |rng: &mut SplitMix64, span: u64| -> (u64, u8) {
        let size: u64 = if rng.gen_bool() { 4 } else { 8 };
        (rng.below(span / size) * size, size as u8)
    };
    match shape {
        // Windows of the six paper workloads: realistic locality.
        s if s < 6 => {
            let name = pool.names[s];
            let trace = pool.refs(s);
            let n = max_refs.min(trace.len());
            let start = rng.below((trace.len() - n + 1) as u64) as usize;
            (
                format!("{name}-window@{start}"),
                trace[start..start + n].to_vec(),
            )
        }
        // Pure random over a region a few times the largest cache.
        6 => {
            let n = 1 + rng.below(max_refs as u64) as usize;
            let refs = (0..n)
                .map(|_| {
                    let (addr, size) = aligned(rng, 64 * 1024);
                    CaseRef {
                        write: rng.gen_bool(),
                        addr,
                        size,
                    }
                })
                .collect();
            ("pure-random".to_string(), refs)
        }
        // Strided sweep with a small hot set mixed in: exercises victim
        // selection, partial write-backs, and merge-on-fetch.
        _ => {
            let stride = 4u64 << rng.below(6); // 4 ..= 128
            let hot_lines = 1 + rng.below(4);
            let n = 1 + rng.below(max_refs as u64) as usize;
            let refs = (0..n)
                .map(|i| {
                    if rng.gen_bool() {
                        let (off, size) = aligned(rng, 64);
                        CaseRef {
                            write: true,
                            addr: rng.below(hot_lines) * 0x1000 + off,
                            size,
                        }
                    } else {
                        CaseRef {
                            write: rng.gen_bool(),
                            addr: (i as u64) * stride % (32 * 1024) / 4 * 4,
                            size: 4,
                        }
                    }
                })
                .collect();
            (format!("strided-{stride}"), refs)
        }
    }
}

fn gen_case(
    master: &mut SplitMix64,
    index: u64,
    max_refs: usize,
    pool: &mut WorkloadPool,
) -> FuzzCase {
    let seed = master.next_u64();
    let mut rng = SplitMix64::seed_from_u64(seed);
    let config = gen_config(&mut rng, index as usize);
    let shape = rng.below(8) as usize;
    let (label, refs) = gen_refs(&mut rng, shape, max_refs, pool);
    FuzzCase {
        seed,
        label,
        config,
        refs,
    }
}

// ---------------------------------------------------------------------
// The full differential check
// ---------------------------------------------------------------------

/// Lock-steps every engine path against the model. Returns a
/// description of the first divergence, `None` when the case is clean.
fn full_check(case: &FuzzCase) -> Option<String> {
    // 1. Data-carrying engine vs model, byte-for-byte (reads, masks,
    //    stats, traffic, flush, post-flush memory image).
    if let Some(d) = check_case(case) {
        return Some(d.to_string());
    }
    // 2. Engine-path agreement: live generator run, recorded replay,
    //    data-free bank, and audited replay must all coincide — and
    //    match the model's (data-independent) stats and total traffic.
    let Some(stream) = RefStream::from_case(case) else {
        return None; // foreign case outside MemRef's alignment domain
    };
    let config = case.config;
    let golden = simulate(&stream, Scale::Test, &config);
    let trace = RecordedTrace::record(&stream, Scale::Test);
    let paths = [
        ("replay", replay(&trace, &config)),
        (
            "banked",
            simulate_many(&trace, &[config, CacheConfig::default()])
                .into_iter()
                .next()
                .expect("one outcome per config"),
        ),
        (
            "audited-replay",
            match replay_audited(&trace, &config) {
                Ok(out) => out,
                Err(e) => return Some(format!("audited replay failed: {e}")),
            },
        ),
    ];
    for (name, out) in &paths {
        if out.summary != golden.summary
            || out.stats != golden.stats
            || out.traffic_execution != golden.traffic_execution
            || out.traffic_total != golden.traffic_total
        {
            return Some(format!("engine path '{name}' diverges from live simulate"));
        }
    }
    let mut model = ModelCache::new(config);
    let mut buf = [0u8; 8];
    for r in &case.refs {
        if r.write {
            model.write(r.addr, &buf[..r.size as usize]);
        } else {
            model.read(r.addr, &mut buf[..r.size as usize]);
        }
    }
    model.flush();
    if model.stats() != golden.stats {
        return Some("model stats diverge from live simulate".to_string());
    }
    if model.traffic() != golden.traffic_total {
        return Some("model traffic diverges from live simulate".to_string());
    }
    // 3. Coalescing write buffer conservation over the case's store
    //    stream: every write is either merged or (eventually) retired,
    //    and a flush leaves nothing pending.
    let mut wb = CoalescingWriteBuffer::new(8, config.line_bytes(), 5);
    let mut cycle = 0u64;
    let mut writes = 0u64;
    for r in &stream.refs {
        cycle += u64::from(r.before_insts);
        if r.is_write() {
            wb.write(cycle, r.addr);
            writes += 1;
        }
    }
    wb.flush();
    let s = wb.stats();
    if s.writes != writes || s.merged + s.retired != s.writes || wb.occupancy() != 0 {
        return Some(format!(
            "write buffer leaks entries: {s} for {writes} writes, {} left",
            wb.occupancy()
        ));
    }
    None
}

// ---------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------

fn fuzz(cli: &Cli) -> ExitCode {
    let mut master = SplitMix64::seed_from_u64(cli.seed);
    let mut pool = WorkloadPool::new();
    let mut divergences = 0u64;
    for i in 0..cli.cases {
        let case = gen_case(&mut master, i, cli.max_refs, &mut pool);
        let Some(detail) = full_check(&case) else {
            continue;
        };
        divergences += 1;
        eprintln!(
            "case {i} (seed {:#x}, {}, {}): DIVERGED: {detail}",
            case.seed, case.label, case.config
        );
        let minimal = shrink(&case, &mut |c| full_check(c).is_some());
        let path = cli.out.join(format!("div-{:016x}.jsonl", case.seed));
        match minimal.save(&path) {
            Ok(()) => eprintln!(
                "  shrunk {} -> {} refs, saved to {}",
                case.refs.len(),
                minimal.refs.len(),
                path.display()
            ),
            Err(e) => eprintln!("  could not save repro to {}: {e}", path.display()),
        }
    }
    println!(
        "cwp-fuzz: {} cases checked (seed {}), {divergences} divergences",
        cli.cases, cli.seed
    );
    if divergences == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay_corpus(path: &Path) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    if path.is_dir() {
        let entries = match std::fs::read_dir(path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension().is_some_and(|x| x == "jsonl") {
                files.push(p);
            }
        }
        files.sort();
    } else {
        files.push(path.to_path_buf());
    }
    if files.is_empty() {
        eprintln!("{}: no .jsonl cases found", path.display());
        return ExitCode::FAILURE;
    }
    let mut failures = 0u64;
    for file in &files {
        let case = match FuzzCase::load(file) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
                continue;
            }
        };
        match full_check(&case) {
            None => println!(
                "{}: ok ({} refs, {})",
                file.display(),
                case.refs.len(),
                case.config
            ),
            Some(detail) => {
                eprintln!("{}: DIVERGED: {detail}", file.display());
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("cwp-fuzz: {} repro case(s) replayed clean", files.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Proves the shrinker end to end against a *planted* bug: the engine
/// cannot be broken at runtime, so the off-by-one lives in the model
/// (`ModelBug::VictimDirtyBytesOffByOne`) and the divergence being
/// minimized is engine-vs-buggy-model. The saved repro must agree under
/// the correct model — it documents the shrinker, not a real bug.
fn shrink_demo(cli: &Cli) -> ExitCode {
    let mut rng = SplitMix64::seed_from_u64(cli.seed);
    // A small write-back cache thrashed by aligned writes: plenty of
    // dirty evictions for the planted off-by-one to skew.
    let config = CacheConfig::builder()
        .size_bytes(256)
        .line_bytes(16)
        .associativity(2)
        .write_hit(WriteHitPolicy::WriteBack)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .expect("a valid demo configuration");
    let refs = (0..400)
        .map(|_| {
            let size: u64 = if rng.gen_bool() { 4 } else { 8 };
            CaseRef {
                write: rng.gen_bool(),
                addr: rng.below(4096 / size) * size,
                size: size as u8,
            }
        })
        .collect();
    let case = FuzzCase {
        seed: cli.seed,
        label: "shrink-demo".to_string(),
        config,
        refs,
    };
    let bug = ModelBug::VictimDirtyBytesOffByOne;
    let mut fails = |c: &FuzzCase| check_case_with(c, bug).is_some();
    if !fails(&case) {
        eprintln!("shrink-demo: the planted bug did not diverge; widen the stream");
        return ExitCode::FAILURE;
    }
    let minimal = shrink(&case, &mut fails);
    println!(
        "shrink-demo: {} refs -> {} refs against {}",
        case.refs.len(),
        minimal.refs.len(),
        minimal.config
    );
    if minimal.refs.len() > 16 {
        eprintln!(
            "shrink-demo: expected <= 16 refs, got {}",
            minimal.refs.len()
        );
        return ExitCode::FAILURE;
    }
    if let Some(d) = check_case(&minimal) {
        eprintln!("shrink-demo: minimized case disagrees under the correct model: {d}");
        return ExitCode::FAILURE;
    }
    let path = cli.out.join("shrink-demo-victim-dirty.jsonl");
    match minimal.save(&path) {
        Ok(()) => {
            println!("shrink-demo: saved {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shrink-demo: could not save {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &cli.replay {
        return replay_corpus(path);
    }
    if cli.shrink_demo {
        return shrink_demo(&cli);
    }
    fuzz(&cli)
}
