//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--scale test|quick|paper|<factor>] [--csv] <id>... | all | list
//! ```

use std::process::ExitCode;

use cwp_core::experiments;
use cwp_core::Lab;
use cwp_trace::Scale;

fn usage() -> &'static str {
    "usage: figures [--scale test|quick|paper|<factor>] [--csv] <id>... | all | list\n\
     ids: table1-table3, fig01-fig25, ext_* extensions (see 'list')"
}

fn main() -> ExitCode {
    let mut scale = Scale::Paper;
    let mut csv = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next() else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                scale = match v.as_str() {
                    "test" => Scale::Test,
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => match other.parse::<f64>() {
                        Ok(f) if f > 0.0 => Scale::Custom(f),
                        _ => {
                            eprintln!("bad scale '{other}'\n{}", usage());
                            return ExitCode::FAILURE;
                        }
                    },
                };
            }
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }

    if ids.iter().any(|i| i == "list") {
        for e in experiments::all() {
            println!("{:8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if ids.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    let selected: Vec<experiments::Experiment> = if ids.iter().any(|i| i == "all") {
        experiments::all()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match experiments::by_id(id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{id}'; try 'list'");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let mut lab = Lab::new(scale);
    for e in selected {
        eprintln!("running {} — {} (scale {})", e.id, e.title, scale);
        for table in e.run(&mut lab) {
            if csv {
                println!("# {}", table.title());
                println!("{}", table.to_csv());
            } else {
                println!("{}", table.to_markdown());
            }
        }
    }
    eprintln!("done: {} simulations", lab.runs());
    ExitCode::SUCCESS
}
