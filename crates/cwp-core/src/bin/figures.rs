//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--scale test|quick|paper|<factor>] [--csv] [--quiet]
//!         [--trace DIR] [--window N] [--max-events N] [--trace-workload W]
//!         <id>... | all | list
//! ```
//!
//! With `--trace DIR` (or `CWP_TRACE_DIR=DIR`), every simulation also
//! exports `events.jsonl`, `windows.csv`, and `manifest.json` under
//! `DIR/<experiment>/<NN>-<workload>/`. Progress and diagnostics go to
//! stderr at the level set by `CWP_LOG` (`quiet`..`debug`); `--quiet`
//! silences them entirely.

use std::process::ExitCode;

use cwp_core::experiments;
use cwp_core::{Lab, TraceOptions};
use cwp_obs::{obs_info, set_level, Level};
use cwp_trace::Scale;

fn usage() -> &'static str {
    "usage: figures [--scale test|quick|paper|<factor>] [--csv] [--quiet]\n\
     \x20              [--trace DIR] [--window N] [--max-events N] [--trace-workload W]\n\
     \x20              <id>... | all | list\n\
     ids: table1-table3, fig01-fig25, ext_* extensions (see 'list')\n\
     env: CWP_TRACE_DIR sets --trace; CWP_LOG sets verbosity (quiet..debug)"
}

struct Cli {
    scale: Scale,
    csv: bool,
    trace_dir: Option<String>,
    window: u64,
    max_events: Option<u64>,
    trace_workload: Option<String>,
    ids: Vec<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Paper,
        csv: false,
        trace_dir: std::env::var("CWP_TRACE_DIR")
            .ok()
            .filter(|d| !d.is_empty()),
        window: 4096,
        max_events: Some(1_000_000),
        trace_workload: None,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = value(&mut args, "--scale")?;
                cli.scale = match v.as_str() {
                    "test" => Scale::Test,
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => match other.parse::<f64>() {
                        Ok(f) if f > 0.0 => Scale::Custom(f),
                        _ => return Err(format!("bad scale '{other}'")),
                    },
                };
            }
            "--csv" => cli.csv = true,
            "--quiet" => set_level(Level::Quiet),
            "--trace" => cli.trace_dir = Some(value(&mut args, "--trace")?),
            "--window" => {
                let v = value(&mut args, "--window")?;
                cli.window = match v.parse::<u64>() {
                    Ok(n) if n > 0 => n,
                    _ => return Err(format!("bad window '{v}' (want a positive integer)")),
                };
            }
            "--max-events" => {
                let v = value(&mut args, "--max-events")?;
                cli.max_events = match v.parse::<u64>() {
                    Ok(0) => None, // 0 = unlimited
                    Ok(n) => Some(n),
                    _ => return Err(format!("bad max-events '{v}'")),
                };
            }
            "--trace-workload" => cli.trace_workload = Some(value(&mut args, "--trace-workload")?),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => cli.ids.push(other.to_string()),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    if cli.ids.iter().any(|i| i == "list") {
        for e in experiments::all() {
            println!("{:8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if cli.ids.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    let selected: Vec<experiments::Experiment> = if cli.ids.iter().any(|i| i == "all") {
        experiments::all()
    } else {
        let mut sel = Vec::new();
        for id in &cli.ids {
            match experiments::by_id(id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{id}'; try 'list'");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let mut lab = Lab::new(cli.scale);
    if let Some(dir) = &cli.trace_dir {
        let mut options = TraceOptions::new(dir);
        options.window = cli.window;
        options.max_events = cli.max_events;
        obs_info!(
            "tracing to {dir} (window {}, max events {})",
            cli.window,
            cli.max_events
                .map_or_else(|| "unlimited".to_string(), |n| n.to_string())
        );
        lab.enable_trace(options);
        lab.set_trace_filter(cli.trace_workload.as_deref());
    }

    let total = selected.len();
    for (i, e) in selected.into_iter().enumerate() {
        obs_info!(
            "[{}/{total}] running {} — {} (scale {})",
            i + 1,
            e.id,
            e.title,
            cli.scale
        );
        lab.set_trace_context(e.id);
        for table in e.run(&mut lab) {
            if cli.csv {
                println!("# {}", table.title());
                println!("{}", table.to_csv());
            } else {
                println!("{}", table.to_markdown());
            }
        }
    }
    obs_info!("done: {} simulations", lab.runs());
    ExitCode::SUCCESS
}
