//! Regenerates the paper's tables and figures under supervision.
//!
//! ```text
//! figures [--scale test|quick|paper|<factor>] [--csv] [--quiet]
//!         [--jobs N] [--deadline SECS] [--retries N] [--resume DIR]
//!         [--trace DIR] [--window N] [--max-events N] [--trace-workload W]
//!         <id>... | all | list
//! ```
//!
//! Experiments run as isolated jobs on a worker pool (`--jobs`): a
//! panicking or hung experiment degrades to an `n/a` placeholder while
//! the rest of the run completes. With `--trace DIR` every simulation
//! also exports `events.jsonl`, `windows.csv`, and `manifest.json`
//! under `DIR/<experiment>/<NN>-<workload>/`, and every settled job is
//! checkpointed to `DIR/checkpoint.jsonl` — after a crash or SIGKILL,
//! `--resume DIR` replays the finished tables byte-for-byte and only
//! re-runs the rest. Progress and diagnostics go to stderr at the level
//! set by `CWP_LOG` (`quiet`..`debug`); `--quiet` silences them.
//!
//! Exits nonzero when any job failed, timed out, or produced no data
//! rows.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cwp_core::experiments;
use cwp_core::runner::{Job, JobOutcome, Runner, RunnerConfig};
use cwp_core::{TraceOptions, TraceStore};
use cwp_obs::{obs_info, obs_warn, set_level, Level};
use cwp_trace::{workloads, RecordedTrace, Scale};

fn usage() -> &'static str {
    "usage: figures [--scale test|quick|paper|<factor>] [--csv] [--quiet]\n\
     \x20              [--jobs N] [--deadline SECS] [--retries N] [--resume DIR]\n\
     \x20              [--trace DIR] [--window N] [--max-events N] [--trace-workload W]\n\
     \x20              [--save-traces DIR] [--load-traces DIR] [--no-trace-store]\n\
     \x20              [--audit] <id>... | all | list\n\
     ids: table1-table3, fig01-fig25, ext_* extensions (see 'list')\n\
     --jobs: worker threads (default: CPUs, capped at 8)\n\
     --deadline: seconds allowed per unit of experiment cost (default: none)\n\
     --retries: extra attempts for a failed experiment (default: 2)\n\
     --resume: re-open DIR's checkpoint journal, replay finished jobs\n\
     --save-traces: record the six workload traces, write DIR/<name>.cwptrc\n\
     --load-traces: replay DIR's .cwptrc files instead of regenerating\n\
     --no-trace-store: record nothing, regenerate every simulation live\n\
     --audit: run every simulation under the invariant auditor (output\n\
     \x20        is identical; a violated invariant fails the job)\n\
     env: CWP_TRACE_DIR sets --trace; CWP_LOG sets verbosity (quiet..debug)"
}

struct Cli {
    scale: Scale,
    csv: bool,
    trace_dir: Option<String>,
    window: u64,
    max_events: Option<u64>,
    trace_workload: Option<String>,
    jobs: usize,
    deadline: Option<f64>,
    retries: u32,
    resume: bool,
    save_traces: Option<PathBuf>,
    load_traces: Option<PathBuf>,
    no_trace_store: bool,
    audit: bool,
    ids: Vec<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Paper,
        csv: false,
        trace_dir: std::env::var("CWP_TRACE_DIR")
            .ok()
            .filter(|d| !d.is_empty()),
        window: 4096,
        max_events: Some(1_000_000),
        trace_workload: None,
        jobs: default_jobs(),
        deadline: None,
        retries: 2,
        resume: false,
        save_traces: None,
        load_traces: None,
        no_trace_store: false,
        audit: false,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = value(&mut args, "--scale")?;
                cli.scale = match v.as_str() {
                    "test" => Scale::Test,
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => match other.parse::<f64>() {
                        Ok(f) if f > 0.0 => Scale::Custom(f),
                        _ => return Err(format!("bad scale '{other}'")),
                    },
                };
            }
            "--csv" => cli.csv = true,
            "--quiet" => set_level(Level::Quiet),
            "--trace" => cli.trace_dir = Some(value(&mut args, "--trace")?),
            "--window" => {
                let v = value(&mut args, "--window")?;
                cli.window = match v.parse::<u64>() {
                    Ok(n) if n > 0 => n,
                    _ => return Err(format!("bad window '{v}' (want a positive integer)")),
                };
            }
            "--max-events" => {
                let v = value(&mut args, "--max-events")?;
                cli.max_events = match v.parse::<u64>() {
                    Ok(0) => None, // 0 = unlimited
                    Ok(n) => Some(n),
                    _ => return Err(format!("bad max-events '{v}'")),
                };
            }
            "--trace-workload" => cli.trace_workload = Some(value(&mut args, "--trace-workload")?),
            "--jobs" => {
                let v = value(&mut args, "--jobs")?;
                cli.jobs = match v.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => return Err(format!("bad jobs '{v}' (want a positive integer)")),
                };
            }
            "--deadline" => {
                let v = value(&mut args, "--deadline")?;
                cli.deadline = match v.parse::<f64>() {
                    Ok(s) if s > 0.0 => Some(s),
                    _ => return Err(format!("bad deadline '{v}' (want seconds > 0)")),
                };
            }
            "--retries" => {
                let v = value(&mut args, "--retries")?;
                cli.retries = v.parse::<u32>().map_err(|_| format!("bad retries '{v}'"))?;
            }
            "--resume" => {
                let dir = value(&mut args, "--resume")?;
                cli.trace_dir = Some(dir);
                cli.resume = true;
            }
            "--save-traces" => {
                cli.save_traces = Some(PathBuf::from(value(&mut args, "--save-traces")?));
            }
            "--load-traces" => {
                cli.load_traces = Some(PathBuf::from(value(&mut args, "--load-traces")?));
            }
            "--no-trace-store" => cli.no_trace_store = true,
            "--audit" => cli.audit = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => cli.ids.push(other.to_string()),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    if cli.ids.iter().any(|i| i == "list") {
        for e in experiments::all() {
            println!("{:8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if cli.ids.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    let selected: Vec<experiments::Experiment> = if cli.ids.iter().any(|i| i == "all") {
        experiments::all()
    } else {
        let mut sel = Vec::new();
        for id in &cli.ids {
            match experiments::by_id(id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{id}'; try 'list'");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let mut config = RunnerConfig::new(cli.scale);
    config.workers = cli.jobs;
    config.retries = cli.retries;
    config.deadline_per_cost = cli.deadline.map(Duration::from_secs_f64);
    config.resume = cli.resume;
    config.audit = cli.audit;
    if let Some(dir) = &cli.trace_dir {
        let mut options = TraceOptions::new(dir);
        options.window = cli.window;
        options.max_events = cli.max_events;
        obs_info!(
            "tracing to {dir} (window {}, max events {})",
            cli.window,
            cli.max_events
                .map_or_else(|| "unlimited".to_string(), |n| n.to_string())
        );
        config.trace = Some(options);
        config.trace_filter = cli.trace_workload.clone();
        config.journal_dir = Some(PathBuf::from(dir));
    }
    if cli.no_trace_store && (cli.load_traces.is_some() || cli.save_traces.is_some()) {
        eprintln!("--no-trace-store cannot be combined with --load-traces/--save-traces");
        return ExitCode::FAILURE;
    }
    let store = Arc::new(if cli.no_trace_store {
        TraceStore::disabled(cli.scale)
    } else {
        TraceStore::new(cli.scale)
    });
    if let Some(dir) = &cli.load_traces {
        // Loaded traces are trusted to match --scale: the file format
        // carries the reference stream, not the scale it was captured at.
        for w in workloads::suite() {
            let path = dir.join(TraceStore::trace_file_name(w.name()));
            if !path.exists() {
                obs_warn!(
                    "{}: no trace file; {} will be recorded live",
                    path.display(),
                    w.name()
                );
                continue;
            }
            match RecordedTrace::load(&path) {
                Ok(trace) => {
                    obs_info!("loaded {} ({} refs)", path.display(), trace.len());
                    store.insert(w.name(), Arc::new(trace));
                }
                Err(e) => {
                    eprintln!("figures: cannot load trace: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(dir) = &cli.save_traces {
        for w in workloads::suite() {
            if store.get_or_record(w.as_ref()).is_none() {
                obs_warn!(
                    "{} was not recorded (over budget); nothing to save",
                    w.name()
                );
            }
        }
        match store.save_all(dir) {
            Ok(files) => obs_info!("saved {} trace file(s) to {}", files.len(), dir.display()),
            Err(e) => {
                eprintln!("figures: cannot save traces: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    config.trace_store = Some(store);
    // Test hook for the kill-and-resume integration tests: stretch every
    // attempt so a SIGKILL can land mid-grid deterministically.
    if let Ok(ms) = std::env::var("CWP_JOB_DELAY_MS") {
        match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => config.job_delay = Some(Duration::from_millis(ms)),
            _ => obs_warn!("ignoring unparsable CWP_JOB_DELAY_MS={ms}"),
        }
    }

    obs_info!(
        "running {} experiment(s) on {} worker(s) (scale {})",
        selected.len(),
        config.workers,
        cli.scale
    );
    let jobs: Vec<Job> = selected.iter().map(Job::from_experiment).collect();
    let summary = match Runner::new(config).run(jobs) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("figures: supervision failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Print buffered tables in submission (paper) order, exactly as the
    // unsupervised sequential loop used to.
    for result in &summary.results {
        for table in &result.tables {
            if cli.csv {
                println!("# {}", table.title);
                println!("{}", table.csv);
            } else {
                println!("{}", table.markdown);
            }
        }
        if result.outcome != JobOutcome::Ok && result.outcome != JobOutcome::Skipped {
            obs_warn!(
                "{}: {} after {} attempt(s): {}",
                result.id,
                result.outcome.tag(),
                result.attempts,
                result.error.as_deref().unwrap_or("no detail")
            );
        }
    }

    obs_info!("jobs: {}", summary.describe());
    obs_info!("done: {} simulations", summary.simulations);
    if summary.failures() > 0 {
        eprintln!(
            "figures: {} job(s) without usable results ({})",
            summary.failures(),
            summary.describe()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
