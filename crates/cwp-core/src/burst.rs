//! Burstiness measurement: inter-event gap statistics.
//!
//! Section 3 argues burstiness matters for write-buffer sizing, and
//! Section 5.2 leaves victim burstiness explicitly unstudied: "Since
//! misses are known to be bursty, dirty victims are likely to be bursty as
//! well." The [`GapHistogram`] quantifies both: feed it event times (in
//! instructions) and read back gap percentiles and burst-run lengths.

/// Streaming inter-event gap statistics.
///
/// # Examples
///
/// ```
/// use cwp_core::burst::GapHistogram;
///
/// let mut h = GapHistogram::new();
/// for t in [10u64, 11, 12, 40, 41, 90] {
///     h.event(t);
/// }
/// assert_eq!(h.events(), 6);
/// assert_eq!(h.max_run(), 3, "three back-to-back events at 10..=12");
/// ```
#[derive(Debug, Clone, Default)]
pub struct GapHistogram {
    last: Option<u64>,
    gaps: Vec<u64>,
    current_run: u64,
    max_run: u64,
}

impl GapHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event at time `t` (non-decreasing).
    pub fn event(&mut self, t: u64) {
        if let Some(last) = self.last {
            let gap = t.saturating_sub(last);
            self.gaps.push(gap);
            if gap <= 1 {
                self.current_run += 1;
            } else {
                self.current_run = 1;
            }
        } else {
            self.current_run = 1;
        }
        self.max_run = self.max_run.max(self.current_run);
        self.last = Some(t);
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.gaps.len() as u64 + u64::from(self.last.is_some())
    }

    /// Mean inter-event gap, if at least two events were seen.
    pub fn mean_gap(&self) -> Option<f64> {
        (!self.gaps.is_empty())
            .then(|| self.gaps.iter().sum::<u64>() as f64 / self.gaps.len() as f64)
    }

    /// The `q`-quantile gap (0.0..=1.0), if at least two events were seen.
    pub fn quantile_gap(&self, q: f64) -> Option<u64> {
        if self.gaps.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0..=1");
        let mut sorted = self.gaps.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// Fraction of gaps no larger than `bound` — how often events arrive
    /// in bursts tighter than `bound` instructions.
    pub fn fraction_within(&self, bound: u64) -> Option<f64> {
        (!self.gaps.is_empty()).then(|| {
            self.gaps.iter().filter(|&&g| g <= bound).count() as f64 / self.gaps.len() as f64
        })
    }

    /// Longest run of back-to-back events (gap <= 1).
    pub fn max_run(&self) -> u64 {
        self.max_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_and_runs() {
        let mut h = GapHistogram::new();
        for t in [0u64, 1, 2, 3, 50, 51, 200] {
            h.event(t);
        }
        assert_eq!(h.events(), 7);
        assert_eq!(h.max_run(), 4);
        assert_eq!(h.quantile_gap(0.0), Some(1));
        assert_eq!(h.quantile_gap(1.0), Some(149));
        let within = h.fraction_within(1).unwrap();
        assert!((within - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_event_cases() {
        let mut h = GapHistogram::new();
        assert_eq!(h.events(), 0);
        assert_eq!(h.mean_gap(), None);
        assert_eq!(h.quantile_gap(0.5), None);
        assert_eq!(h.fraction_within(10), None);
        h.event(42);
        assert_eq!(h.events(), 1);
        assert_eq!(h.mean_gap(), None);
        assert_eq!(h.max_run(), 1);
    }

    #[test]
    fn mean_gap_is_total_span_over_intervals() {
        let mut h = GapHistogram::new();
        h.event(0);
        h.event(10);
        h.event(30);
        assert_eq!(h.mean_gap(), Some(15.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let mut h = GapHistogram::new();
        h.event(0);
        h.event(1);
        let _ = h.quantile_gap(1.5);
    }
}
