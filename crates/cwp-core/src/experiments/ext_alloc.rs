//! Extension: how much of write-validate's benefit could allocation
//! instructions capture?
//!
//! The paper's abstract claims "the combination of no-fetch-on-write and
//! write-allocate can provide better performance than cache line
//! allocation instructions", because allocation instructions apply only
//! where "the entire cache line must be known to be written at compile
//! time". This experiment measures the *oracle* bound: the fraction of
//! write-missed lines that are in fact fully written before being read or
//! evicted. Even a perfect compiler could convert only those misses into
//! allocations; write-validate converts them all.

use std::collections::HashMap;

use cwp_trace::{AccessKind, MemRef, TraceSink};

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

const LINE: u64 = 16;
const SIZE: u64 = 8 * 1024;
const SETS: u64 = SIZE / LINE;

/// Tracks, for lines allocated by a write miss in a direct-mapped
/// 8KB/16B cache, whether the whole line is written before any read of
/// its unwritten part or its eviction.
#[derive(Default)]
struct AllocOracle {
    /// tag per set, plus the written-byte mask for write-missed lines.
    sets: HashMap<u64, (u64, Option<u64>)>,
    write_misses: u64,
    fully_written: u64,
}

impl AllocOracle {
    fn touch(&mut self, addr: u64, len: u64, is_write: bool) {
        let line = addr / LINE;
        let set = line % SETS;
        let tag = line / SETS;
        let offset = addr % LINE;
        let span = (((1u128 << len) - 1) as u64) << offset;
        let full = (1u64 << LINE) - 1;

        if let Some((resident, written)) = self.sets.get_mut(&set) {
            if *resident == tag {
                if is_write {
                    if let Some(mask) = written {
                        *mask |= span;
                        if *mask == full {
                            // Whole line written before a foreign read or
                            // eviction: an oracle could have allocated it.
                            self.fully_written += 1;
                            *written = None;
                        }
                    }
                } else if written.is_some_and(|mask| mask & span != span) {
                    // Read touched an unwritten byte: an allocation
                    // instruction here would have returned garbage.
                    *written = None;
                }
                return;
            }
        }
        // Miss: the previous resident (if still tracked) is evicted before
        // completing its line, so it simply never counts as allocatable.
        if is_write {
            self.write_misses += 1;
            self.sets.insert(set, (tag, Some(span)));
        } else {
            self.sets.insert(set, (tag, None));
        }
    }
}

impl TraceSink for AllocOracle {
    fn record(&mut self, r: MemRef) {
        // Split at line boundaries, as the cache does.
        let mut pos = 0u64;
        let len = u64::from(r.size);
        while pos < len {
            let a = r.addr + pos;
            let room = LINE - (a % LINE);
            let take = room.min(len - pos);
            self.touch(a, take, r.kind == AccessKind::Write);
            pos += take;
        }
    }
}

/// Measures the oracle allocatable fraction of write misses per workload.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "ext_alloc",
        "Extension: oracle bound for cache-line allocation instructions (8KB, 16B lines)",
        "program",
    );
    t.columns([
        "write misses",
        "fully written before read/evict",
        "oracle allocatable %",
        "write-validate coverage %",
    ]);
    let scale = lab.scale();
    for name in WORKLOAD_NAMES {
        let mut oracle = AllocOracle::default();
        lab.workload(name).run(scale, &mut oracle);
        let pct = if oracle.write_misses > 0 {
            100.0 * oracle.fully_written as f64 / oracle.write_misses as f64
        } else {
            0.0
        };
        t.row(
            name,
            [
                Cell::Int(oracle.write_misses),
                Cell::Int(oracle.fully_written),
                Cell::Num(pct),
                Cell::Num(100.0),
            ],
        );
    }
    t.note(
        "The oracle knows the future; a compiler proves less (it must see the whole-line \
         write statically, across passes and context switches). Write-validate needs no \
         proof: it covers every write miss, including partially written lines (Section 4).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_never_exceeds_write_validate() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in WORKLOAD_NAMES {
            let oracle = t.value(name, "oracle allocatable %").unwrap();
            assert!((0.0..=100.0).contains(&oracle), "{name}: {oracle:.1}%");
        }
    }

    #[test]
    fn some_write_misses_are_not_allocatable() {
        // If every write miss were a provable whole-line write, allocation
        // instructions would equal write-validate; the paper's point is
        // they do not.
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let mut below = 0;
        for name in WORKLOAD_NAMES {
            if t.value(name, "oracle allocatable %").unwrap() < 95.0 {
                below += 1;
            }
        }
        assert!(
            below >= 3,
            "expected unallocatable write misses on most workloads"
        );
    }

    #[test]
    fn unit_stride_whole_line_writers_are_mostly_allocatable() {
        // liver's result vectors are written end to end: most of its
        // write-missed lines do get fully written.
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let liver = t.value("liver", "oracle allocatable %").unwrap();
        assert!(
            liver > 40.0,
            "liver should be highly allocatable, got {liver:.1}%"
        );
    }
}
