//! Extension: does the write-miss policy story survive associativity?
//!
//! The paper studies direct-mapped caches ("a large and increasing number
//! of first-level data caches are direct-mapped"). This extension re-runs
//! the Figure 14 comparison at 1/2/4 ways to check the conclusions are
//! not artifacts of conflict misses.

use cwp_cache::{metrics, CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

fn config(ways: u32, miss: WriteMissPolicy) -> CacheConfig {
    CacheConfig::builder()
        .size_bytes(8 * 1024)
        .line_bytes(16)
        .associativity(ways)
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(miss)
        .build()
        .expect("geometry is valid")
}

/// Sweeps associativity at 8KB/16B, reporting each policy's total-miss
/// reduction (average of the six workloads) plus the baseline miss rate.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "ext_assoc",
        "Extension: total-miss reduction vs associativity (8KB, 16B lines, average of 6)",
        "ways",
    );
    t.columns([
        "baseline miss rate %",
        "write-validate reduction %",
        "write-around reduction %",
        "write-invalidate reduction %",
    ]);
    for ways in [1u32, 2, 4] {
        let mut miss_rate = 0.0;
        // Workloads whose baseline had no misses contribute nothing to the
        // average (rather than a spurious 0%); an all-empty column renders
        // as n/a instead of a made-up number.
        let mut reductions = [(0.0f64, 0u32); 3];
        for name in WORKLOAD_NAMES {
            let base = lab.outcome(name, &config(ways, WriteMissPolicy::FetchOnWrite));
            miss_rate += base.stats.miss_rate() * 100.0;
            for (i, policy) in [
                WriteMissPolicy::WriteValidate,
                WriteMissPolicy::WriteAround,
                WriteMissPolicy::WriteInvalidate,
            ]
            .into_iter()
            .enumerate()
            {
                let out = lab.outcome(name, &config(ways, policy));
                if let Some(r) = metrics::total_miss_reduction(&base.stats, &out.stats) {
                    reductions[i].0 += r * 100.0;
                    reductions[i].1 += 1;
                }
            }
        }
        let n = WORKLOAD_NAMES.len() as f64;
        let avg = |&(sum, count): &(f64, u32)| (count > 0).then(|| sum / f64::from(count)).into();
        t.row(
            format!("{ways}-way"),
            [
                Cell::Num(miss_rate / n),
                avg(&reductions[0]),
                avg(&reductions[1]),
                avg(&reductions[2]),
            ],
        );
    }
    t.note(
        "The policy ranking (write-validate > write-around > write-invalidate > \
         fetch-on-write) should hold at every associativity; associativity removes \
         conflict misses from the baseline but write misses remain.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ranking_survives_associativity() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for ways in ["1-way", "2-way", "4-way"] {
            let wv = t.value(ways, "write-validate reduction %").unwrap();
            let wa = t.value(ways, "write-around reduction %").unwrap();
            let wi = t.value(ways, "write-invalidate reduction %").unwrap();
            assert!(
                wv >= wa && wa >= wi && wi > 0.0,
                "{ways}: ranking broke: wv {wv:.1} / wa {wa:.1} / wi {wi:.1}"
            );
        }
    }

    #[test]
    fn associativity_lowers_the_baseline_miss_rate() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let dm = t.value("1-way", "baseline miss rate %").unwrap();
        let four = t.value("4-way", "baseline miss rate %").unwrap();
        assert!(
            four < dm,
            "4-way ({four:.2}%) should miss less than direct-mapped ({dm:.2}%)"
        );
    }
}
