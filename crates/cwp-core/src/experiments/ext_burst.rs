//! Extension: write and dirty-victim burstiness.
//!
//! Section 5.2 closes with an open question this experiment answers:
//! "This section did not study the burstiness of dirty victims... Since
//! misses are known to be bursty, dirty victims are likely to be bursty as
//! well. This would imply that the write back port bandwidth would need to
//! be made wider... and/or that buffering to hold more than one dirty
//! victim could be useful."

use cwp_cache::{Cache, CacheConfig, MemoryCache};
use cwp_trace::{AccessKind, MemRef, TraceSink};

use crate::burst::GapHistogram;
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// A sink that simulates a write-back cache while timing victim events.
struct VictimTimer {
    cache: MemoryCache,
    icount: u64,
    victims_seen: u64,
    stores: GapHistogram,
    victims: GapHistogram,
}

impl VictimTimer {
    fn new() -> Self {
        VictimTimer {
            cache: Cache::with_memory(CacheConfig::default()),
            icount: 0,
            victims_seen: 0,
            stores: GapHistogram::new(),
            victims: GapHistogram::new(),
        }
    }
}

impl TraceSink for VictimTimer {
    fn record(&mut self, r: MemRef) {
        self.icount += u64::from(r.before_insts);
        let len = r.size as usize;
        let buf = [0u8; 8];
        match r.kind {
            AccessKind::Read => {
                let mut out = buf;
                self.cache.read(r.addr, &mut out[..len]);
            }
            AccessKind::Write => {
                self.stores.event(self.icount);
                self.cache.write(r.addr, &buf[..len]);
            }
        }
        let dirty_victims = self.cache.stats().victims.dirty;
        while self.victims_seen < dirty_victims {
            self.victims_seen += 1;
            self.victims.event(self.icount);
        }
    }
}

/// Measures store and dirty-victim burstiness per workload on the default
/// 8KB write-back cache.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "ext_burst",
        "Extension: store and dirty-victim burstiness (8KB write-back, 16B lines)",
        "program",
    );
    t.columns([
        "mean store gap (instr)",
        "% stores within 2 instr",
        "max store run",
        "mean victim gap (instr)",
        "median victim gap",
        "% victims within 8 instr",
    ]);
    let scale = lab.scale();
    for name in WORKLOAD_NAMES {
        let mut timer = VictimTimer::new();
        lab.workload(name).run(scale, &mut timer);
        t.row(
            name,
            [
                Cell::from(timer.stores.mean_gap()),
                Cell::from(timer.stores.fraction_within(2).map(|f| f * 100.0)),
                Cell::Int(timer.stores.max_run()),
                Cell::from(timer.victims.mean_gap()),
                Cell::from(timer.victims.quantile_gap(0.5).map(|g| g as f64)),
                Cell::from(timer.victims.fraction_within(8).map(|f| f * 100.0)),
            ],
        );
    }
    t.note(
        "A median victim gap well below the mean confirms the paper's Section 5.2 \
         conjecture that dirty victims cluster, so the write-back port needs headroom \
         beyond the average bandwidth. Streaming linpack is the exception: its victims \
         are metronomic (median ~= mean).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_are_bursty_relative_to_their_mean() {
        // An evenly spaced victim stream has median ~= mean; a median
        // well below the mean means victims cluster (the paper's Section
        // 5.2 conjecture). Streaming codes like linpack are the expected
        // exception: their victims are metronomic.
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let mut bursty = 0;
        for name in WORKLOAD_NAMES {
            let mean = t.value(name, "mean victim gap (instr)");
            let median = t.value(name, "median victim gap");
            if let (Some(mean), Some(median)) = (mean, median) {
                if median <= mean * 0.75 {
                    bursty += 1;
                }
            }
        }
        assert!(
            bursty >= 3,
            "expected clustered victims on most workloads, got {bursty}/6"
        );
    }

    #[test]
    fn stores_arrive_much_faster_than_victims() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in WORKLOAD_NAMES {
            let store_gap = t.value(name, "mean store gap (instr)").unwrap();
            if let Some(victim_gap) = t.value(name, "mean victim gap (instr)") {
                assert!(
                    victim_gap > store_gap,
                    "{name}: victims ({victim_gap:.1}) should be rarer than stores ({store_gap:.1})"
                );
            }
        }
    }
}
