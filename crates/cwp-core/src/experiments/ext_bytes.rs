//! Extension: back-side traffic measured in bytes, and the sub-block
//! dirty-bit question.
//!
//! Section 5.2 asks: "Should a write-back write out an entire cache line,
//! or just write out subblocks with dirty bytes? (i.e., are subblock dirty
//! bits useful?)" and concludes they pay off for lines of 32B and up.
//! This experiment measures the actual byte traffic both ways.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{b, LINES};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{require_table, Cell, CellError, Table};

fn config(line: u32, partial: bool) -> CacheConfig {
    CacheConfig::builder()
        .size_bytes(8 * 1024)
        .line_bytes(line)
        .write_hit(WriteHitPolicy::WriteBack)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .partial_writeback(partial)
        .build()
        .expect("geometry is valid")
}

/// Sweeps line size at 8KB, reporting bytes per instruction for fetches,
/// whole-line write-backs, and sub-block write-backs, averaged over the
/// six workloads.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "ext_bytes",
        "Extension: back-side bytes per 1000 instructions vs line size (8KB write-back)",
        "line size",
    );
    t.columns([
        "fetch bytes",
        "write-back bytes (whole line)",
        "write-back bytes (subblock)",
        "subblock savings %",
    ]);
    for line in LINES {
        let mut fetch = 0.0;
        let mut whole = 0.0;
        let mut partial = 0.0;
        for name in WORKLOAD_NAMES {
            let w = lab.outcome(name, &config(line, false));
            let p = lab.outcome(name, &config(line, true));
            let insts = w.summary.instructions as f64 / 1000.0;
            fetch += w.traffic_total.fetch.bytes as f64 / insts;
            whole += w.traffic_total.write_back.bytes as f64 / insts;
            partial += p.traffic_total.write_back.bytes as f64 / insts;
        }
        let n = WORKLOAD_NAMES.len() as f64;
        let savings = 100.0 * (1.0 - partial / whole);
        t.row(
            b(line),
            [
                Cell::Num(fetch / n),
                Cell::Num(whole / n),
                Cell::Num(partial / n),
                Cell::Num(savings),
            ],
        );
    }
    t.note(
        "Paper conclusion (Section 6): with 4B lines every dirty byte moves either way; by \
         64B lines under half the bytes on a dirty victim are dirty, so 'it may be \
         worthwhile to add subblock dirty bits to speedup write-backs' for lines >= 32B.",
    );
    t.note(
        "Average write-back bandwidth relative to fetch bandwidth is also visible here: \
         the paper estimates roughly half (Section 5.2).",
    );
    vec![t]
}

/// Structural sanity check: every line-size row exists under all four
/// traffic columns.
pub(crate) fn check(tables: &[Table]) -> Result<(), CellError> {
    let t = require_table(tables, 0, "ext_bytes")?;
    for line in LINES {
        for col in [
            "fetch bytes",
            "write-back bytes (whole line)",
            "write-back bytes (subblock)",
            "subblock savings %",
        ] {
            t.require_cell(&b(line), col)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subblock_savings_grow_with_line_size() -> Result<(), CellError> {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at4 = t.require_value("4B", "subblock savings %")?;
        let at64 = t.require_value("64B", "subblock savings %")?;
        assert!(at4 < 2.0, "4B lines have nothing to save, got {at4:.1}%");
        assert!(
            at64 > 25.0,
            "64B lines should save substantially, got {at64:.1}%"
        );
        assert!(at64 > at4);
        Ok(())
    }

    #[test]
    fn subblock_writebacks_never_move_more_bytes() -> Result<(), CellError> {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for line in ["4B", "8B", "16B", "32B", "64B"] {
            let whole = t.require_value(line, "write-back bytes (whole line)")?;
            let partial = t.require_value(line, "write-back bytes (subblock)")?;
            assert!(partial <= whole + 1e-9, "{line}: {partial} > {whole}");
        }
        Ok(())
    }

    #[test]
    fn write_back_bandwidth_is_a_fraction_of_fetch_bandwidth() -> Result<(), CellError> {
        // Paper: "an average write bandwidth corresponding to half of the
        // read bandwidth is sufficient".
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let fetch = t.require_value("16B", "fetch bytes")?;
        let wb = t.require_value("16B", "write-back bytes (whole line)")?;
        let ratio = wb / fetch;
        assert!(
            (0.15..=1.0).contains(&ratio),
            "write-back/fetch byte ratio {ratio:.2}"
        );
        Ok(())
    }

    #[test]
    fn structural_check_passes_on_real_output() {
        let mut lab = crate::experiments::testlab::lock();
        check(&run(&mut lab)).unwrap();
        assert!(check(&[]).is_err());
    }
}
