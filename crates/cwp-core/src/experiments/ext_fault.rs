//! Extension: fault injection and error recovery.
//!
//! `ext_overhead` prices Section 3's protection schemes in SRAM bits; this
//! experiment buys them and measures what they deliver. Deterministic
//! seeded single-bit faults are injected into the data array while each
//! workload runs, and the cache resolves them exactly as the paper
//! prescribes: ECC corrects in place, parity on a clean line refetches,
//! parity on a dirty line is an unrecoverable loss, and no protection at
//! all corrupts silently. Write-back's dirty lines are what turn a
//! detectable fault into a loss, so its loss rate tracks the dirty-victim
//! fractions of Figures 20-25, while write-through + parity loses nothing.

use cwp_cache::fault::FaultStats;
use cwp_cache::overhead::{bit_budget, Protection};
use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{row_with_average, workload_columns};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// The sweep's rows: write-hit policy × protection × fault rate.
const ROWS: [(&str, WriteHitPolicy, Protection, u32); 6] = [
    (
        "WT + parity @ 1k ppm",
        WriteHitPolicy::WriteThrough,
        Protection::ByteParity,
        1_000,
    ),
    (
        "WT + parity @ 10k ppm",
        WriteHitPolicy::WriteThrough,
        Protection::ByteParity,
        10_000,
    ),
    (
        "WB + parity @ 1k ppm",
        WriteHitPolicy::WriteBack,
        Protection::ByteParity,
        1_000,
    ),
    (
        "WB + parity @ 10k ppm",
        WriteHitPolicy::WriteBack,
        Protection::ByteParity,
        10_000,
    ),
    (
        "WB + ECC @ 10k ppm",
        WriteHitPolicy::WriteBack,
        Protection::EccPerWord,
        10_000,
    ),
    (
        "WB + none @ 10k ppm",
        WriteHitPolicy::WriteBack,
        Protection::None,
        10_000,
    ),
];

/// The swept configuration: the paper's 8KB/16B center point with fault
/// injection attached. The seed is per-row so reruns are bit-identical.
fn config_for(row: usize) -> CacheConfig {
    let (_, hit, protection, rate) = ROWS[row];
    CacheConfig::builder()
        .size_bytes(8 * 1024)
        .line_bytes(16)
        .write_hit(hit)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .protection(protection)
        .fault_rate_ppm(rate)
        .fault_seed(0xfa17_0000 + row as u64)
        .build()
        .expect("valid configuration")
}

/// Runs the (policy × protection × rate) sweep over the six workloads.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut loss = Table::new(
        "ext_fault/loss",
        "Extension: unrecoverable faults (lost or silently corrupted, % of injected; \
         8KB, 16B lines, fetch-on-write)",
        "configuration",
    );
    loss.columns(workload_columns());
    let mut recovery = Table::new(
        "ext_fault/recovery",
        "Extension: faults survived without loss (% of injected)",
        "configuration",
    );
    recovery.columns(workload_columns());
    let mut reliability = Table::new(
        "ext_fault/reliability",
        "Extension: reliability per SRAM bit (all six workloads pooled)",
        "configuration",
    );
    reliability.columns([
        "injected",
        "survived %",
        "SRAM overhead %",
        "survived % per overhead %",
    ]);

    for (row, &(label, _hit, protection, _rate)) in ROWS.iter().enumerate() {
        let config = config_for(row);
        let mut loss_cells = Vec::new();
        let mut recovery_cells = Vec::new();
        let mut pooled = FaultStats::default();
        for name in WORKLOAD_NAMES {
            let faults = lab.outcome(name, &config).stats.faults;
            pooled.absorb(faults);
            let unrecoverable = faults.data_loss_events + faults.silent_corruptions;
            loss_cells.push(
                (faults.injected > 0)
                    .then(|| 100.0 * unrecoverable as f64 / faults.injected as f64),
            );
            recovery_cells.push((faults.injected > 0).then(|| {
                100.0 * (faults.injected - unrecoverable) as f64 / faults.injected as f64
            }));
        }
        loss.row(label, row_with_average(&loss_cells));
        recovery.row(label, row_with_average(&recovery_cells));

        let budget = bit_budget(&config, protection);
        let overhead_pct = budget.overhead_fraction() * 100.0;
        let pooled_unrecoverable = pooled.data_loss_events + pooled.silent_corruptions;
        let survived_pct = if pooled.injected > 0 {
            100.0 * (pooled.injected - pooled_unrecoverable) as f64 / pooled.injected as f64
        } else {
            0.0
        };
        reliability.row(
            label,
            [
                Cell::Int(pooled.injected),
                Cell::Num(survived_pct),
                Cell::Num(overhead_pct),
                Cell::Num(survived_pct / overhead_pct),
            ],
        );
    }

    loss.note(
        "Write-through + parity loses nothing at any rate: every line is clean, so every \
         detected fault is recovered by refetch. Write-back + parity loses the dirty \
         fraction of its faulted lines (compare the dirty-victim percentages of Figures \
         20-25); with no protection every fault is a silent corruption (Section 3).",
    );
    reliability.note(
        "Survived % per percentage point of SRAM overhead. Parity's cheaper check bits \
         make write-through the better reliability buy — the paper's \"better \
         error-tolerance at a smaller cost\" — while write-back must pay for ECC to \
         reach the same survival rate.",
    );
    vec![loss, recovery, reliability]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wt_parity_never_loses_at_any_swept_rate() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        for row in ["WT + parity @ 1k ppm", "WT + parity @ 10k ppm"] {
            let avg = ts[0].value(row, "average").unwrap();
            assert_eq!(avg, 0.0, "{row}: write-through parity must be lossless");
            assert_eq!(ts[1].value(row, "average").unwrap(), 100.0);
        }
    }

    #[test]
    fn wb_ecc_recovers_every_injected_fault() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        assert_eq!(ts[0].value("WB + ECC @ 10k ppm", "average").unwrap(), 0.0);
        assert_eq!(ts[1].value("WB + ECC @ 10k ppm", "average").unwrap(), 100.0);
        let injected = ts[2].value("WB + ECC @ 10k ppm", "injected").unwrap();
        assert!(injected > 0.0, "the sweep must actually inject faults");
    }

    #[test]
    fn wb_parity_loss_tracks_the_dirty_line_fraction() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let avg = ts[0].value("WB + parity @ 10k ppm", "average").unwrap();
        assert!(
            (15.0..=90.0).contains(&avg),
            "paper: ~half of write-back lines are dirty; loss was {avg:.1}%"
        );
    }

    #[test]
    fn unprotected_faults_are_all_unrecoverable() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        assert_eq!(
            ts[0].value("WB + none @ 10k ppm", "average").unwrap(),
            100.0
        );
        assert_eq!(ts[1].value("WB + none @ 10k ppm", "average").unwrap(), 0.0);
    }

    #[test]
    fn wt_parity_is_the_best_reliability_buy() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let wt = ts[2]
            .value("WT + parity @ 10k ppm", "survived % per overhead %")
            .unwrap();
        let wb = ts[2]
            .value("WB + ECC @ 10k ppm", "survived % per overhead %")
            .unwrap();
        assert!(
            wt > wb,
            "parity write-through ({wt:.2}) must beat ECC write-back ({wb:.2}) per bit"
        );
    }

    #[test]
    fn fault_tables_are_deterministic_across_labs() {
        // Two fresh labs (no shared memoization) must produce identical
        // tables: the injector is seeded per configuration and the access
        // streams are deterministic.
        let mut a = Lab::new(cwp_trace::Scale::Test);
        let mut b = Lab::new(cwp_trace::Scale::Test);
        assert_eq!(run(&mut a), run(&mut b));
    }
}
