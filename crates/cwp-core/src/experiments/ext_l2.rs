//! Extension: two-level hierarchies.
//!
//! The paper assumes "two or more levels of caching" but reports only
//! first-level effects. This extension stacks an 8KB write-through L1
//! (each write-miss policy) over a 64KB write-back L2 and measures what
//! each policy does to the L2's input traffic and the memory-side traffic
//! below it.

use cwp_cache::{Cache, CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_mem::{MainMemory, TrafficRecorder};
use cwp_trace::{AccessKind, MemRef, TraceSink};

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

type TwoLevel = Cache<Cache<TrafficRecorder<MainMemory>>>;

fn build(miss: WriteMissPolicy) -> TwoLevel {
    let l2_cfg = CacheConfig::builder()
        .size_bytes(64 * 1024)
        .line_bytes(32)
        .associativity(2)
        .write_hit(WriteHitPolicy::WriteBack)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .expect("valid L2");
    let l1_cfg = CacheConfig::builder()
        .size_bytes(8 * 1024)
        .line_bytes(16)
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(miss)
        .build()
        .expect("valid L1");
    Cache::new(
        l1_cfg,
        Cache::new(l2_cfg, TrafficRecorder::new(MainMemory::new())),
    )
}

struct Driver {
    stack: TwoLevel,
}

impl TraceSink for Driver {
    fn record(&mut self, r: MemRef) {
        let len = r.size as usize;
        let buf = [0u8; 8];
        match r.kind {
            AccessKind::Read => {
                let mut out = buf;
                self.stack.read(r.addr, &mut out[..len]);
            }
            AccessKind::Write => self.stack.write(r.addr, &buf[..len]),
        }
    }
}

/// Runs each L1 write-miss policy over the same L2 and reports, averaged
/// over the six workloads per 1000 instructions: L1->L2 transactions, L2
/// misses, and memory-side transactions.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "ext_l2",
        "Extension: two-level effects of the L1 write-miss policy (per 1000 instructions)",
        "L1 policy",
    );
    t.columns(["L1->L2 accesses", "L2 misses", "memory transactions"]);
    let scale = lab.scale();
    for policy in [
        WriteMissPolicy::FetchOnWrite,
        WriteMissPolicy::WriteValidate,
        WriteMissPolicy::WriteAround,
        WriteMissPolicy::WriteInvalidate,
    ] {
        let mut l2_accesses = 0.0;
        let mut l2_misses = 0.0;
        let mut mem_txns = 0.0;
        for name in WORKLOAD_NAMES {
            let mut driver = Driver {
                stack: build(policy),
            };
            let summary = lab.workload(name).run(scale, &mut driver);
            let mut stack = driver.stack;
            stack.flush();
            stack.next_level_mut().flush();
            let k = summary.instructions as f64 / 1000.0;
            let l2 = stack.next_level();
            l2_accesses += l2.stats().accesses() as f64 / k;
            l2_misses += l2.stats().total_misses() as f64 / k;
            mem_txns += l2.next_level().traffic().total_transactions() as f64 / k;
        }
        let n = WORKLOAD_NAMES.len() as f64;
        t.row(
            policy.to_string(),
            [
                Cell::Num(l2_accesses / n),
                Cell::Num(l2_misses / n),
                Cell::Num(mem_txns / n),
            ],
        );
    }
    t.note(
        "A no-fetch L1 policy removes L1 fetch requests from the L2's input stream; \
         write-validate additionally keeps write data out of the L2's read path. The \
         policy choice at L1 is visible all the way to memory.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fetch_policies_unload_the_l2() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let fow = t.value("fetch-on-write", "L1->L2 accesses").unwrap();
        let wv = t.value("write-validate", "L1->L2 accesses").unwrap();
        assert!(
            wv < fow,
            "write-validate should send less to the L2: {wv:.1} vs {fow:.1} per 1000 instr"
        );
    }

    #[test]
    fn memory_traffic_reflects_the_l1_policy() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for policy in [
            "fetch-on-write",
            "write-validate",
            "write-around",
            "write-invalidate",
        ] {
            let mem = t.value(policy, "memory transactions").unwrap();
            let l2m = t.value(policy, "L2 misses").unwrap();
            assert!(mem > 0.0 && l2m > 0.0, "{policy}: empty traffic");
            assert!(mem >= l2m * 0.5, "{policy}: memory txns implausibly low");
        }
    }
}
