//! Extension: SRAM bit budgets and error-protection overheads.
//!
//! Quantifies Section 3's fault-tolerance argument: a write-through cache
//! needs only byte parity (its data is never unique), a write-back cache
//! needs word ECC, and write-validate adds sub-block valid bits. The
//! paper's conclusion — "write-through caches with parity have better
//! error-tolerance at a smaller cost than write-back caches with ECC" —
//! becomes a bit count.

use cwp_cache::overhead::{bit_budget, Protection};
use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::lab::Lab;
use crate::report::{Cell, Table};

/// Tabulates bit budgets for the interesting 8KB/16B configurations.
pub fn run(_lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "ext_overhead",
        "Extension: SRAM bit budget by configuration (8KB, 16B lines, 32-bit addresses)",
        "configuration",
    );
    t.columns([
        "tag bits",
        "valid bits",
        "dirty bits",
        "protection bits",
        "overhead %",
        "correctable errors/word",
    ]);

    let rows: [(&str, WriteHitPolicy, WriteMissPolicy, bool); 4] = [
        (
            "WT + fetch-on-write + parity",
            WriteHitPolicy::WriteThrough,
            WriteMissPolicy::FetchOnWrite,
            false,
        ),
        (
            "WT + write-validate + parity",
            WriteHitPolicy::WriteThrough,
            WriteMissPolicy::WriteValidate,
            false,
        ),
        (
            "WB + fetch-on-write + ECC",
            WriteHitPolicy::WriteBack,
            WriteMissPolicy::FetchOnWrite,
            false,
        ),
        (
            "WB + FOW + ECC + subblock dirty",
            WriteHitPolicy::WriteBack,
            WriteMissPolicy::FetchOnWrite,
            true,
        ),
    ];
    for (label, hit, miss, partial) in rows {
        let config = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(16)
            .write_hit(hit)
            .write_miss(miss)
            .partial_writeback(partial)
            .build()
            .expect("valid configuration");
        let protection = Protection::required_for(hit);
        let budget = bit_budget(&config, protection);
        let refetchable = hit == WriteHitPolicy::WriteThrough;
        t.row(
            label,
            [
                Cell::Int(budget.tag_bits),
                Cell::Int(budget.valid_bits),
                Cell::Int(budget.dirty_bits),
                Cell::Int(budget.protection_bits),
                Cell::Num(budget.overhead_fraction() * 100.0),
                Cell::Int(u64::from(
                    protection.correctable_errors_per_word(refetchable),
                )),
            ],
        );
    }
    t.note(
        "Byte parity costs two-thirds of word ECC yet corrects four single-bit errors per \
         word (by refetching) where ECC corrects one — and only write-through caches can \
         refetch, since they hold no unique dirty data (Section 3).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_write_through_beats_ecc_write_back_on_both_axes() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let wt = "WT + fetch-on-write + parity";
        let wb = "WB + fetch-on-write + ECC";
        let wt_overhead = t.value(wt, "overhead %").unwrap();
        let wb_overhead = t.value(wb, "overhead %").unwrap();
        assert!(wt_overhead < wb_overhead);
        let wt_correct = t.value(wt, "correctable errors/word").unwrap();
        let wb_correct = t.value(wb, "correctable errors/word").unwrap();
        assert!(wt_correct > wb_correct);
    }

    #[test]
    fn write_validate_valid_bits_are_word_granular() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let plain = t
            .value("WT + fetch-on-write + parity", "valid bits")
            .unwrap();
        let wv = t
            .value("WT + write-validate + parity", "valid bits")
            .unwrap();
        assert_eq!(wv, plain * 4.0, "16B lines hold 4 words");
    }
}
