//! Figure 1: percentage of writes to already-dirty lines, 8KB caches,
//! line sizes 4B..64B.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{b, row_with_average, workload_columns, LINES};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// Runs the line-size sweep over an 8KB write-back cache.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig01",
        "Percentage of writes to already dirty lines vs line size (8KB write-back)",
        "line size",
    );
    t.columns(workload_columns());
    for line in LINES {
        let config = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(line)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .expect("sweep geometry is valid");
        let values: Vec<Option<f64>> = WORKLOAD_NAMES
            .iter()
            .map(|name| {
                lab.outcome(name, &config)
                    .stats
                    .dirty_write_fraction()
                    .map(|f| f * 100.0)
            })
            .collect();
        t.row(b(line), row_with_average(&values));
    }
    t.note(
        "Assuming whole dirty lines are written back, this is the percent write-traffic \
         reduction of write-back over write-through (Section 3).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_write_fraction_grows_with_line_size() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at4 = t.value("4B", "average").unwrap();
        let at64 = t.value("64B", "average").unwrap();
        assert!(
            at64 > at4 + 10.0,
            "longer lines capture more writes: 4B={at4:.1}%, 64B={at64:.1}%"
        );
    }

    #[test]
    fn numeric_codes_have_identical_4b_and_8b_behaviour() {
        // Paper: linpack and liver use 8B doubles, so 4B and 8B lines see
        // one write per line either way.
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in ["linpack", "liver"] {
            let at4 = t.value("4B", name).unwrap();
            let at8 = t.value("8B", name).unwrap();
            assert!(
                (at4 - at8).abs() < 8.0,
                "{name}: 4B={at4:.1}% vs 8B={at8:.1}% should be nearly identical"
            );
        }
    }
}
