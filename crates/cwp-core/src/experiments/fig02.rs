//! Figure 2: percentage of writes to already-dirty lines, 16B lines,
//! cache sizes 1KB..128KB.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{kb, row_with_average, workload_columns, SIZES};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// Runs the cache-size sweep with 16B lines.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig02",
        "Percentage of writes to already dirty lines vs cache size (16B lines, write-back)",
        "cache size",
    );
    t.columns(workload_columns());
    for size in SIZES {
        let config = CacheConfig::builder()
            .size_bytes(size)
            .line_bytes(16)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .expect("sweep geometry is valid");
        let values: Vec<Option<f64>> = WORKLOAD_NAMES
            .iter()
            .map(|name| {
                lab.outcome(name, &config)
                    .stats
                    .dirty_write_fraction()
                    .map(|f| f * 100.0)
            })
            .collect();
        t.row(kb(size), row_with_average(&values));
    }
    t.note(
        "Paper shape: grr, yacc, and met reach >=80%; linpack and liver stay low until \
         the cache exceeds their streaming working sets (Section 3).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cad_and_utility_codes_have_high_write_locality() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in ["grr", "yacc"] {
            let v = t.value("16KB", name).unwrap();
            assert!(
                v >= 70.0,
                "{name} at 16KB should show high write locality, got {v:.1}%"
            );
        }
    }

    #[test]
    fn numeric_codes_improve_only_at_large_sizes() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in ["linpack", "liver"] {
            let small = t.value("8KB", name).unwrap();
            let large = t.value("128KB", name).unwrap();
            assert!(
                large > small + 5.0,
                "{name}: expected growth from 8KB ({small:.1}%) to 128KB ({large:.1}%)"
            );
            assert!(
                small < 70.0,
                "{name} at 8KB should be poor, got {small:.1}%"
            );
        }
    }

    #[test]
    fn average_write_traffic_reduction_is_majority_at_moderate_sizes() {
        // Section 3: "On average ... the write-back cache is able to remove
        // the majority of writes."
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let avg = t.value("8KB", "average").unwrap();
        assert!(avg > 45.0, "average at 8KB was {avg:.1}%");
    }
}
