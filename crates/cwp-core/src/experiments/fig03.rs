//! Figure 3: store timing in the five-stage pipeline — measured CPI for
//! each store-timing scheme.

use cwp_pipeline::{StorePipeline, StoreTiming};

use crate::experiments::{row_with_average, workload_columns};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// Runs each workload under the three store timings of Figure 3/4 and
/// reports CPI (miss service excluded).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig03",
        "Pipeline CPI by store timing (IF RF ALU MEM WB; miss service excluded)",
        "store timing",
    );
    t.columns(workload_columns());
    let scale = lab.scale();
    for timing in StoreTiming::ALL {
        let values: Vec<Option<f64>> = WORKLOAD_NAMES
            .iter()
            .map(|name| {
                let mut pipe = StorePipeline::for_timing(timing);
                lab.workload(name).run(scale, &mut pipe);
                Some(pipe.stats().cpi())
            })
            .collect();
        t.row(timing.to_string(), row_with_average(&values));
    }
    t.note(
        "A direct-mapped write-through cache writes data during the tag probe (1 cycle per \
         store). Write-back caches probe before writing (2 cycles), interlocking loads that \
         immediately follow stores; the delayed-write register recovers most of the loss.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_order_matches_the_paper() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let wt = t.value("write-through direct-mapped", "average").unwrap();
        let probe = t.value("probe-then-write", "average").unwrap();
        let delayed = t.value("delayed-write", "average").unwrap();
        assert_eq!(wt, 1.0);
        assert!(probe > delayed, "delayed-write must beat probe-then-write");
        assert!(delayed >= wt);
    }
}
