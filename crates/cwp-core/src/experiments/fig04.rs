//! Figure 4: the delayed-write register — how often the one-cycle
//! overlapped store succeeds.

use cwp_pipeline::{StorePipeline, StoreTiming};

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// Measures per workload: fraction of single-cycle stores with the
/// delayed-write register, forwarding events, and the CPI recovered
/// relative to probe-then-write.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig04",
        "Delayed write method: one-cycle store effectiveness",
        "program",
    );
    t.columns([
        "1-cycle stores %",
        "CPI (delayed write)",
        "CPI (probe-then-write)",
        "interlock cycles saved %",
    ]);
    let scale = lab.scale();
    for name in WORKLOAD_NAMES {
        let mut delayed = StorePipeline::for_timing(StoreTiming::DelayedWrite);
        lab.workload(name).run(scale, &mut delayed);
        let mut plain = StorePipeline::for_timing(StoreTiming::ProbeThenWrite);
        lab.workload(name).run(scale, &mut plain);
        let d = delayed.stats();
        let p = plain.stats();
        let saved = if p.interlock_cycles > 0 {
            100.0 * (1.0 - d.interlock_cycles as f64 / p.interlock_cycles as f64)
        } else {
            0.0
        };
        t.row(
            name,
            [
                Cell::from(d.two_cycle_store_fraction().map(|f| (1.0 - f) * 100.0)),
                Cell::Num(d.cpi()),
                Cell::Num(p.cpi()),
                Cell::Num(saved),
            ],
        );
    }
    t.note(
        "The register writes the previous store's data during the current store's probe \
         (VAX 8800 style); only probe misses and intervening read misses break the overlap.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_stores_are_single_cycle_on_average() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let mut pct_sum = 0.0;
        let mut saved_sum = 0.0;
        for name in WORKLOAD_NAMES {
            let pct = t.value(name, "1-cycle stores %").unwrap();
            // Streaming numeric codes miss often, so the floor is loose.
            assert!(
                pct > 20.0,
                "{name}: only {pct:.1}% of stores were single-cycle"
            );
            pct_sum += pct;
            saved_sum += t.value(name, "interlock cycles saved %").unwrap();
        }
        let n = WORKLOAD_NAMES.len() as f64;
        assert!(
            pct_sum / n > 50.0,
            "average 1-cycle share {:.1}%",
            pct_sum / n
        );
        // Interlock savings are smaller than the 1-cycle share because slow
        // stores cluster in bursts where the following reference is
        // adjacent; a quarter of the probe-then-write interlocks is still a
        // solid recovery.
        assert!(
            saved_sum / n > 25.0,
            "average interlocks saved {:.1}%",
            saved_sum / n
        );
    }
}
