//! Figure 5: coalescing write buffer — percentage of writes merged and
//! stall CPI vs the retirement interval.

use cwp_buffers::{CoalescingWriteBuffer, WriteCache};
use cwp_mem::MainMemory;

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// Retirement intervals swept (cycles per write retire), as in Figure 5.
pub const INTERVALS: [u64; 13] = [0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48];

/// Buffer entries, as in the paper's 8-entry configuration.
const ENTRIES: usize = 8;
/// Write-buffer entry width: one 16B cache line.
const LINE_BYTES: u32 = 16;

/// Sweeps the retirement interval of an 8-entry coalescing write buffer
/// over the six write streams, averaging merge rate and stall CPI; also
/// reports the 6-entry write cache's merge rate for comparison (the
/// paper's dashed reference line).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig05",
        "Coalescing write buffer merges vs CPI (8 entries, 16B lines, average of 6 benchmarks)",
        "cycles per write retire",
    );
    t.columns(["% writes merged", "write-buffer-full stall CPI"]);

    for interval in INTERVALS {
        let mut merged_sum = 0.0;
        let mut cpi_sum = 0.0;
        for name in WORKLOAD_NAMES {
            let stream = lab.write_stream(name);
            let mut wb = CoalescingWriteBuffer::new(ENTRIES, LINE_BYTES, interval);
            for ev in &stream.events {
                wb.write(ev.cycle, ev.addr);
            }
            wb.flush();
            let s = wb.stats();
            merged_sum += s.merged_fraction().unwrap_or(0.0) * 100.0;
            cpi_sum += s.stall_cpi(stream.instructions);
        }
        let n = WORKLOAD_NAMES.len() as f64;
        t.row(
            interval.to_string(),
            [Cell::Num(merged_sum / n), Cell::Num(cpi_sum / n)],
        );
    }

    // Reference: a 6-entry write cache's merge rate is retirement-rate
    // independent.
    let mut wc_sum = 0.0;
    for name in WORKLOAD_NAMES {
        let stream = lab.write_stream(name);
        let mut wc = WriteCache::new(6, 8, MainMemory::new());
        for ev in &stream.events {
            let data = vec![0u8; ev.size as usize];
            cwp_mem::NextLevel::write_through(&mut wc, ev.addr, &data);
        }
        wc.flush();
        wc_sum += wc.stats().removed_fraction().unwrap_or(0.0) * 100.0;
    }
    t.note(format!(
        "% merged by a 6-entry write cache (retirement-independent reference): {:.1}%",
        wc_sum / WORKLOAD_NAMES.len() as f64
    ));
    t.note(
        "Paper shape: merging stays low (~10% at retire-every-5) unless the buffer is kept \
         nearly full, which costs multiple CPI of stalls (Section 3.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_and_stalls_both_grow_with_the_interval() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let m0 = t.value("0", "% writes merged").unwrap();
        let m48 = t.value("48", "% writes merged").unwrap();
        let c4 = t.value("4", "write-buffer-full stall CPI").unwrap();
        let c48 = t.value("48", "write-buffer-full stall CPI").unwrap();
        assert_eq!(m0, 0.0, "immediate retirement cannot merge");
        assert!(
            m48 > 20.0,
            "slow retirement should merge substantially, got {m48:.1}%"
        );
        assert!(c48 > c4, "stalls must grow with the interval");
        assert!(
            c48 > 0.5,
            "a 48-cycle interval should be ruinous, got {c48:.2} CPI"
        );
    }

    #[test]
    fn fast_retirement_merges_little() {
        // Paper: "if write buffer entries are retired every 5 cycles, the
        // write traffic is reduced by only 10%".
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let m4 = t.value("4", "% writes merged").unwrap();
        assert!(
            m4 < 35.0,
            "fast retirement should merge little, got {m4:.1}%"
        );
    }
}
