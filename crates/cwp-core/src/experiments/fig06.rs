//! Figure 6: write cache organization — a structural demonstration.

use cwp_buffers::WriteCache;
use cwp_mem::{MainMemory, NextLevel, TrafficRecorder};

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// Demonstrates the organization of Figure 6 by driving each workload's
/// store stream through a five-entry write cache of 8B lines and reporting
/// the structural event counts: merges (hits in the fully-associative
/// array), LRU evictions to the next level, and read forwarding.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig06",
        "Write cache organization: structural events (5 entries, 8B lines)",
        "program",
    );
    t.columns([
        "writes",
        "merged (hits)",
        "LRU evictions",
        "drained at end",
        "% removed",
    ]);
    for name in WORKLOAD_NAMES {
        let stream = lab.write_stream(name);
        let mut wc = WriteCache::new(5, 8, TrafficRecorder::new(MainMemory::new()));
        for ev in &stream.events {
            let data = vec![0u8; ev.size as usize];
            wc.write_through(ev.addr, &data);
        }
        wc.flush();
        let s = wc.stats();
        t.row(
            name,
            [
                Cell::Int(s.writes),
                Cell::Int(s.merged),
                Cell::Int(s.evictions),
                Cell::Int(s.drained),
                Cell::from(s.removed_fraction().map(|f| f * 100.0)),
            ],
        );
    }
    t.note(
        "Organization per Figure 6: stores enter a small fully-associative cache of 8B \
         lines between the (write-through) data cache and the write buffer; a miss moves \
         the LRU entry downstream; reads that miss the data cache but hit the write cache \
         are supplied from it.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_conserved() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in WORKLOAD_NAMES {
            let writes = t.value(name, "writes").unwrap();
            let merged = t.value(name, "merged (hits)").unwrap();
            let evicted = t.value(name, "LRU evictions").unwrap();
            let drained = t.value(name, "drained at end").unwrap();
            assert_eq!(
                writes,
                merged + evicted + drained,
                "{name}: every write merges, evicts an entry, or drains at the end"
            );
        }
    }
}
