//! Figure 7: write cache absolute traffic reduction vs number of entries.

use cwp_buffers::WriteCache;
use cwp_mem::{MainMemory, NextLevel};

use crate::experiments::{row_with_average, workload_columns};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// Entry counts swept, 0..=16 as in the paper.
pub const ENTRY_COUNTS: [usize; 17] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];

/// Percentage of all writes removed by a write cache of `entries` 8B
/// lines, per workload.
pub fn removed_percentages(lab: &mut Lab, entries: usize) -> Vec<Option<f64>> {
    WORKLOAD_NAMES
        .iter()
        .map(|name| {
            let stream = lab.write_stream(name);
            let mut wc = WriteCache::new(entries, 8, MainMemory::new());
            for ev in &stream.events {
                let data = [0u8; 8];
                wc.write_through(ev.addr, &data[..ev.size as usize]);
            }
            wc.flush();
            wc.stats().removed_fraction().map(|f| f * 100.0)
        })
        .collect()
}

/// Sweeps write-cache entry counts 0..=16.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig07",
        "Cumulative percentage of all writes removed vs write-cache entries (8B lines)",
        "entries",
    );
    t.columns(workload_columns());
    for entries in ENTRY_COUNTS {
        let values = removed_percentages(lab, entries);
        t.row(entries.to_string(), row_with_average(&values));
    }
    t.note(
        "Paper shape: five 8B entries remove ~50% of writes for most programs and ~40% on \
         average; linpack and liver are the exceptions (Section 3.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_is_monotone_in_entries_and_substantial_at_five() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at0 = t.value("0", "average").unwrap();
        let at1 = t.value("1", "average").unwrap();
        let at5 = t.value("5", "average").unwrap();
        let at16 = t.value("16", "average").unwrap();
        assert_eq!(at0, 0.0);
        assert!(
            at1 > 5.0,
            "one entry should already merge some writes, got {at1:.1}%"
        );
        assert!(
            at5 > 25.0,
            "five entries should remove a large share, got {at5:.1}%"
        );
        assert!(at16 >= at5);
    }

    #[test]
    fn numeric_streaming_codes_benefit_least() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let linpack = t.value("5", "linpack").unwrap();
        let yacc = t.value("5", "yacc").unwrap();
        assert!(
            yacc > linpack,
            "streaming linpack ({linpack:.1}%) should benefit less than yacc ({yacc:.1}%)"
        );
    }
}
