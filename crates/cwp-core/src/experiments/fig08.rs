//! Figure 8: write cache traffic reduction relative to a 4KB write-back
//! cache.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::fig07::{removed_percentages, ENTRY_COUNTS};
use crate::experiments::{row_with_average, workload_columns};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// The write-traffic removal (percent) of a direct-mapped write-back cache
/// of `size` bytes with 16B lines, per workload: the fraction of writes to
/// already-dirty lines.
pub fn writeback_removal(lab: &mut Lab, size: u32) -> Vec<Option<f64>> {
    let config = CacheConfig::builder()
        .size_bytes(size)
        .line_bytes(16)
        .write_hit(WriteHitPolicy::WriteBack)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .expect("geometry is valid");
    WORKLOAD_NAMES
        .iter()
        .map(|name| {
            lab.outcome(name, &config)
                .stats
                .dirty_write_fraction()
                .map(|f| f * 100.0)
        })
        .collect()
}

/// Sweeps write-cache entries, reporting removal relative to a 4KB
/// write-back cache (100% = as good as the write-back cache).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig08",
        "Percentage of writes removed relative to a 4KB write-back cache",
        "entries",
    );
    t.columns(workload_columns());
    let wb = writeback_removal(lab, 4 * 1024);
    for entries in ENTRY_COUNTS {
        let wc = removed_percentages(lab, entries);
        let rel: Vec<Option<f64>> = wc
            .iter()
            .zip(&wb)
            .map(|(wc, wb)| match (wc, wb) {
                (Some(wc), Some(wb)) if *wb > 0.0 => Some(100.0 * wc / wb),
                _ => None,
            })
            .collect();
        t.row(entries.to_string(), row_with_average(&rel));
    }
    t.note(
        "Values above 100% mean the fully-associative write cache beats the direct-mapped \
         write-back cache — the paper observes this for liver at >=8 entries, where mapping \
         conflicts hobble the direct-mapped cache (Section 3.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_few_entries_capture_most_of_the_writeback_benefit() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at5 = t.value("5", "average").unwrap();
        assert!(
            (35.0..=110.0).contains(&at5),
            "five entries should capture a large share of the write-back benefit, got {at5:.1}%"
        );
        let at1 = t.value("1", "average").unwrap();
        assert!(at1 < at5);
    }
}
