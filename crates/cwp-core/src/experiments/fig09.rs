//! Figure 9: relative traffic reduction of a write cache vs the size of
//! the write-back cache it is compared against.

use crate::experiments::fig07::removed_percentages;
use crate::experiments::fig08::writeback_removal;
use crate::experiments::kb;
use crate::lab::Lab;
use crate::report::{Cell, Table};

/// Write-back cache sizes compared against (1KB..64KB).
const WB_SIZES: [u32; 7] = [
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
];

/// Write-cache entry counts plotted (1, 5, 15 as in the paper).
const WC_ENTRIES: [usize; 3] = [1, 5, 15];

/// Sweeps the comparison write-back cache size for 1/5/15-entry write
/// caches, averaging the relative removal over the six benchmarks.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig09",
        "Relative percentage of all writes removed vs write-back cache size (average of 6)",
        "write-back cache size",
    );
    t.columns([
        "15-entry write cache",
        "5-entry write cache",
        "1-entry write cache",
    ]);

    let wc: Vec<Vec<Option<f64>>> = WC_ENTRIES
        .iter()
        .map(|&e| removed_percentages(lab, e))
        .collect();

    for size in WB_SIZES {
        let wb = writeback_removal(lab, size);
        let mut cells = Vec::new();
        // Columns largest-first, matching the paper's legend order.
        for wc_vals in wc.iter().rev() {
            let rels: Vec<f64> = wc_vals
                .iter()
                .zip(&wb)
                .filter_map(|(wc, wb)| match (wc, wb) {
                    (Some(wc), Some(wb)) if *wb > 0.0 => Some(100.0 * wc / wb),
                    _ => None,
                })
                .collect();
            cells.push(if rels.is_empty() {
                Cell::Missing
            } else {
                Cell::Num(rels.iter().sum::<f64>() / rels.len() as f64)
            });
        }
        t.row(kb(size), cells);
    }
    t.note(
        "Paper shape: a 5-entry write cache removes ~72% of what a 1KB write-back cache \
         removes but still ~49% of what a 32KB one does — a surprisingly small decline \
         for a 32:1 size ratio (Section 3.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_effectiveness_declines_gently_with_wb_size() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let vs1k = t.value("1KB", "5-entry write cache").unwrap();
        let vs32k = t.value("32KB", "5-entry write cache").unwrap();
        assert!(
            vs1k > vs32k,
            "bigger comparison cache lowers relative benefit"
        );
        assert!(
            vs32k > 0.3 * vs1k,
            "the decline should be gentle: 1KB={vs1k:.1}%, 32KB={vs32k:.1}%"
        );
    }

    #[test]
    fn more_entries_always_help() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for size in ["1KB", "8KB", "64KB"] {
            let e1 = t.value(size, "1-entry write cache").unwrap();
            let e5 = t.value(size, "5-entry write cache").unwrap();
            let e15 = t.value(size, "15-entry write cache").unwrap();
            assert!(
                e15 >= e5 && e5 >= e1,
                "{size}: {e1:.1} <= {e5:.1} <= {e15:.1} violated"
            );
        }
    }
}
