//! Figure 10: write misses as a percent of all misses vs cache size.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{kb, row_with_average, workload_columns, SIZES};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// Builds the fetch-on-write baseline configuration used throughout the
/// write-miss studies (write-through hits so every miss policy shares hit
/// behaviour).
pub fn baseline(size: u32, line: u32) -> CacheConfig {
    CacheConfig::builder()
        .size_bytes(size)
        .line_bytes(line)
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .expect("geometry is valid")
}

/// Sweeps cache size (16B lines), reporting write misses as a percent of
/// all misses under fetch-on-write.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig10",
        "Write misses as a percent of all misses vs cache size (16B lines)",
        "cache size",
    );
    t.columns(workload_columns());
    // One fan-out replay pass per workload covers the whole size sweep.
    let sweep: Vec<CacheConfig> = SIZES.iter().map(|&s| baseline(s, 16)).collect();
    for name in WORKLOAD_NAMES {
        lab.outcomes_sweep(name, &sweep);
    }
    for size in SIZES {
        let config = baseline(size, 16);
        let values: Vec<Option<f64>> = WORKLOAD_NAMES
            .iter()
            .map(|name| {
                lab.outcome(name, &config)
                    .stats
                    .write_miss_fraction()
                    .map(|f| f * 100.0)
            })
            .collect();
        t.row(kb(size), row_with_average(&values));
    }
    t.note(
        "Paper: write misses average about one-third of all misses, so stores are about as \
         likely to miss as loads given the 2.4:1 load:store ratio (Section 4).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_misses_are_roughly_a_third_of_misses() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for size in ["4KB", "8KB", "16KB"] {
            let avg = t.value(size, "average").unwrap();
            assert!(
                (15.0..=60.0).contains(&avg),
                "average write-miss share at {size} was {avg:.1}%"
            );
        }
    }
}
