//! Figure 11: write misses as a percent of all misses vs line size.

use crate::experiments::fig10::baseline;
use crate::experiments::{b, row_with_average, workload_columns, LINES};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// Sweeps line size (8KB cache), reporting write misses as a percent of
/// all misses under fetch-on-write.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig11",
        "Write misses as a percent of all misses vs line size (8KB caches)",
        "line size",
    );
    t.columns(workload_columns());
    // One fan-out replay pass per workload covers the whole line sweep.
    let sweep: Vec<_> = LINES.iter().map(|&l| baseline(8 * 1024, l)).collect();
    for name in WORKLOAD_NAMES {
        lab.outcomes_sweep(name, &sweep);
    }
    for line in LINES {
        let config = baseline(8 * 1024, line);
        let values: Vec<Option<f64>> = WORKLOAD_NAMES
            .iter()
            .map(|name| {
                lab.outcome(name, &config)
                    .stats
                    .write_miss_fraction()
                    .map(|f| f * 100.0)
            })
            .collect();
        t.row(b(line), row_with_average(&values));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_stays_in_a_sensible_band_across_line_sizes() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for line in ["4B", "16B", "64B"] {
            let avg = t.value(line, "average").unwrap();
            assert!(
                (10.0..=65.0).contains(&avg),
                "average write-miss share at {line} was {avg:.1}%"
            );
        }
    }
}
