//! Figure 12: the write-miss policy taxonomy.

use cwp_cache::WriteMissPolicy;

use crate::lab::Lab;
use crate::report::{Cell, Table};

/// Renders the decision table of Figure 12 directly from the policy
/// enum's predicate methods, so the table can never drift from the
/// simulator's behaviour.
pub fn run(_lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new("fig12", "Write miss alternatives", "policy");
    t.columns([
        "fetch-on-write?",
        "write-allocate?",
        "write-invalidate?",
        "bypasses to next level?",
    ]);
    for policy in WriteMissPolicy::ALL {
        let yn = |b: bool| Cell::Text(if b { "yes" } else { "no" }.to_string());
        t.row(
            policy.to_string(),
            [
                yn(policy.fetches_on_write()),
                yn(policy.allocates()),
                yn(policy.invalidates()),
                yn(policy.bypasses()),
            ],
        );
    }
    t.note(
        "The other four combinations of the three bits are not useful (fetching data only \
         to discard it, or allocating a line only to invalidate it) and are unrepresentable \
         in the simulator (Section 4).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_matches_figure_12() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.cell("write-validate", "fetch-on-write?"),
            Some(&Cell::Text("no".into()))
        );
        assert_eq!(
            t.cell("write-validate", "write-allocate?"),
            Some(&Cell::Text("yes".into()))
        );
        assert_eq!(
            t.cell("write-invalidate", "write-invalidate?"),
            Some(&Cell::Text("yes".into()))
        );
        assert_eq!(
            t.cell("fetch-on-write", "bypasses to next level?"),
            Some(&Cell::Text("no".into()))
        );
    }
}
