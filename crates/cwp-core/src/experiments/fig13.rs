//! Figure 13: write-miss rate reductions of the three no-fetch strategies
//! vs cache size (16B lines).

use crate::experiments::policy_sweep::{reduction_tables, size_points, Reduction};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the cache-size sweep, one table per policy (write-validate,
/// write-around, write-invalidate); fetch-on-write is the zero baseline.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut tables = reduction_tables(
        lab,
        "fig13",
        "Percentage of write misses removed vs cache size (16B lines)",
        &size_points(),
        Reduction::WriteMisses,
    );
    if let Some(t) = tables.first_mut() {
        t.note(
            "Paper shape: write-validate >90% on average; write-around 40-65%; \
             write-invalidate 30-50%; write-around exceeds 100% on liver at 32-64KB \
             (Section 4).",
        );
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> Vec<Table> {
        let mut lab = crate::experiments::testlab::lock();
        run(&mut lab)
    }

    #[test]
    fn write_validate_removes_the_vast_majority_of_write_misses() {
        let t = &tables()[0];
        for size in ["8KB", "32KB"] {
            let avg = t.value(size, "average").unwrap();
            assert!(
                avg > 70.0,
                "write-validate at {size} removed only {avg:.1}%"
            );
        }
    }

    #[test]
    fn policy_ranking_holds_on_average() {
        let ts = tables();
        for size in ["4KB", "8KB", "16KB"] {
            let wv = ts[0].value(size, "average").unwrap();
            let wa = ts[1].value(size, "average").unwrap();
            let wi = ts[2].value(size, "average").unwrap();
            assert!(
                wv >= wa && wa >= wi && wi > 0.0,
                "{size}: expected wv >= wa >= wi > 0, got {wv:.1} / {wa:.1} / {wi:.1}"
            );
        }
    }

    #[test]
    fn write_around_shines_on_liver_at_mid_sizes() {
        // The paper's >100% anomaly: bypassing write misses preserves
        // liver's resident inputs, removing read misses too.
        let ts = tables();
        let wa_liver = ts[1].value("32KB", "liver").unwrap();
        assert!(
            wa_liver > 85.0,
            "write-around on liver at 32KB should be outsized, got {wa_liver:.1}%"
        );
        let wv_liver = ts[0].value("32KB", "liver").unwrap();
        assert!(
            wa_liver > wv_liver - 20.0,
            "write-around should rival write-validate on liver at 32KB"
        );
    }
}
