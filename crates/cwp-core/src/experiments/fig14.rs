//! Figure 14: total miss-rate reductions of the three no-fetch strategies
//! vs cache size (16B lines).

use crate::experiments::policy_sweep::{reduction_tables, size_points, Reduction};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the cache-size sweep, reporting reductions in *total* misses.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut tables = reduction_tables(
        lab,
        "fig14",
        "Percentage of all misses removed vs cache size (16B lines)",
        &size_points(),
        Reduction::TotalMisses,
    );
    if let Some(t) = tables.first_mut() {
        t.note(
            "This is essentially Figure 13 multiplied by Figure 10 (the write-miss share). \
             Paper: write-validate removes 30-35% of all misses on average for 8KB-128KB \
             caches; ccom and liver benefit most, linpack least (Section 4).",
        );
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_validate_removes_a_meaningful_share_of_all_misses() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let avg = ts[0].value("8KB", "average").unwrap();
        assert!(
            (15.0..=60.0).contains(&avg),
            "write-validate total-miss reduction at 8KB was {avg:.1}% (paper: ~31%)"
        );
    }

    #[test]
    fn linpack_benefits_least_from_write_validate() {
        // linpack's writes are read-modify-write, so write-validate has
        // little to remove.
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let linpack = ts[0].value("8KB", "linpack").unwrap();
        let ccom = ts[0].value("8KB", "ccom").unwrap();
        assert!(
            ccom > linpack,
            "ccom ({ccom:.1}%) should gain more than linpack ({linpack:.1}%)"
        );
    }

    #[test]
    fn figure_14_is_figure_13_times_figure_10() {
        use crate::experiments::{fig10, fig13};
        let mut lab = crate::experiments::testlab::lock();
        let f14 = run(&mut lab);
        let f13 = fig13::run(&mut lab);
        let f10 = fig10::run(&mut lab);
        for size in ["8KB", "32KB"] {
            let total = f14[0].value(size, "average").unwrap();
            let write = f13[0].value(size, "average").unwrap();
            let share = f10[0].value(size, "average").unwrap();
            let predicted = write * share / 100.0;
            // Averages of products differ from products of averages, so
            // allow a loose band.
            assert!(
                (total - predicted).abs() < 15.0,
                "{size}: fig14 {total:.1}% vs fig13*fig10 {predicted:.1}%"
            );
        }
    }
}
