//! Figure 14: total miss-rate reductions of the three no-fetch strategies
//! vs cache size (16B lines).

use crate::experiments::policy_sweep::{reduction_tables, size_points, Reduction, ALTERNATIVES};
use crate::lab::Lab;
use crate::report::{CellError, CellErrorKind, Table};

/// Runs the cache-size sweep, reporting reductions in *total* misses.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut tables = reduction_tables(
        lab,
        "fig14",
        "Percentage of all misses removed vs cache size (16B lines)",
        &size_points(),
        Reduction::TotalMisses,
    );
    if let Some(t) = tables.first_mut() {
        t.note(
            "This is essentially Figure 13 multiplied by Figure 10 (the write-miss share). \
             Paper: write-validate removes 30-35% of all misses on average for 8KB-128KB \
             caches; ccom and liver benefit most, linpack least (Section 4).",
        );
    }
    tables
}

/// Structural sanity check: one table per alternative policy, each with
/// every size row and the average column present.
pub(crate) fn check(tables: &[Table]) -> Result<(), CellError> {
    if tables.len() != ALTERNATIVES.len() {
        return Err(CellError {
            table: "fig14/*".to_string(),
            row: String::new(),
            column: String::new(),
            kind: CellErrorKind::NoSuchTable,
        });
    }
    for t in tables {
        for (label, _, _) in size_points() {
            t.require_cell(&label, "average")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CellError;

    #[test]
    fn write_validate_removes_a_meaningful_share_of_all_misses() -> Result<(), CellError> {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let avg = ts[0].require_value("8KB", "average")?;
        assert!(
            (15.0..=60.0).contains(&avg),
            "write-validate total-miss reduction at 8KB was {avg:.1}% (paper: ~31%)"
        );
        Ok(())
    }

    #[test]
    fn linpack_benefits_least_from_write_validate() -> Result<(), CellError> {
        // linpack's writes are read-modify-write, so write-validate has
        // little to remove.
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let linpack = ts[0].require_value("8KB", "linpack")?;
        let ccom = ts[0].require_value("8KB", "ccom")?;
        assert!(
            ccom > linpack,
            "ccom ({ccom:.1}%) should gain more than linpack ({linpack:.1}%)"
        );
        Ok(())
    }

    #[test]
    fn figure_14_is_figure_13_times_figure_10() -> Result<(), CellError> {
        use crate::experiments::{fig10, fig13};
        let mut lab = crate::experiments::testlab::lock();
        let f14 = run(&mut lab);
        let f13 = fig13::run(&mut lab);
        let f10 = fig10::run(&mut lab);
        for size in ["8KB", "32KB"] {
            let total = f14[0].require_value(size, "average")?;
            let write = f13[0].require_value(size, "average")?;
            let share = f10[0].require_value(size, "average")?;
            let predicted = write * share / 100.0;
            // Averages of products differ from products of averages, so
            // allow a loose band.
            assert!(
                (total - predicted).abs() < 15.0,
                "{size}: fig14 {total:.1}% vs fig13*fig10 {predicted:.1}%"
            );
        }
        Ok(())
    }

    #[test]
    fn structural_check_passes_on_real_output() {
        let mut lab = crate::experiments::testlab::lock();
        check(&run(&mut lab)).unwrap();
        assert!(check(&[]).is_err(), "an empty table set must fail");
    }
}
