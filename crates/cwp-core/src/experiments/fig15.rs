//! Figure 15: write-miss rate reductions of the three no-fetch strategies
//! vs line size (8KB caches).

use crate::experiments::policy_sweep::{line_points, reduction_tables, Reduction};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the line-size sweep, reporting reductions in write misses.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut tables = reduction_tables(
        lab,
        "fig15",
        "Percentage of write misses removed vs line size (8KB caches)",
        &line_points(),
        Reduction::WriteMisses,
    );
    if let Some(t) = tables.first_mut() {
        t.note(
            "Paper shape: all three strategies help most at short lines; with longer lines \
             the old data on the line is more likely to be wanted, shrinking the advantage \
             (Section 4).",
        );
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_validate_stays_high_across_line_sizes() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        for line in ["4B", "16B", "64B"] {
            let avg = ts[0].value(line, "average").unwrap();
            assert!(
                avg > 60.0,
                "write-validate at {line} removed only {avg:.1}%"
            );
        }
    }

    #[test]
    fn write_invalidate_loses_ground_to_write_around_as_lines_grow() {
        // Longer lines throw away more information on invalidation. The
        // robust form of the paper's claim is comparative: write-invalidate
        // falls behind write-around (identical except it keeps the old
        // line) as the invalidated line carries more bytes.
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let gap_at = |line: &str| {
            ts[1].value(line, "average").unwrap() - ts[2].value(line, "average").unwrap()
        };
        let gap4 = gap_at("4B");
        let gap64 = gap_at("64B");
        assert!(
            gap64 >= gap4 - 3.0,
            "the write-around advantage over write-invalidate should not shrink with \
             line size: 4B gap {gap4:.1} pts, 64B gap {gap64:.1} pts"
        );
        // And write-invalidate must not improve dramatically with line size.
        let at4 = ts[2].value("4B", "average").unwrap();
        let at64 = ts[2].value("64B", "average").unwrap();
        assert!(
            at64 < at4 + 15.0,
            "write-invalidate should not gain with line size: 4B={at4:.1}%, 64B={at64:.1}%"
        );
    }
}
