//! Figure 16: total miss-rate reduction of the three no-fetch strategies
//! vs line size (8KB caches).

use crate::experiments::policy_sweep::{line_points, reduction_tables, Reduction};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the line-size sweep, reporting reductions in total misses.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut tables = reduction_tables(
        lab,
        "fig16",
        "Percentage of all misses removed vs line size (8KB caches)",
        &line_points(),
        Reduction::TotalMisses,
    );
    if let Some(t) = tables.first_mut() {
        t.note(
            "The write-validate/write-around gap narrows as lines grow: write-validate \
             invalidates more bytes per allocation while write-around keeps whole lines \
             valid (Section 4).",
        );
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fetch_policies_beat_the_baseline_at_every_line_size() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        for t in &ts {
            for line in ["4B", "8B", "16B", "32B", "64B"] {
                let avg = t.value(line, "average").unwrap();
                assert!(avg > 0.0, "{}: no gain at {line} ({avg:.1}%)", t.id());
            }
        }
    }

    #[test]
    fn write_validate_beats_write_invalidate_everywhere() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        for line in ["4B", "16B", "64B"] {
            let wv = ts[0].value(line, "average").unwrap();
            let wi = ts[2].value(line, "average").unwrap();
            assert!(wv > wi, "{line}: wv {wv:.1}% <= wi {wi:.1}%");
        }
    }
}
