//! Figure 17: the partial order of fetch traffic across write-miss
//! policies, verified empirically.

use cwp_cache::WriteMissPolicy;

use crate::experiments::policy_sweep::config;
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// Measures lines fetched per workload under each policy (8KB, 16B lines)
/// and checks the partial order of Figure 17: fetch-on-write fetches the
/// most; write-invalidate less; write-around and write-validate the least.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig17",
        "Lines fetched by write-miss policy (8KB, 16B lines) and the Figure 17 partial order",
        "program",
    );
    t.columns([
        "fetch-on-write",
        "write-invalidate",
        "write-around",
        "write-validate",
        "order holds",
    ]);
    for name in WORKLOAD_NAMES {
        let fetch = |lab: &mut Lab, p: WriteMissPolicy| {
            lab.outcome(name, &config(8 * 1024, 16, p)).stats.fetches
        };
        let fow = fetch(lab, WriteMissPolicy::FetchOnWrite);
        let wi = fetch(lab, WriteMissPolicy::WriteInvalidate);
        let wa = fetch(lab, WriteMissPolicy::WriteAround);
        let wv = fetch(lab, WriteMissPolicy::WriteValidate);
        let holds = fow >= wi && wi >= wa && wi >= wv;
        t.row(
            name,
            [
                Cell::Int(fow),
                Cell::Int(wi),
                Cell::Int(wa),
                Cell::Int(wv),
                Cell::Text(if holds { "yes" } else { "NO" }.to_string()),
            ],
        );
    }
    t.note(
        "Figure 17's partial order: fetch-on-write >= write-invalidate >= {write-around, \
         write-validate}. Write-around and write-validate are incomparable: usually the \
         data just written is the more useful to keep, but not always (Section 4).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_order_holds_for_every_workload() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in WORKLOAD_NAMES {
            assert_eq!(
                t.cell(name, "order holds"),
                Some(&Cell::Text("yes".into())),
                "partial order violated for {name}"
            );
        }
    }

    #[test]
    fn write_validate_usually_beats_write_around() {
        // "In general write-validate outperforms write-around since data
        // just written is more likely to be accessed soon again."
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let mut wv_wins = 0;
        for name in WORKLOAD_NAMES {
            let wv = t.value(name, "write-validate").unwrap();
            let wa = t.value(name, "write-around").unwrap();
            if wv <= wa {
                wv_wins += 1;
            }
        }
        assert!(
            wv_wins >= 4,
            "write-validate won only {wv_wins}/6 workloads"
        );
    }
}
