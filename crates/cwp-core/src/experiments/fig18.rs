//! Figure 18: components of back-side traffic vs cache size.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{kb, SIZES};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// The four series of Figures 18/19 at one geometry, averaged over the six
/// workloads: write-through total, write-back total, write misses, read
/// misses — all in transactions per instruction.
pub fn traffic_components(lab: &mut Lab, size: u32, line: u32) -> [f64; 4] {
    let wt = CacheConfig::builder()
        .size_bytes(size)
        .line_bytes(line)
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .expect("geometry is valid");
    let wb = wt
        .to_builder()
        .write_hit(WriteHitPolicy::WriteBack)
        .build()
        .expect("geometry is valid");

    let mut acc = [0.0f64; 4];
    for name in WORKLOAD_NAMES {
        let wt_out = lab.outcome(name, &wt);
        let wb_out = lab.outcome(name, &wb);
        let insts = wb_out.summary.instructions as f64;
        let wt_txns = wt_out.traffic_total.fetch.transactions
            + wt_out.traffic_total.write_through.transactions;
        let wb_txns =
            wb_out.traffic_total.fetch.transactions + wb_out.traffic_total.write_back.transactions;
        acc[0] += wt_txns as f64 / wt_out.summary.instructions as f64;
        acc[1] += wb_txns as f64 / insts;
        acc[2] += wb_out.stats.write_misses as f64 / insts;
        acc[3] += wb_out.stats.read_misses as f64 / insts;
    }
    acc.map(|v| v / WORKLOAD_NAMES.len() as f64)
}

/// Column names shared with Figure 19.
pub const COLUMNS: [&str; 4] = ["write-through", "write-back", "write misses", "read misses"];

/// Sweeps cache size (16B lines), reporting transactions per instruction.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig18",
        "Back-end transactions per instruction vs cache size (16B lines, average of 6)",
        "cache size",
    );
    t.columns(COLUMNS);
    // One fan-out replay pass per workload covers both policies at every
    // size before the per-point loop reads them back from the memo.
    let sweep: Vec<CacheConfig> = SIZES
        .iter()
        .flat_map(|&size| {
            let wt = CacheConfig::builder()
                .size_bytes(size)
                .line_bytes(16)
                .write_hit(WriteHitPolicy::WriteThrough)
                .write_miss(WriteMissPolicy::FetchOnWrite)
                .build()
                .expect("geometry is valid");
            let wb = wt
                .to_builder()
                .write_hit(WriteHitPolicy::WriteBack)
                .build()
                .expect("geometry is valid");
            [wt, wb]
        })
        .collect();
    for name in WORKLOAD_NAMES {
        lab.outcomes_sweep(name, &sweep);
    }
    for size in SIZES {
        let c = traffic_components(lab, size, 16);
        t.row(kb(size), c.map(Cell::Num));
    }
    t.note(
        "Values are transactions per 1 instruction (the paper plots a log axis). \
         Write-through traffic is store-dominated and nearly flat; write-back traffic \
         falls with size; dirty victims add 40-80% over miss traffic (Section 5.1). \
         Totals use flush-stop accounting.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_through_traffic_is_nearly_flat_over_two_decades() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at1 = t.value("1KB", "write-through").unwrap();
        let at128 = t.value("128KB", "write-through").unwrap();
        assert!(
            at1 / at128 < 2.5,
            "paper: WT traffic varies by less than ~2x (got {at1:.4} vs {at128:.4})"
        );
    }

    #[test]
    fn write_back_traffic_falls_with_cache_size() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at1 = t.value("1KB", "write-back").unwrap();
        let at64 = t.value("64KB", "write-back").unwrap();
        assert!(
            at1 > at64 * 1.5,
            "WB traffic should fall: {at1:.4} -> {at64:.4}"
        );
    }

    #[test]
    fn write_back_beats_write_through_at_large_sizes() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let wb = t.value("64KB", "write-back").unwrap();
        let wt = t.value("64KB", "write-through").unwrap();
        assert!(wb < wt, "at 64KB WB ({wb:.4}) should undercut WT ({wt:.4})");
    }

    #[test]
    fn components_are_consistent() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for size in ["4KB", "32KB"] {
            let wb = t.value(size, "write-back").unwrap();
            let wm = t.value(size, "write misses").unwrap();
            let rm = t.value(size, "read misses").unwrap();
            assert!(wb >= wm + rm, "{size}: WB total must include miss fetches");
        }
    }
}
