//! Figure 19: components of back-side traffic vs line size.

use crate::experiments::fig18::{traffic_components, COLUMNS};
use crate::experiments::{b, LINES};
use crate::lab::Lab;
use crate::report::{Cell, Table};

/// Sweeps line size (8KB cache), reporting transactions per instruction.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "fig19",
        "Back-end transactions per instruction vs line size (8KB caches, average of 6)",
        "line size",
    );
    t.columns(COLUMNS);
    for line in LINES {
        let c = traffic_components(lab, 8 * 1024, line);
        t.row(b(line), c.map(Cell::Num));
    }
    t.note(
        "As lines grow, transaction counts fall (though bytes moved grow); write-through \
         traffic stays store-dominated, varying by less than 2x over the decade of line \
         sizes (Section 5.1).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_fall_as_lines_grow() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for col in ["write-back", "read misses"] {
            let at4 = t.value("4B", col).unwrap();
            let at64 = t.value("64B", col).unwrap();
            assert!(
                at4 > at64,
                "{col}: {at4:.4} at 4B should exceed {at64:.4} at 64B"
            );
        }
    }

    #[test]
    fn write_through_varies_less_than_the_miss_components() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let wt_ratio =
            t.value("4B", "write-through").unwrap() / t.value("64B", "write-through").unwrap();
        let rm_ratio =
            t.value("4B", "read misses").unwrap() / t.value("64B", "read misses").unwrap();
        assert!(
            wt_ratio < rm_ratio,
            "store-dominated WT traffic should be flatter: WT {wt_ratio:.2}x vs read-miss {rm_ratio:.2}x"
        );
        assert!(
            wt_ratio < 2.5,
            "paper: WT varies by less than ~2x, got {wt_ratio:.2}x"
        );
    }
}
