//! Figure 20: percent of victims with dirty bytes vs cache size.

use crate::experiments::policy_sweep::size_points;
use crate::experiments::victim_sweep::{victim_table, VictimMetric};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the cache-size sweep (16B lines, write-back), producing the
/// cold-stop and flush-stop tables (the paper's solid and dotted lines).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let points = size_points();
    let mut cold = victim_table(
        lab,
        "fig20/cold-stop",
        "Percent of victims dirty vs cache size (16B lines, cold stop)",
        "cache size",
        &points,
        VictimMetric::DirtyFractionColdStop,
    );
    cold.note(
        "Cold stop counts only victims evicted during execution; for large caches most \
         written lines never leave, so the paper prefers the flush-stop numbers below \
         (Section 5).",
    );
    let flush = victim_table(
        lab,
        "fig20/flush-stop",
        "Percent of victims dirty vs cache size (16B lines, flush stop)",
        "cache size",
        &points,
        VictimMetric::DirtyFractionFlushStop,
    );
    vec![cold, flush]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn about_half_of_victims_are_dirty_on_average() {
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        let avg = ts[1].value("8KB", "average").unwrap();
        assert!(
            (30.0..=75.0).contains(&avg),
            "paper: ~50% of victims dirty on average, got {avg:.1}%"
        );
    }

    #[test]
    fn flush_stop_covers_resident_write_data() {
        // For a 128KB cache, benchmarks that fit leave most written lines
        // resident; flush-stop victim counts must not be smaller than
        // cold-stop ones.
        let mut lab = crate::experiments::testlab::lock();
        let ts = run(&mut lab);
        for name in ["liver", "yacc"] {
            let cold = ts[0].value("128KB", name);
            let flush = ts[1].value("128KB", name).unwrap();
            assert!(flush > 0.0, "{name}: flush stop must see dirty lines");
            if let Some(c) = cold {
                // Both defined: flush stop mixes in the resident lines.
                assert!(
                    (flush - c).abs() <= 100.0,
                    "{name}: nonsensical percentages {c} vs {flush}"
                );
            }
        }
    }
}
