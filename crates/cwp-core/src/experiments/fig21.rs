//! Figure 21: percent of bytes dirty in a dirty victim vs cache size.

use crate::experiments::policy_sweep::size_points;
use crate::experiments::victim_sweep::{victim_table, VictimMetric};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the cache-size sweep (16B lines, write-back, flush stop).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = victim_table(
        lab,
        "fig21",
        "Percent of bytes dirty in a dirty victim vs cache size (16B lines)",
        "cache size",
        &size_points(),
        VictimMetric::BytesDirtyInDirty,
    );
    t.note(
        "Paper shape: ~70% for small caches rising toward 90% — bigger caches let more \
         writes land on a line before it is replaced. Unit-stride numeric codes dirty \
         whole lines (Section 5.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_victims_are_mostly_dirty_bytes() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let avg = t.value("8KB", "average").unwrap();
        assert!((45.0..=100.0).contains(&avg), "got {avg:.1}% at 8KB");
    }

    #[test]
    fn numeric_codes_dirty_whole_lines() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in ["linpack", "liver"] {
            let v = t.value("8KB", name).unwrap();
            assert!(
                v > 60.0,
                "{name}: unit-stride writes should dirty most bytes, got {v:.1}%"
            );
        }
    }

    #[test]
    fn fraction_grows_with_cache_size() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let small = t.value("1KB", "average").unwrap();
        let large = t.value("64KB", "average").unwrap();
        assert!(
            large >= small - 5.0,
            "larger caches accumulate more dirty bytes per line: 1KB={small:.1}%, 64KB={large:.1}%"
        );
    }
}
