//! Figure 22: percent of bytes dirty per victim (all victims) vs cache
//! size.

use crate::experiments::policy_sweep::size_points;
use crate::experiments::victim_sweep::{victim_table, VictimMetric};
use crate::lab::Lab;
use crate::report::{require_table, CellError, Table};

/// Runs the cache-size sweep (16B lines, write-back, flush stop, averaged
/// over all victims whether clean or dirty).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = victim_table(
        lab,
        "fig22",
        "Percent of bytes dirty per victim vs cache size (16B lines, all victims)",
        "cache size",
        &size_points(),
        VictimMetric::BytesDirtyPerVictim,
    );
    t.note(
        "Effectively Figure 20 times Figure 21 (flush-stop data): the higher miss rate of \
         small caches prematurely cleans out partially dirty lines (Section 5.2).",
    );
    vec![t]
}

/// Structural sanity check: a single `fig22` table with every size row
/// and the average column present.
pub(crate) fn check(tables: &[Table]) -> Result<(), CellError> {
    let t = require_table(tables, 0, "fig22")?;
    for (label, _, _) in size_points() {
        t.require_cell(&label, "average")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_identity_with_figures_20_and_21() -> Result<(), CellError> {
        use crate::experiments::{fig20, fig21};
        let mut lab = crate::experiments::testlab::lock();
        let f22 = run(&mut lab);
        let f20 = fig20::run(&mut lab);
        let f21 = fig21::run(&mut lab);
        for size in ["4KB", "16KB"] {
            for name in ["ccom", "grr", "linpack"] {
                let dirty_frac = f20[1].require_value(size, name)? / 100.0;
                let bytes_in_dirty = f21[0].require_value(size, name)? / 100.0;
                let per_victim = f22[0].require_value(size, name)? / 100.0;
                let predicted = dirty_frac * bytes_in_dirty;
                assert!(
                    (per_victim - predicted).abs() < 0.02,
                    "{name}@{size}: fig22 {per_victim:.3} != fig20*fig21 {predicted:.3}"
                );
            }
        }
        Ok(())
    }

    #[test]
    fn per_victim_dirtiness_is_below_in_dirty_dirtiness() -> Result<(), CellError> {
        use crate::experiments::fig21;
        let mut lab = crate::experiments::testlab::lock();
        let f22 = run(&mut lab);
        let f21 = fig21::run(&mut lab);
        let all = f22[0].require_value("8KB", "average")?;
        let dirty_only = f21[0].require_value("8KB", "average")?;
        assert!(all <= dirty_only + 1e-9);
        Ok(())
    }

    #[test]
    fn structural_check_passes_on_real_output() {
        let mut lab = crate::experiments::testlab::lock();
        check(&run(&mut lab)).unwrap();
        assert!(check(&[]).is_err());
    }
}
