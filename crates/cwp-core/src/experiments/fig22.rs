//! Figure 22: percent of bytes dirty per victim (all victims) vs cache
//! size.

use crate::experiments::policy_sweep::size_points;
use crate::experiments::victim_sweep::{victim_table, VictimMetric};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the cache-size sweep (16B lines, write-back, flush stop, averaged
/// over all victims whether clean or dirty).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = victim_table(
        lab,
        "fig22",
        "Percent of bytes dirty per victim vs cache size (16B lines, all victims)",
        "cache size",
        &size_points(),
        VictimMetric::BytesDirtyPerVictim,
    );
    t.note(
        "Effectively Figure 20 times Figure 21 (flush-stop data): the higher miss rate of \
         small caches prematurely cleans out partially dirty lines (Section 5.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_identity_with_figures_20_and_21() {
        use crate::experiments::{fig20, fig21};
        let mut lab = crate::experiments::testlab::lock();
        let f22 = run(&mut lab);
        let f20 = fig20::run(&mut lab);
        let f21 = fig21::run(&mut lab);
        for size in ["4KB", "16KB"] {
            for name in ["ccom", "grr", "linpack"] {
                let dirty_frac = f20[1].value(size, name).unwrap() / 100.0;
                let bytes_in_dirty = f21[0].value(size, name).unwrap() / 100.0;
                let per_victim = f22[0].value(size, name).unwrap() / 100.0;
                let predicted = dirty_frac * bytes_in_dirty;
                assert!(
                    (per_victim - predicted).abs() < 0.02,
                    "{name}@{size}: fig22 {per_victim:.3} != fig20*fig21 {predicted:.3}"
                );
            }
        }
    }

    #[test]
    fn per_victim_dirtiness_is_below_in_dirty_dirtiness() {
        use crate::experiments::fig21;
        let mut lab = crate::experiments::testlab::lock();
        let f22 = run(&mut lab);
        let f21 = fig21::run(&mut lab);
        let all = f22[0].value("8KB", "average").unwrap();
        let dirty_only = f21[0].value("8KB", "average").unwrap();
        assert!(all <= dirty_only + 1e-9);
    }
}
