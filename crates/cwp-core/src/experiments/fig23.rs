//! Figure 23: percent of victims with dirty bytes vs line size.

use crate::experiments::policy_sweep::line_points;
use crate::experiments::victim_sweep::{victim_table, VictimMetric};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the line-size sweep (8KB, write-back, flush stop).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = victim_table(
        lab,
        "fig23",
        "Percent of victims dirty vs line size (8KB caches, flush stop)",
        "line size",
        &line_points(),
        VictimMetric::DirtyFractionFlushStop,
    );
    t.note(
        "Paper: roughly flat or slightly decreasing with line size, implying writes are \
         slightly more clustered than reads (Section 5.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_victim_share_is_roughly_flat_across_line_sizes() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at4 = t.value("4B", "average").unwrap();
        let at64 = t.value("64B", "average").unwrap();
        assert!(
            (at4 - at64).abs() < 30.0,
            "expected a roughly flat trend: 4B={at4:.1}%, 64B={at64:.1}%"
        );
        for line in ["4B", "16B", "64B"] {
            let v = t.value(line, "average").unwrap();
            assert!((20.0..=90.0).contains(&v), "{line}: {v:.1}%");
        }
    }
}
