//! Figure 24: percent of bytes dirty in a dirty victim vs line size.

use crate::experiments::policy_sweep::line_points;
use crate::experiments::victim_sweep::{victim_table, VictimMetric};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the line-size sweep (8KB, write-back, flush stop).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = victim_table(
        lab,
        "fig24",
        "Percent of bytes dirty in a dirty victim vs line size (8KB caches)",
        "line size",
        &line_points(),
        VictimMetric::BytesDirtyInDirty,
    );
    t.note(
        "At 4B lines a dirty line is entirely dirty (the architecture has no byte writes); \
         the percentage drops rapidly with line size, reaching ~40% on average at 64B — \
         the motivation for sub-block dirty bits (Sections 5.2, 6).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_byte_lines_are_fully_dirty_when_dirty() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at4 = t.value("4B", "average").unwrap();
        assert!(
            at4 > 99.0,
            "4B lines with 4B/8B writes must be fully dirty, got {at4:.1}%"
        );
    }

    #[test]
    fn dirtiness_drops_with_line_size() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at8 = t.value("8B", "average").unwrap();
        let at64 = t.value("64B", "average").unwrap();
        assert!(at8 > at64, "8B={at8:.1}% should exceed 64B={at64:.1}%");
        assert!(at64 < 80.0, "long lines are sparsely dirty, got {at64:.1}%");
    }

    #[test]
    fn numeric_codes_stay_dense_even_at_8b() {
        // "almost 100% bytes dirty in a dirty line for 8B lines, since the
        // vast majority of their writes are stores of double-precision
        // floating-point values."
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        for name in ["linpack", "liver"] {
            let v = t.value("8B", name).unwrap();
            assert!(v > 90.0, "{name} at 8B lines: {v:.1}%");
        }
    }
}
