//! Figure 25: percent of bytes dirty per victim (all victims) vs line
//! size.

use crate::experiments::policy_sweep::line_points;
use crate::experiments::victim_sweep::{victim_table, VictimMetric};
use crate::lab::Lab;
use crate::report::Table;

/// Runs the line-size sweep (8KB, write-back, flush stop, all victims).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = victim_table(
        lab,
        "fig25",
        "Percent of bytes dirty per victim vs line size (8KB caches, all victims)",
        "line size",
        &line_points(),
        VictimMetric::BytesDirtyPerVictim,
    );
    t.note(
        "The average percentage of dirty bytes per victim falls sharply as lines grow, \
         because a lower percentage of the extra data is useful (Section 5.2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_bytes_per_victim_fall_sharply_with_line_size() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        let at4 = t.value("4B", "average").unwrap();
        let at64 = t.value("64B", "average").unwrap();
        assert!(
            at4 > at64 * 1.3,
            "expected a sharp decline: 4B={at4:.1}%, 64B={at64:.1}%"
        );
    }
}
