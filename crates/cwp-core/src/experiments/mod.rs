//! One module per table and figure of the paper.
//!
//! Every experiment takes a [`Lab`] (memoized simulation runs) and returns
//! one or more [`Table`]s containing the same rows/series the paper plots.
//! The registry in [`all`] is what the `figures` binary and the Criterion
//! benches iterate over.

use crate::lab::Lab;
use crate::report::{Cell, CellError, Table};

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig25;
pub mod table1;
pub mod table2;
pub mod table3;

pub mod ext_alloc;
pub mod ext_assoc;
pub mod ext_burst;
pub mod ext_bytes;
pub mod ext_fault;
pub mod ext_l2;
pub mod ext_overhead;

pub(crate) mod policy_sweep;
pub(crate) mod victim_sweep;

/// Shared lab for the experiment test modules: one memoized
/// [`Lab`] at `Scale::Quick` across the whole test binary, so overlapping
/// sweeps are simulated once.
#[cfg(test)]
pub(crate) mod testlab {
    use std::sync::{Mutex, OnceLock};

    use cwp_trace::Scale;

    use crate::lab::Lab;

    /// Locks the shared quick-scale lab for one test's use.
    pub fn lock() -> std::sync::MutexGuard<'static, Lab> {
        static LAB: OnceLock<Mutex<Lab>> = OnceLock::new();
        LAB.get_or_init(|| Mutex::new(Lab::new(Scale::Quick)))
            .lock()
            // A test that failed an assertion while holding the lab does
            // not invalidate the memoized outcomes.
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A registered experiment: id, title, relative cost, and its runner.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Short id, e.g. `"fig13"` or `"table1"`.
    pub id: &'static str,
    /// The paper item it regenerates.
    pub title: &'static str,
    /// Expected relative cost in coarse units (1 = a handful of
    /// simulations, larger = multi-axis sweeps). The supervised runner
    /// multiplies its per-unit deadline by this, so slow-by-design
    /// experiments aren't misdiagnosed as hung.
    pub cost: u32,
    runner: fn(&mut Lab) -> Vec<Table>,
}

/// A structural sanity check over an experiment's output tables.
pub type TableCheck = fn(&[Table]) -> Result<(), CellError>;

impl Experiment {
    /// Runs the experiment in `lab`, returning its tables.
    pub fn run(&self, lab: &mut Lab) -> Vec<Table> {
        (self.runner)(lab)
    }

    /// The experiment's structural sanity check, if it declares one.
    ///
    /// Checks assert shape (expected rows and columns exist), not
    /// values, so they hold at every scale — individual cells may be
    /// legitimately `n/a` at tiny scales.
    pub fn check(&self) -> Option<TableCheck> {
        match self.id {
            "fig14" => Some(fig14::check),
            "fig22" => Some(fig22::check),
            "table3" => Some(table3::check),
            "ext_bytes" => Some(ext_bytes::check),
            _ => None,
        }
    }

    /// Runs the experiment and applies its sanity check, if any.
    ///
    /// # Errors
    ///
    /// Returns the check's [`CellError`] when the produced tables are
    /// structurally malformed.
    pub fn run_checked(&self, lab: &mut Lab) -> Result<Vec<Table>, CellError> {
        let tables = self.run(lab);
        if let Some(check) = self.check() {
            check(&tables)?;
        }
        Ok(tables)
    }
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Experiment({})", self.id)
    }
}

macro_rules! registry {
    ($($module:ident => ($title:expr, $cost:expr)),+ $(,)?) => {
        /// All experiments, in paper order.
        pub fn all() -> Vec<Experiment> {
            vec![$(Experiment {
                id: stringify!($module),
                title: $title,
                cost: $cost,
                runner: $module::run,
            }),+]
        }
    };
}

registry! {
    table1 => ("Test program characteristics", 2),
    fig01 => ("Write-back vs write-through behavior for 8KB caches", 2),
    fig02 => ("Write-back vs write-through behavior for 16B lines", 4),
    fig03 => ("Direct-mapped write-through and write-back pipelines", 2),
    fig04 => ("Delayed write method for write-back caches", 2),
    fig05 => ("Coalescing write buffer merges vs CPI", 2),
    fig06 => ("Write cache organization", 4),
    fig07 => ("Write cache absolute traffic reduction", 4),
    fig08 => ("Write cache traffic reduction relative to a 4KB write-back cache", 4),
    fig09 => ("Relative traffic reduction of a write cache vs write-back cache size", 4),
    fig10 => ("Write misses as a percent of all misses vs cache size for 16B lines", 4),
    fig11 => ("Write misses as a percent of all misses vs line size for 8KB caches", 3),
    fig12 => ("Write miss alternatives", 2),
    fig13 => ("Write miss rate reductions of three write strategies for 16B lines", 6),
    fig14 => ("Total miss rate reductions of three write strategies for 16B lines", 6),
    fig15 => ("Write miss rate reductions of three write strategies for 8KB caches", 4),
    fig16 => ("Total miss rate reduction of three write strategies for 8KB caches", 4),
    fig17 => ("Relative order of fetch traffic for write miss alternatives", 4),
    fig18 => ("Components of traffic vs cache size", 4),
    fig19 => ("Components of traffic vs cache line size", 3),
    fig20 => ("Percent of victims with dirty bytes vs cache size for 16B lines", 4),
    fig21 => ("Percent of bytes dirty in a dirty victim vs cache size for 16B lines", 4),
    fig22 => ("Percent of bytes dirty per victim vs cache size for 16B lines", 4),
    fig23 => ("Percent of victims with dirty bytes vs line size for 8KB caches", 3),
    fig24 => ("Percent of bytes dirty in a dirty victim vs line size for 8KB caches", 3),
    fig25 => ("Percent of bytes dirty per victim vs line size for 8KB caches", 3),
    table2 => ("Advantages and disadvantages of write-through and write-back caches", 1),
    table3 => ("Hardware requirements for high performance caches", 2),
    ext_burst => ("Extension: store and dirty-victim burstiness", 3),
    ext_alloc => ("Extension: oracle bound for cache-line allocation instructions", 3),
    ext_bytes => ("Extension: byte traffic and subblock dirty bits", 4),
    ext_assoc => ("Extension: write-miss policies under associativity", 6),
    ext_l2 => ("Extension: two-level hierarchy effects", 6),
    ext_overhead => ("Extension: SRAM bit budgets and error protection", 2),
    ext_fault => ("Extension: fault injection and error recovery", 4),
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

// ---------------------------------------------------------------------
// Shared sweep vocabulary
// ---------------------------------------------------------------------

/// The paper's cache-size sweep (bytes), 1KB..128KB.
pub const SIZES: [u32; 8] = [
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
];

/// The paper's line-size sweep (bytes), 4B..64B.
pub const LINES: [u32; 5] = [4, 8, 16, 32, 64];

/// Formats a size in bytes as the paper labels it ("8KB").
pub fn kb(bytes: u32) -> String {
    format!("{}KB", bytes / 1024)
}

/// Formats a line size ("16B").
pub fn b(bytes: u32) -> String {
    format!("{bytes}B")
}

/// Column headers: the six workloads plus "average".
pub fn workload_columns() -> Vec<String> {
    let mut cols: Vec<String> = crate::lab::WORKLOAD_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect();
    cols.push("average".to_string());
    cols
}

/// Builds a row of per-workload values followed by their arithmetic mean
/// (the paper averages the six benchmarks' percentages directly).
pub fn row_with_average(values: &[Option<f64>]) -> Vec<Cell> {
    let mut cells: Vec<Cell> = values.iter().map(|v| Cell::from(*v)).collect();
    let present: Vec<f64> = values.iter().flatten().copied().collect();
    cells.push(if present.is_empty() {
        Cell::Missing
    } else {
        Cell::Num(present.iter().sum::<f64>() / present.len() as f64)
    });
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 35, "3 tables + 25 figures + 7 extensions");
        for n in 1..=25 {
            assert!(
                ids.contains(&format!("fig{n:02}").as_str()),
                "missing fig{n:02}"
            );
        }
        for n in 1..=3 {
            assert!(ids.contains(&format!("table{n}").as_str()));
        }
    }

    #[test]
    fn by_id_finds_and_misses() {
        assert_eq!(by_id("fig13").unwrap().id, "fig13");
        assert!(by_id("fig99").is_none());
    }

    #[test]
    fn every_cost_is_positive() {
        for e in all() {
            assert!(e.cost >= 1, "{} has zero cost", e.id);
        }
    }

    #[test]
    fn declared_checks_resolve() {
        let checked: Vec<&str> = all()
            .iter()
            .filter(|e| e.check().is_some())
            .map(|e| e.id)
            .collect();
        assert_eq!(checked, ["fig14", "fig22", "table3", "ext_bytes"]);
    }

    #[test]
    fn run_checked_passes_on_a_quick_lab() {
        let mut lab = testlab::lock();
        for id in ["fig14", "ext_bytes"] {
            let e = by_id(id).unwrap();
            e.run_checked(&mut lab)
                .unwrap_or_else(|err| panic!("{id}: {err}"));
        }
    }

    #[test]
    fn averages_ignore_missing_values() {
        let cells = row_with_average(&[Some(10.0), None, Some(20.0)]);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[3].as_f64(), Some(15.0));
        let empty = row_with_average(&[None, None]);
        assert_eq!(empty[2].as_f64(), None);
    }

    #[test]
    fn label_helpers() {
        assert_eq!(kb(8192), "8KB");
        assert_eq!(b(16), "16B");
        assert_eq!(workload_columns().len(), 7);
    }
}
