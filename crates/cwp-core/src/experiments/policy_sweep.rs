//! Shared machinery for the write-miss policy comparisons (Figures 13-16).

use cwp_cache::{metrics, CacheConfig, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{row_with_average, workload_columns};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// The three alternatives compared against fetch-on-write, in the paper's
/// legend order.
pub const ALTERNATIVES: [WriteMissPolicy; 3] = [
    WriteMissPolicy::WriteValidate,
    WriteMissPolicy::WriteAround,
    WriteMissPolicy::WriteInvalidate,
];

/// Which reduction a sweep reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Figures 13/15: misses removed as a percentage of the baseline's
    /// *write* misses.
    WriteMisses,
    /// Figures 14/16: misses removed as a percentage of *all* baseline
    /// misses.
    TotalMisses,
}

/// A cache configuration for the write-miss studies: write-through hits
/// (so all four miss policies are legal and hit behaviour is shared) with
/// the given miss policy.
pub fn config(size: u32, line: u32, miss: WriteMissPolicy) -> CacheConfig {
    CacheConfig::builder()
        .size_bytes(size)
        .line_bytes(line)
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(miss)
        .build()
        .expect("sweep geometry is valid")
}

/// Builds one table per alternative policy over a sweep axis.
///
/// `points` are `(row_label, size_bytes, line_bytes)` triples.
pub fn reduction_tables(
    lab: &mut Lab,
    id: &str,
    title: &str,
    points: &[(String, u32, u32)],
    reduction: Reduction,
) -> Vec<Table> {
    // Prime the lab's memo with one fan-out replay pass per workload:
    // every (point, policy) pair below then hits the memo. With the
    // trace store disabled this is a no-op and the loops simulate as
    // they always did.
    let sweep: Vec<CacheConfig> = points
        .iter()
        .flat_map(|(_, size, line)| {
            std::iter::once(config(*size, *line, WriteMissPolicy::FetchOnWrite)).chain(
                ALTERNATIVES
                    .iter()
                    .map(move |&policy| config(*size, *line, policy)),
            )
        })
        .collect();
    for name in WORKLOAD_NAMES {
        lab.outcomes_sweep(name, &sweep);
    }
    ALTERNATIVES
        .iter()
        .map(|&policy| {
            let mut t = Table::new(
                format!("{id}/{policy}"),
                format!("{title} — {policy}"),
                "configuration",
            );
            t.columns(workload_columns());
            for (label, size, line) in points {
                let base_cfg = config(*size, *line, WriteMissPolicy::FetchOnWrite);
                let pol_cfg = config(*size, *line, policy);
                let values: Vec<Option<f64>> = WORKLOAD_NAMES
                    .iter()
                    .map(|name| {
                        let base = lab.outcome(name, &base_cfg);
                        let pol = lab.outcome(name, &pol_cfg);
                        let frac = match reduction {
                            Reduction::WriteMisses => {
                                metrics::write_miss_reduction(&base.stats, &pol.stats)
                            }
                            Reduction::TotalMisses => {
                                metrics::total_miss_reduction(&base.stats, &pol.stats)
                            }
                        };
                        frac.map(|f| f * 100.0)
                    })
                    .collect();
                t.row(label.clone(), row_with_average(&values));
            }
            t
        })
        .collect()
}

/// Sweep points over cache size at a fixed 16B line.
pub fn size_points() -> Vec<(String, u32, u32)> {
    crate::experiments::SIZES
        .iter()
        .map(|&s| (crate::experiments::kb(s), s, 16))
        .collect()
}

/// Sweep points over line size at a fixed 8KB capacity.
pub fn line_points() -> Vec<(String, u32, u32)> {
    crate::experiments::LINES
        .iter()
        .map(|&l| (crate::experiments::b(l), 8 * 1024, l))
        .collect()
}
