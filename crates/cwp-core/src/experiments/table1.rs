//! Table 1: test program characteristics.

use cwp_cache::CacheConfig;

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// Descriptions as Table 1 gives them.
const PROGRAM_TYPES: [&str; 6] = [
    "C compiler",
    "PC board CAD tool",
    "Unix utility",
    "PC board CAD tool",
    "numeric, 100x100",
    "Livermore loops 1-14",
];

/// Regenerates Table 1 at the lab's scale: dynamic instructions, data
/// reads, data writes, and total references per benchmark.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new("table1", "Test program characteristics", "program");
    t.columns([
        "dynamic instr.",
        "data reads",
        "data writes",
        "total refs.",
        "reads/write",
        "program type",
    ]);

    let config = CacheConfig::default();
    let mut totals = (0u64, 0u64, 0u64);
    for (i, name) in WORKLOAD_NAMES.iter().enumerate() {
        let out = lab.outcome(name, &config);
        let s = out.summary;
        totals.0 += s.instructions;
        totals.1 += s.reads;
        totals.2 += s.writes;
        t.row(
            *name,
            [
                Cell::Int(s.instructions),
                Cell::Int(s.reads),
                Cell::Int(s.writes),
                Cell::Int(s.total_refs()),
                Cell::Num(s.read_write_ratio()),
                PROGRAM_TYPES[i].into(),
            ],
        );
    }
    let (i, r, w) = totals;
    t.row(
        "total",
        [
            Cell::Int(i),
            Cell::Int(r),
            Cell::Int(w),
            Cell::Int(i + r + w),
            Cell::Num(r as f64 / w as f64),
            "".into(),
        ],
    );
    t.note(format!(
        "Counts are at scale '{}'; the paper's runs total 484.5M instructions with a 2.42 \
         overall read/write ratio. Total refs counts one instruction fetch per instruction, \
         as the paper does.",
        lab.scale()
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_and_overall_ratio() {
        let mut lab = crate::experiments::testlab::lock();
        let tables = run(&mut lab);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.len(), 7, "six programs plus a total row");
        // Paper: loads outnumber stores roughly 2.4:1 overall.
        let ratio = t.value("total", "reads/write").unwrap();
        assert!(
            (1.7..=3.2).contains(&ratio),
            "overall read/write ratio {ratio:.2}"
        );
    }
}
