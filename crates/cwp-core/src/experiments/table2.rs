//! Table 2: advantages and disadvantages of write-through and write-back
//! caches, with the quantitative rows measured.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_pipeline::{StorePipeline, StoreTiming};

use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{Cell, Table};

/// Regenerates Table 2. The qualitative rows carry the paper's judgements;
/// the traffic and cycles-per-write rows are measured on the six
/// workloads (8KB, 16B lines).
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "table2",
        "Write-through vs write-back (8KB, 16B lines; measured where quantitative)",
        "feature",
    );
    t.columns(["write-through", "write-back"]);

    // Measured: back-side transactions per instruction.
    let wt_cfg = CacheConfig::builder()
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .expect("default geometry");
    let wb_cfg = wt_cfg
        .to_builder()
        .write_hit(WriteHitPolicy::WriteBack)
        .build()
        .unwrap();
    let mut wt_tpi = 0.0;
    let mut wb_tpi = 0.0;
    for name in WORKLOAD_NAMES {
        let wt = lab.outcome(name, &wt_cfg);
        let wb = lab.outcome(name, &wb_cfg);
        wt_tpi += wt.transactions_per_instruction();
        wb_tpi += wb.transactions_per_instruction();
    }
    let n = WORKLOAD_NAMES.len() as f64;
    t.row(
        "traffic (txns/instr)",
        [
            Cell::Text(format!("- more ({:.4})", wt_tpi / n)),
            Cell::Text(format!("+ less ({:.4})", wb_tpi / n)),
        ],
    );

    t.row(
        "additional buffers",
        [
            Cell::Text("- write buffer needed".into()),
            Cell::Text("- dirty victim buffer needed".into()),
        ],
    );
    t.row(
        "bursty writes",
        [
            Cell::Text("- write buffer can overflow".into()),
            Cell::Text("+ OK unless misses with dirty victims".into()),
        ],
    );
    t.row(
        "single-bit error safe",
        [
            Cell::Text("+ with parity (no unique dirty data)".into()),
            Cell::Text("- only with ECC".into()),
        ],
    );
    t.row(
        "pipelining",
        [
            Cell::Text("+ same as loads if direct-mapped".into()),
            Cell::Text("- doesn't match".into()),
        ],
    );

    // Measured: cycles per write at the cache interface.
    let scale = lab.scale();
    let mut wt_cpw = 0.0;
    let mut wb_cpw = 0.0;
    for name in WORKLOAD_NAMES {
        let mut fast = StorePipeline::for_timing(StoreTiming::WriteThroughDirectMapped);
        lab.workload(name).run(scale, &mut fast);
        let mut slow = StorePipeline::for_timing(StoreTiming::ProbeThenWrite);
        lab.workload(name).run(scale, &mut slow);
        wt_cpw += 1.0;
        wb_cpw += 1.0 + slow.stats().interlock_cycles as f64 / slow.stats().stores as f64;
    }
    t.row(
        "cycles per write",
        [
            Cell::Text(format!("+ {:.2}", wt_cpw / n)),
            Cell::Text(format!("- {:.2} (incl. probe)", wb_cpw / n)),
        ],
    );
    t.note("Signs follow the paper's Table 2; numbers in parentheses are measured.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rows_favor_the_papers_signs() {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        assert_eq!(t.len(), 6, "six feature rows as in Table 2");
        let traffic_wt = match t.cell("traffic (txns/instr)", "write-through").unwrap() {
            Cell::Text(s) => s.clone(),
            other => panic!("unexpected cell {other:?}"),
        };
        assert!(traffic_wt.starts_with("- more"));
        // Extract the two numbers and check WT > WB.
        let grab = |s: &str| -> f64 {
            s.split('(')
                .nth(1)
                .unwrap()
                .trim_end_matches(')')
                .parse()
                .unwrap()
        };
        let wt = grab(&traffic_wt);
        let wb = match t.cell("traffic (txns/instr)", "write-back").unwrap() {
            Cell::Text(s) => grab(s),
            _ => unreachable!(),
        };
        assert!(
            wt > wb,
            "write-through traffic ({wt}) must exceed write-back ({wb})"
        );
    }
}
