//! Table 3: hardware requirements for high-performance write-back and
//! write-through caches, with each structure's measured effectiveness.

use cwp_buffers::{VictimBuffer, WriteCache};
use cwp_mem::MainMemory;
use cwp_pipeline::{StorePipeline, StoreTiming};

use crate::experiments::fig07::removed_percentages;
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::{require_table, Cell, CellError, Table};

/// Regenerates Table 3, annotating each required structure with a measured
/// effectiveness number from this repository's implementations.
pub fn run(lab: &mut Lab) -> Vec<Table> {
    let mut t = Table::new(
        "table3",
        "Hardware requirements for high-performance caches (measured effectiveness)",
        "feature",
    );
    t.columns(["write-back", "write-through"]);

    // Exit-traffic buffers: a single-entry dirty-victim register vs a
    // multi-entry write buffer. Run a real write-back cache over a
    // single-entry victim buffer and count how often the single entry
    // would have stalled.
    let mut forced = 0u64;
    let mut accepted = 0u64;
    let scale = lab.scale();
    for name in WORKLOAD_NAMES {
        let config = cwp_cache::CacheConfig::default();
        let vb = VictimBuffer::new(1, MainMemory::new());
        let mut cache = cwp_cache::Cache::new(config, vb);
        let mut sink = |r: cwp_trace::MemRef| {
            let len = r.size as usize;
            let buf = [0u8; 8];
            if r.is_write() {
                cache.write(r.addr, &buf[..len]);
            } else {
                let mut out = buf;
                cache.read(r.addr, &mut out[..len]);
            }
        };
        lab.workload(name).run(scale, &mut sink);
        let vb = cache.into_next_level();
        forced += vb.forced_drains();
        accepted += vb.accepted();
    }
    let overflow_pct = 100.0 * forced as f64 / accepted.max(1) as f64;
    t.row(
        "exit traffic buffer",
        [
            Cell::Text(format!(
                "dirty victim register ({overflow_pct:.1}% forced drains with 1 entry)"
            )),
            Cell::Text("write buffer (2-4 entries typical)".into()),
        ],
    );

    // Bandwidth improvement: delayed-write register vs write cache.
    let scale = lab.scale();
    let mut one_cycle = 0.0;
    for name in WORKLOAD_NAMES {
        let mut pipe = StorePipeline::for_timing(StoreTiming::DelayedWrite);
        lab.workload(name).run(scale, &mut pipe);
        one_cycle += pipe
            .stats()
            .two_cycle_store_fraction()
            .map_or(0.0, |f| (1.0 - f) * 100.0);
    }
    let wc5 = removed_percentages(lab, 5);
    let wc5_avg: f64 =
        wc5.iter().flatten().sum::<f64>() / wc5.iter().flatten().count().max(1) as f64;
    t.row(
        "bandwidth improvement",
        [
            Cell::Text(format!(
                "delayed write register ({:.1}% of stores 1-cycle)",
                one_cycle / WORKLOAD_NAMES.len() as f64
            )),
            Cell::Text(format!(
                "write cache (5 entries remove {wc5_avg:.1}% of writes)"
            )),
        ],
    );

    t.row(
        "other",
        [
            Cell::Text("cache line dirty bits".into()),
            Cell::Text("none".into()),
        ],
    );
    t.note(
        "Paper's point: the hardware for high-performance write-back and write-through \
         caches is surprisingly similar — single registers vs 3-5 entry buffers, offset \
         by the write-back cache's per-line dirty bits (Section 3.3).",
    );

    // Sanity check of the write-cache structure's pass-through behaviour
    // is covered in cwp-buffers; here we only report numbers.
    let _ = WriteCache::new(1, 8, MainMemory::new());
    vec![t]
}

/// Structural sanity check: the three feature rows exist under both
/// policy columns.
pub(crate) fn check(tables: &[Table]) -> Result<(), CellError> {
    let t = require_table(tables, 0, "table3")?;
    for row in ["exit traffic buffer", "bandwidth improvement", "other"] {
        for col in ["write-back", "write-through"] {
            t.require_cell(row, col)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reports_three_feature_rows_with_numbers() -> Result<(), CellError> {
        let mut lab = crate::experiments::testlab::lock();
        let t = &run(&mut lab)[0];
        assert_eq!(t.len(), 3);
        let bw = match t.require_cell("bandwidth improvement", "write-through")? {
            Cell::Text(s) => s.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(bw.contains("write cache"));
        assert!(bw.contains('%'));
        Ok(())
    }

    #[test]
    fn structural_check_passes_on_real_output() {
        let mut lab = crate::experiments::testlab::lock();
        check(&run(&mut lab)).unwrap();
        assert!(check(&[]).is_err());
    }
}
