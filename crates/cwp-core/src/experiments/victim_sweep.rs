//! Shared machinery for the dirty-victim statistics (Figures 20-25).

use cwp_cache::{CacheConfig, VictimStats, WriteHitPolicy, WriteMissPolicy};

use crate::experiments::{row_with_average, workload_columns};
use crate::lab::{Lab, WORKLOAD_NAMES};
use crate::report::Table;

/// Which victim percentage a figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimMetric {
    /// Figures 20/23: percent of victims with at least one dirty byte,
    /// cold stop (execution only).
    DirtyFractionColdStop,
    /// Figures 20/23 dotted lines: same, flush stop.
    DirtyFractionFlushStop,
    /// Figures 21/24: percent of bytes dirty within dirty victims.
    BytesDirtyInDirty,
    /// Figures 22/25: percent of bytes dirty over all victims (flush stop).
    BytesDirtyPerVictim,
}

impl VictimMetric {
    fn evaluate(self, cold: VictimStats, flush_inclusive: VictimStats, line: u32) -> Option<f64> {
        let frac = match self {
            VictimMetric::DirtyFractionColdStop => cold.dirty_fraction(),
            VictimMetric::DirtyFractionFlushStop => flush_inclusive.dirty_fraction(),
            VictimMetric::BytesDirtyInDirty => flush_inclusive.bytes_dirty_in_dirty_fraction(line),
            VictimMetric::BytesDirtyPerVictim => {
                flush_inclusive.bytes_dirty_per_victim_fraction(line)
            }
        };
        frac.map(|f| f * 100.0)
    }
}

/// The write-back configuration used by the victim studies.
pub fn config(size: u32, line: u32) -> CacheConfig {
    CacheConfig::builder()
        .size_bytes(size)
        .line_bytes(line)
        .write_hit(WriteHitPolicy::WriteBack)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .expect("sweep geometry is valid")
}

/// Builds one victim-statistics table over `points` =
/// `(row_label, size, line)`.
pub fn victim_table(
    lab: &mut Lab,
    id: &str,
    title: &str,
    x_label: &str,
    points: &[(String, u32, u32)],
    metric: VictimMetric,
) -> Table {
    let mut t = Table::new(id, title, x_label);
    t.columns(workload_columns());
    for (label, size, line) in points {
        let cfg = config(*size, *line);
        let values: Vec<Option<f64>> = WORKLOAD_NAMES
            .iter()
            .map(|name| {
                let out = lab.outcome(name, &cfg);
                metric.evaluate(out.stats.victims, out.stats.victims_with_flush(), *line)
            })
            .collect();
        t.row(label.clone(), row_with_average(&values));
    }
    t
}
