//! The [`Lab`]: memoized simulation runs shared across experiments.

use std::collections::HashMap;
use std::sync::Arc;

use cwp_cache::CacheConfig;
use cwp_obs::{obs_debug, obs_error};
use cwp_trace::{workloads, MemRef, Scale, TraceSink, Workload};

use crate::obs::{trace_replay, trace_simulation, TraceOptions};
use crate::sim::{
    replay, replay_audited, simulate, simulate_audited, simulate_many, simulate_many_audited,
    SimOutcome,
};
use crate::store::TraceStore;
use cwp_trace::RecordedTrace;

/// One store extracted from a trace, with its arrival time in instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEvent {
    /// Dynamic instruction count at which the store issues.
    pub cycle: u64,
    /// Byte address.
    pub addr: u64,
    /// Store width (4 or 8).
    pub size: u8,
}

/// A workload's store stream: the input to write buffers and write caches.
#[derive(Debug, Clone, Default)]
pub struct WriteStream {
    /// The stores, in program order.
    pub events: Vec<WriteEvent>,
    /// Total dynamic instructions in the run.
    pub instructions: u64,
}

impl TraceSink for WriteStream {
    fn record(&mut self, r: MemRef) {
        self.instructions += u64::from(r.before_insts);
        if r.is_write() {
            self.events.push(WriteEvent {
                cycle: self.instructions,
                addr: r.addr,
                size: r.size,
            });
        }
    }
}

/// The six benchmark names in Table 1 order.
pub const WORKLOAD_NAMES: [&str; 6] = ["ccom", "grr", "yacc", "met", "linpack", "liver"];

/// Tracing state carried by a [`Lab`] when [`Lab::enable_trace`] is on.
#[derive(Debug)]
struct TraceState {
    options: TraceOptions,
    /// Current experiment id; becomes a subdirectory of the trace root.
    context: String,
    /// Per-context run counter, used to order run directories.
    seq: u64,
    /// When set, only this workload's runs are traced.
    only: Option<String>,
}

/// Runs simulations on demand and memoizes the outcomes.
///
/// Figures share most of their underlying runs (e.g. Figures 10, 13, 14,
/// and 18 all need fetch-on-write sweeps over cache sizes), so the lab
/// keys results by `(workload, configuration)` and simulates each pair at
/// most once per scale. With [`Lab::enable_trace`], every actual run also
/// exports its event stream, windowed time series, and manifest to disk.
///
/// # Examples
///
/// ```
/// use cwp_cache::CacheConfig;
/// use cwp_core::Lab;
/// use cwp_trace::Scale;
///
/// let mut lab = Lab::new(Scale::Test);
/// let a = lab.outcome("yacc", &CacheConfig::default());
/// let b = lab.outcome("yacc", &CacheConfig::default());
/// assert_eq!(a.stats.accesses(), b.stats.accesses());
/// assert_eq!(lab.runs(), 1, "second call was memoized");
/// ```
pub struct Lab {
    scale: Scale,
    workloads: Vec<Box<dyn Workload>>,
    memo: HashMap<(String, CacheConfig), Arc<SimOutcome>>,
    streams: HashMap<String, Arc<WriteStream>>,
    runs: u64,
    trace: Option<TraceState>,
    store: Arc<TraceStore>,
    audit: bool,
}

impl Lab {
    /// Creates a lab over the six paper workloads at `scale`.
    pub fn new(scale: Scale) -> Self {
        Self::with_workloads(scale, workloads::suite())
    }

    /// Creates a lab over a custom workload set — e.g. `cwp-cpu` assembly
    /// programs, or a subset of the paper suite for faster sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or contains duplicate names.
    pub fn with_workloads(scale: Scale, workloads: Vec<Box<dyn Workload>>) -> Self {
        assert!(!workloads.is_empty(), "a lab needs at least one workload");
        let mut names = std::collections::HashSet::new();
        for w in &workloads {
            assert!(
                names.insert(w.name()),
                "duplicate workload name '{}'",
                w.name()
            );
        }
        Lab {
            scale,
            workloads,
            memo: HashMap::new(),
            streams: HashMap::new(),
            runs: 0,
            trace: None,
            store: Arc::new(TraceStore::new(scale)),
            audit: false,
        }
    }

    /// Turns on the runtime invariant audit: every untraced simulation
    /// runs with an [`cwp_verify::InvariantAuditor`] probe plus
    /// per-reference sub-block mask checks, and sweep banking is
    /// cross-checked against audited single replays. Outcomes are
    /// identical to unaudited runs — the audit observes, it never
    /// steers — so figures come out byte-for-byte the same.
    ///
    /// A violated invariant panics with the typed error's message;
    /// under the supervised runner that panic is isolated per job and
    /// turns into a failed-run exit status rather than a crash.
    pub fn enable_audit(&mut self) {
        self.audit = true;
    }

    /// Replaces the lab's private [`TraceStore`] with a shared one, so
    /// several labs (e.g. the runner's worker pool) record each
    /// workload once between them.
    ///
    /// # Panics
    ///
    /// Panics if `store` was built for a different scale.
    pub fn set_store(&mut self, store: Arc<TraceStore>) {
        assert!(
            store.scale() == self.scale,
            "trace store scale {} does not match lab scale {}",
            store.scale(),
            self.scale
        );
        self.store = store;
    }

    /// The trace store backing this lab's simulations.
    pub fn store(&self) -> &Arc<TraceStore> {
        &self.store
    }

    /// Turns on tracing: every non-memoized simulation also writes
    /// `events.jsonl` + `windows.csv` + `manifest.json` into
    /// `options.dir/<context>/<NN>-<workload>/`. Use
    /// [`Lab::set_trace_context`] to group runs by experiment id.
    pub fn enable_trace(&mut self, options: TraceOptions) {
        self.trace = Some(TraceState {
            options,
            context: "untagged".to_string(),
            seq: 0,
            only: None,
        });
    }

    /// Restricts tracing to a single workload; other workloads still
    /// simulate normally, just without artifacts. No-op when tracing is
    /// disabled.
    pub fn set_trace_filter(&mut self, workload: Option<&str>) {
        if let Some(trace) = &mut self.trace {
            trace.only = workload.map(str::to_string);
        }
    }

    /// Names the experiment that subsequent runs belong to (the
    /// subdirectory and the manifest's `experiment` field). Resets the
    /// per-context run counter. No-op when tracing is disabled.
    pub fn set_trace_context(&mut self, context: &str) {
        if let Some(trace) = &mut self.trace {
            trace.context = context.to_string();
            trace.seq = 0;
        }
    }

    /// The scale every simulation runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Number of actual (non-memoized) simulations performed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The workloads in Table 1 order.
    pub fn workload_names(&self) -> Vec<&'static str> {
        self.workloads.iter().map(|w| w.name()).collect()
    }

    /// Looks up a workload by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the six benchmarks.
    pub fn workload(&self, name: &str) -> &dyn Workload {
        self.workloads
            .iter()
            .find(|w| w.name() == name)
            .unwrap_or_else(|| panic!("unknown workload {name}"))
            .as_ref()
    }

    /// The simulation outcome for (`workload`, `config`), running it if
    /// not already memoized.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not one of the six benchmarks.
    pub fn outcome(&mut self, workload: &str, config: &CacheConfig) -> Arc<SimOutcome> {
        let key = (workload.to_string(), *config);
        if let Some(hit) = self.memo.get(&key) {
            return Arc::clone(hit);
        }
        let idx = self
            .workloads
            .iter()
            .position(|w| w.name() == workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        let outcome = Arc::new(self.run_one(idx, config));
        self.runs += 1;
        self.memo.insert(key, Arc::clone(&outcome));
        outcome
    }

    /// One actual simulation, traced when tracing is on and the workload
    /// passes the filter. A trace I/O failure is reported and the run
    /// falls back to the untraced path — figures still come out. The run
    /// replays the store's recording when one exists, and drives the
    /// generator live otherwise (store disabled or over budget).
    fn run_one(&mut self, idx: usize, config: &CacheConfig) -> SimOutcome {
        let w = self.workloads[idx].as_ref();
        let recording = self.store.get_or_record(w);
        let audit = self.audit;
        let scale = self.scale;
        let untraced = |rec: Option<&RecordedTrace>| match (audit, rec) {
            (false, Some(rec)) => replay(rec, config),
            (false, None) => simulate(w, scale, config),
            (true, Some(rec)) => replay_audited(rec, config).unwrap_or_else(|e| {
                panic!("invariant audit failed for {}/{config}: {e}", w.name())
            }),
            (true, None) => simulate_audited(w, scale, config).unwrap_or_else(|e| {
                panic!("invariant audit failed for {}/{config}: {e}", w.name())
            }),
        };
        let Some(trace) = &mut self.trace else {
            return untraced(recording.as_deref());
        };
        if trace.only.as_deref().is_some_and(|only| only != w.name()) {
            return untraced(recording.as_deref());
        }
        let dir =
            trace
                .options
                .dir
                .join(&trace.context)
                .join(format!("{:03}-{}", trace.seq, w.name()));
        trace.seq += 1;
        let context = trace.context.clone();
        let options = trace.options.clone();
        obs_debug!("tracing {context}: {} @ {config}", w.name());
        let traced = match recording.as_deref() {
            Some(rec) => trace_replay(w.name(), rec, self.scale, config, &context, &options, &dir),
            None => trace_simulation(w, self.scale, config, &context, &options, &dir),
        };
        match traced {
            Ok(run) => run.outcome,
            Err(e) => {
                obs_error!(
                    "trace of {context}/{} failed: {e}; rerunning untraced",
                    w.name()
                );
                untraced(recording.as_deref())
            }
        }
    }

    /// Outcomes for all six workloads under one configuration, in Table 1
    /// order.
    pub fn outcomes_all(&mut self, config: &CacheConfig) -> Vec<(&'static str, Arc<SimOutcome>)> {
        WORKLOAD_NAMES
            .iter()
            .map(|name| (*name, self.outcome(name, config)))
            .collect()
    }

    /// The workload's store stream (memoized): input for write buffers and
    /// write caches, which sit behind a write-through cache and therefore
    /// see every store. Derived by replaying the trace store's recording —
    /// not a second generator run — whenever one is available.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not one of the six benchmarks.
    pub fn write_stream(&mut self, workload: &str) -> Arc<WriteStream> {
        if let Some(hit) = self.streams.get(workload) {
            return Arc::clone(hit);
        }
        let w = self
            .workloads
            .iter()
            .find(|w| w.name() == workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        let mut stream = WriteStream::default();
        match self.store.get_or_record(w.as_ref()) {
            Some(rec) => {
                rec.replay(&mut stream);
            }
            None => {
                w.run(self.scale, &mut stream);
            }
        }
        let stream = Arc::new(stream);
        self.streams
            .insert(workload.to_string(), Arc::clone(&stream));
        stream
    }

    /// Outcomes for one workload across a whole configuration sweep,
    /// in `configs` order.
    ///
    /// Equivalent to calling [`Lab::outcome`] per configuration — same
    /// outcomes, same memoization, same run accounting — but when a
    /// recording is available and several configurations are missing
    /// from the memo, they are simulated in a single replay pass
    /// ([`simulate_many`]) instead of one pass each. Traced runs keep
    /// the per-configuration path so every run directory still appears.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not one of the six benchmarks.
    pub fn outcomes_sweep(
        &mut self,
        workload: &str,
        configs: &[CacheConfig],
    ) -> Vec<Arc<SimOutcome>> {
        let mut missing: Vec<CacheConfig> = Vec::new();
        for config in configs {
            let key = (workload.to_string(), *config);
            if !self.memo.contains_key(&key) && !missing.contains(config) {
                missing.push(*config);
            }
        }
        let tracing_this = self
            .trace
            .as_ref()
            .is_some_and(|trace| trace.only.as_deref().is_none_or(|only| only == workload));
        if missing.len() > 1 && !tracing_this {
            let w = self.workload(workload);
            if let Some(rec) = self.store.get_or_record(w) {
                let outcomes = if self.audit {
                    simulate_many_audited(&rec, &missing).unwrap_or_else(|e| {
                        panic!("invariant audit failed for {workload} sweep: {e}")
                    })
                } else {
                    simulate_many(&rec, &missing)
                };
                for (config, outcome) in missing.iter().zip(outcomes) {
                    self.runs += 1;
                    self.memo
                        .insert((workload.to_string(), *config), Arc::new(outcome));
                }
            }
        }
        configs
            .iter()
            .map(|config| self.outcome(workload, config))
            .collect()
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab")
            .field("scale", &self.scale)
            .field("memoized", &self.memo.len())
            .field("runs", &self.runs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labs_move_across_threads() {
        // The supervised runner gives each worker thread its own Lab;
        // this assertion pins the Send bound that design relies on.
        fn assert_send<T: Send>() {}
        assert_send::<Lab>();
    }

    #[test]
    fn memoization_avoids_rework() {
        let mut lab = Lab::new(Scale::Test);
        let cfg = CacheConfig::default();
        lab.outcome("ccom", &cfg);
        lab.outcome("ccom", &cfg);
        let other = CacheConfig::builder().size_bytes(4096).build().unwrap();
        lab.outcome("ccom", &other);
        assert_eq!(lab.runs(), 2);
    }

    #[test]
    fn outcomes_all_covers_the_suite_in_order() {
        let mut lab = Lab::new(Scale::Test);
        let all = lab.outcomes_all(&CacheConfig::default());
        let names: Vec<&str> = all.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, WORKLOAD_NAMES);
        assert_eq!(lab.runs(), 6);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let mut lab = Lab::new(Scale::Test);
        lab.outcome("cobol", &CacheConfig::default());
    }

    #[test]
    fn custom_workload_sets_are_supported() {
        let mut lab = Lab::with_workloads(Scale::Test, vec![workloads::yacc(), workloads::liver()]);
        assert_eq!(lab.workload_names(), ["yacc", "liver"]);
        let out = lab.outcome("yacc", &CacheConfig::default());
        assert!(out.stats.accesses() > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate workload name")]
    fn duplicate_workloads_are_rejected() {
        let _ = Lab::with_workloads(Scale::Test, vec![workloads::yacc(), workloads::yacc()]);
    }

    #[test]
    fn audited_lab_reproduces_unaudited_outcomes() {
        let cfg_a = CacheConfig::default();
        let cfg_b = CacheConfig::builder().size_bytes(1024).build().unwrap();
        let mut plain = Lab::new(Scale::Test);
        let mut audited = Lab::new(Scale::Test);
        audited.enable_audit();
        // Sweep path (banked, cross-checked) and single-outcome path.
        let want = plain.outcomes_sweep("grr", &[cfg_a, cfg_b]);
        let got = audited.outcomes_sweep("grr", &[cfg_a, cfg_b]);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.stats, g.stats);
            assert_eq!(w.traffic_total, g.traffic_total);
        }
        assert_eq!(
            plain.outcome("yacc", &cfg_a).stats,
            audited.outcome("yacc", &cfg_a).stats
        );
    }

    #[test]
    fn traced_lab_writes_validating_run_dirs() {
        let root = std::env::temp_dir().join(format!("cwp-lab-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut lab = Lab::new(Scale::Test);
        lab.enable_trace(TraceOptions::new(&root));
        lab.set_trace_context("fig99");
        lab.outcome("ccom", &CacheConfig::default());
        lab.outcome("ccom", &CacheConfig::default()); // memoized: no second dir
        let reports = cwp_obs::schema::validate_trace_dir(&root).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].dir.ends_with("fig99/000-ccom"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn trace_filter_skips_other_workloads() {
        let root = std::env::temp_dir().join(format!("cwp-lab-filter-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut lab = Lab::new(Scale::Test);
        lab.enable_trace(TraceOptions::new(&root));
        lab.set_trace_filter(Some("yacc"));
        lab.set_trace_context("fig98");
        lab.outcome("ccom", &CacheConfig::default());
        lab.outcome("yacc", &CacheConfig::default());
        let reports = cwp_obs::schema::validate_trace_dir(&root).unwrap();
        assert_eq!(reports.len(), 1, "only yacc is traced");
        assert!(reports[0].dir.ends_with("fig98/000-yacc"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn write_streams_are_memoized_and_monotonic() {
        let mut lab = Lab::new(Scale::Test);
        let s1 = lab.write_stream("liver");
        let s2 = lab.write_stream("liver");
        assert!(Arc::ptr_eq(&s1, &s2));
        assert!(!s1.events.is_empty());
        assert!(s1.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(s1.instructions >= s1.events.len() as u64);
    }

    #[test]
    fn derived_write_stream_matches_a_generator_fed_one() {
        for name in WORKLOAD_NAMES {
            // Replay-derived (store enabled, the default)...
            let mut lab = Lab::new(Scale::Test);
            let derived = lab.write_stream(name);
            assert_eq!(lab.store().recordings(), 1, "{name} derived from replay");
            // ...versus generator-fed (store disabled).
            let mut direct = WriteStream::default();
            workloads::by_name(name)
                .unwrap()
                .run(Scale::Test, &mut direct);
            assert_eq!(derived.events, direct.events, "{name} events differ");
            assert_eq!(
                derived.instructions, direct.instructions,
                "{name} instruction count differs"
            );
        }
    }

    #[test]
    fn disabled_store_falls_back_to_live_generation() {
        let mut lab = Lab::new(Scale::Test);
        lab.set_store(Arc::new(TraceStore::disabled(Scale::Test)));
        let out = lab.outcome("grr", &CacheConfig::default());
        assert!(out.stats.accesses() > 0);
        let stream = lab.write_stream("grr");
        assert!(!stream.events.is_empty());
        assert_eq!(lab.store().recordings(), 0);
    }

    #[test]
    fn replaying_labs_match_regenerating_labs() {
        let cfg = CacheConfig::default();
        let mut replaying = Lab::new(Scale::Test);
        let mut regenerating = Lab::new(Scale::Test);
        regenerating.set_store(Arc::new(TraceStore::disabled(Scale::Test)));
        let a = replaying.outcome("met", &cfg);
        let b = regenerating.outcome("met", &cfg);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.traffic_total, b.traffic_total);
    }

    #[test]
    fn sweeps_match_individual_outcomes_with_identical_accounting() {
        let configs: Vec<CacheConfig> = [1024u32, 4096, 16384]
            .iter()
            .map(|&s| CacheConfig::builder().size_bytes(s).build().unwrap())
            .collect();
        let mut swept = Lab::new(Scale::Test);
        let fanned = swept.outcomes_sweep("yacc", &configs);
        let mut individual = Lab::new(Scale::Test);
        for (config, outcome) in configs.iter().zip(&fanned) {
            let solo = individual.outcome("yacc", config);
            assert_eq!(outcome.stats, solo.stats);
            assert_eq!(outcome.traffic_total, solo.traffic_total);
        }
        assert_eq!(swept.runs(), individual.runs(), "run accounting preserved");
        // Repeating the sweep is fully memoized.
        swept.outcomes_sweep("yacc", &configs);
        assert_eq!(swept.runs(), configs.len() as u64);
    }

    #[test]
    fn a_shared_store_records_once_across_labs() {
        let store = Arc::new(TraceStore::new(Scale::Test));
        let cfg = CacheConfig::default();
        let mut lab1 = Lab::new(Scale::Test);
        lab1.set_store(Arc::clone(&store));
        let mut lab2 = Lab::new(Scale::Test);
        lab2.set_store(Arc::clone(&store));
        let a = lab1.outcome("linpack", &cfg);
        let b = lab2.outcome("linpack", &cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(store.recordings(), 1, "second lab reused the recording");
    }

    #[test]
    #[should_panic(expected = "does not match lab scale")]
    fn scale_mismatched_stores_are_rejected() {
        let mut lab = Lab::new(Scale::Test);
        lab.set_store(Arc::new(TraceStore::new(Scale::Quick)));
    }
}
