//! Experiment drivers for the `cwp` reproduction of Jouppi's
//! *"Cache Write Policies and Performance"* (WRL 91/12 / ISCA 1993).
//!
//! Every table and figure in the paper's evaluation has a module under
//! [`experiments`] that regenerates it from the synthetic workloads in
//! `cwp-trace` and the simulators in `cwp-cache`, `cwp-buffers`, and
//! `cwp-pipeline`. The `figures` binary prints any of them:
//!
//! ```text
//! cargo run --release -p cwp-core --bin figures -- --scale quick fig13
//! cargo run --release -p cwp-core --bin figures -- all
//! ```
//!
//! The building blocks are reusable:
//!
//! * [`sim::simulate`] runs one workload through one cache configuration
//!   and returns stats plus back-side traffic.
//! * [`lab::Lab`] memoizes simulation outcomes across experiments so a
//!   full figure run never simulates the same (workload, configuration)
//!   pair twice.
//! * [`report::Table`] renders results as aligned text, markdown, or CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod experiments;
pub mod lab;
pub mod obs;
pub mod report;
pub mod runner;
pub mod sim;
pub mod store;
pub mod supervise;

pub use lab::{Lab, WriteEvent, WriteStream};
pub use obs::{trace_replay, trace_simulation, TraceOptions, TracedRun};
pub use report::{require_table, Cell, CellError, CellErrorKind, Table};
pub use runner::{Job, JobOutcome, JobResult, RunSummary, Runner, RunnerConfig};
pub use sim::{
    replay, replay_audited, replay_cancellable, replay_probed, simulate, simulate_audited,
    simulate_many, simulate_many_audited, simulate_many_cancellable, simulate_probed, SimOutcome,
};
pub use store::TraceStore;
pub use supervise::{backoff_delay, CancelToken, Supervisor};
