//! Traced simulation runs: event streams, windowed time series, and
//! run manifests.
//!
//! [`trace_simulation`] is [`crate::sim::simulate`] with full
//! observability attached: a [`JsonlWriter`] records the typed event
//! stream and a [`WindowSampler`] aggregates it into per-window rows.
//! Three artifacts land in the run directory:
//!
//! - `events.jsonl` — one JSON object per event, `seq`-numbered;
//! - `windows.csv` — one row per `window` accesses (plus a trailing
//!   row for the partial window and the final flush);
//! - `manifest.json` — a [`RunManifest`] with the configuration, seed,
//!   git revision, wall time, counter totals, and a `reconciled` flag.
//!
//! The `reconciled` flag is the subsystem's integrity check: the
//! sampler's per-window sums must equal the run's [`CacheStats`] and
//! `Traffic` totals *exactly* — same counters, two independent paths.
//! `validate_trace` refuses any run directory where it is false.

use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use cwp_cache::{CacheConfig, CacheStats};
use cwp_mem::Traffic;
use cwp_obs::{obs_warn, JsonlWriter, RunManifest, Tee, WindowRow, WindowSampler};
use cwp_trace::{RecordedTrace, Scale, Workload};

use crate::sim::{replay_probed, simulate_probed, SimOutcome};

/// Where and how finely to trace.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Root directory for run artifacts (created if absent).
    pub dir: PathBuf,
    /// Sampler window, in front-side accesses.
    pub window: u64,
    /// Cap on JSONL events written; excess events are counted as
    /// dropped (the windowed CSV is never capped). `None` = unlimited.
    pub max_events: Option<u64>,
}

impl TraceOptions {
    /// Trace into `dir` with the default window of 4096 accesses and
    /// a one-million-event JSONL cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TraceOptions {
            dir: dir.into(),
            window: 4096,
            max_events: Some(1_000_000),
        }
    }
}

/// One traced run: the simulation outcome plus its manifest.
#[derive(Debug)]
pub struct TracedRun {
    /// What the simulation produced, exactly as the untraced path would.
    pub outcome: SimOutcome,
    /// The manifest written to `manifest.json`.
    pub manifest: RunManifest,
    /// The run directory holding the three artifacts.
    pub dir: PathBuf,
}

/// Compares the sampler's window sums against the run's end-of-run
/// counters. Returns the mismatches as `(counter, window_sum, total)`
/// triples — empty means the trace reconciles.
fn reconcile(sums: &WindowRow, stats: &CacheStats, traffic: &Traffic) -> Vec<(String, u64, u64)> {
    let flush = stats.flush;
    let checks: [(&str, u64, u64); 24] = [
        ("accesses", sums.refs, stats.accesses()),
        ("reads", sums.reads, stats.reads),
        ("writes", sums.writes, stats.writes),
        ("read_hits", sums.read_hits, stats.read_hits),
        ("read_misses", sums.read_misses, stats.read_misses),
        (
            "partial_read_misses",
            sums.partial_read_misses,
            stats.partial_read_misses,
        ),
        ("write_hits", sums.write_hits, stats.write_hits),
        ("write_misses", sums.write_misses, stats.write_misses),
        (
            "writes_to_dirty",
            sums.writes_to_dirty,
            stats.writes_to_dirty,
        ),
        ("fetches", sums.demand_fetches, stats.fetches),
        ("invalidations", sums.invalidations, stats.invalidations),
        (
            "line_allocations",
            sums.line_allocations,
            stats.line_allocations,
        ),
        ("victims", sums.victims, stats.victims.total),
        ("victims_dirty", sums.victims_dirty, stats.victims.dirty),
        (
            "victim_dirty_bytes",
            sums.victim_dirty_bytes,
            stats.victims.dirty_bytes,
        ),
        ("flush_victims", sums.flush_victims, flush.total),
        ("flush_dirty", sums.flush_dirty, flush.dirty),
        (
            "flush_dirty_bytes",
            sums.flush_dirty_bytes,
            flush.dirty_bytes,
        ),
        ("fetch_txns", sums.fetch_txns, traffic.fetch.transactions),
        ("fetch_bytes", sums.fetch_bytes, traffic.fetch.bytes),
        (
            "write_back_txns",
            sums.write_back_txns,
            traffic.write_back.transactions,
        ),
        (
            "write_back_bytes",
            sums.write_back_bytes,
            traffic.write_back.bytes,
        ),
        (
            "write_through_txns",
            sums.write_through_txns,
            traffic.write_through.transactions,
        ),
        (
            "write_through_bytes",
            sums.write_through_bytes,
            traffic.write_through.bytes,
        ),
    ];
    checks
        .iter()
        .filter(|(_, a, b)| a != b)
        .map(|(k, a, b)| (k.to_string(), *a, *b))
        .collect()
}

/// End-of-run totals recorded in the manifest for quick inspection
/// (and for `validate_trace`'s refs-sum cross-check).
fn manifest_totals(stats: &CacheStats, traffic: &Traffic) -> Vec<(String, u64)> {
    [
        ("accesses", stats.accesses()),
        ("reads", stats.reads),
        ("writes", stats.writes),
        ("misses", stats.total_misses()),
        ("fetches", stats.fetches),
        ("backside_txns", traffic.total_transactions()),
        ("backside_bytes", traffic.total_bytes()),
        ("victims_dirty_bytes", stats.victims.dirty_bytes),
        ("flush_dirty_bytes", stats.flush.dirty_bytes),
        ("faults_injected", stats.faults.injected),
        ("data_loss_events", stats.faults.data_loss_events),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

/// Runs `workload` through `config` with tracing attached and writes
/// `events.jsonl`, `windows.csv`, and `manifest.json` into `dir`.
///
/// The simulation itself is identical to [`crate::sim::simulate`] —
/// same flush-stop accounting, same statistics — only observed.
///
/// # Errors
///
/// Fails on I/O errors creating or writing the run artifacts.
pub fn trace_simulation(
    workload: &dyn Workload,
    scale: Scale,
    config: &CacheConfig,
    experiment: &str,
    options: &TraceOptions,
    dir: &Path,
) -> io::Result<TracedRun> {
    trace_driver(
        workload.name(),
        scale,
        config,
        experiment,
        options,
        dir,
        |probe| simulate_probed(workload, scale, config, probe),
    )
}

/// As [`trace_simulation`], but driven by a pre-recorded trace. The
/// artifacts and outcome are identical to tracing a live run of the
/// workload the trace was recorded from — `name` should be that
/// workload's name, since the recording itself carries none.
///
/// # Errors
///
/// Fails on I/O errors creating or writing the run artifacts.
pub fn trace_replay(
    name: &str,
    trace: &RecordedTrace,
    scale: Scale,
    config: &CacheConfig,
    experiment: &str,
    options: &TraceOptions,
    dir: &Path,
) -> io::Result<TracedRun> {
    trace_driver(name, scale, config, experiment, options, dir, |probe| {
        replay_probed(trace, config, probe)
    })
}

type TraceProbe = Tee<WindowSampler, JsonlWriter<BufWriter<fs::File>>>;

/// The shared body of [`trace_simulation`] and [`trace_replay`]:
/// `drive` runs the actual simulation with the probe attached; this
/// function owns artifact creation, reconciliation, and the manifest.
fn trace_driver(
    workload_name: &str,
    scale: Scale,
    config: &CacheConfig,
    experiment: &str,
    options: &TraceOptions,
    dir: &Path,
    drive: impl FnOnce(TraceProbe) -> (SimOutcome, TraceProbe),
) -> io::Result<TracedRun> {
    fs::create_dir_all(dir)?;
    let events_file = BufWriter::new(fs::File::create(dir.join("events.jsonl"))?);
    let sampler = WindowSampler::new(options.window, u64::from(config.lines()));
    let writer = JsonlWriter::new(events_file, options.max_events);
    let probe = Tee::new(sampler, writer);

    let started = Instant::now();
    let (outcome, probe) = drive(probe);
    let wall_ms = started.elapsed().as_millis() as u64;

    let Tee {
        a: mut sampler,
        b: writer,
    } = probe;
    sampler.finish();

    let mismatches = reconcile(&sampler.totals(), &outcome.stats, &outcome.traffic_total);
    for (counter, window_sum, total) in &mismatches {
        obs_warn!(
            "{}/{}: window sums for {counter} give {window_sum}, run total is {total}",
            experiment,
            workload_name
        );
    }

    let events_written = writer.written();
    let events_dropped = writer.dropped();
    writer.finish()?.flush()?;

    fs::write(dir.join("windows.csv"), sampler.to_csv())?;

    let manifest = RunManifest {
        experiment: experiment.to_string(),
        workload: workload_name.to_string(),
        scale: scale.to_string(),
        config: config.to_string(),
        seed: config.fault_seed(),
        git_rev: cwp_obs::git_revision(dir),
        wall_ms,
        window: options.window,
        windows: sampler.rows().len() as u64,
        events_written,
        events_dropped,
        totals: manifest_totals(&outcome.stats, &outcome.traffic_total),
        reconciled: mismatches.is_empty(),
        outcome: Some("ok".to_string()),
    };
    let mut text = manifest.to_json().to_string();
    text.push('\n');
    // Write-then-rename: the manifest is the last artifact written, so a
    // run directory either has a complete manifest or none at all — a
    // SIGKILL mid-run leaves a partial dir that `validate_trace` skips
    // (and a resumed run re-traces) instead of a corrupt manifest.
    let tmp = dir.join("manifest.json.tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, dir.join("manifest.json"))?;

    Ok(TracedRun {
        outcome,
        manifest,
        dir: dir.to_path_buf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_cache::{WriteHitPolicy, WriteMissPolicy};
    use cwp_obs::schema::validate_run_dir;
    use cwp_trace::workloads;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwp-obs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn traced_run_reconciles_and_validates() {
        let root = tmp_dir("reconcile");
        let options = TraceOptions::new(&root);
        let run = trace_simulation(
            workloads::ccom().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
            "unit",
            &options,
            &root.join("unit/ccom"),
        )
        .unwrap();
        assert!(run.manifest.reconciled, "window sums must match totals");
        assert_eq!(run.manifest.events_dropped, 0);
        let report = validate_run_dir(&run.dir).unwrap();
        assert_eq!(report.total_refs, run.outcome.stats.accesses());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn traced_outcome_matches_untraced_simulation() {
        let root = tmp_dir("match");
        let config = CacheConfig::builder()
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::WriteAround)
            .build()
            .unwrap();
        let plain = crate::sim::simulate(workloads::yacc().as_ref(), Scale::Test, &config);
        let traced = trace_simulation(
            workloads::yacc().as_ref(),
            Scale::Test,
            &config,
            "unit",
            &TraceOptions::new(&root),
            &root.join("unit/yacc"),
        )
        .unwrap();
        assert_eq!(
            traced.outcome.stats, plain.stats,
            "probing must not perturb"
        );
        assert_eq!(traced.outcome.traffic_total, plain.traffic_total);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn traced_replay_matches_traced_live_run() {
        let root = tmp_dir("replay");
        let config = CacheConfig::default();
        let w = workloads::met();
        let live = trace_simulation(
            w.as_ref(),
            Scale::Test,
            &config,
            "unit",
            &TraceOptions::new(&root),
            &root.join("live/met"),
        )
        .unwrap();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let replayed = trace_replay(
            w.name(),
            &trace,
            Scale::Test,
            &config,
            "unit",
            &TraceOptions::new(&root),
            &root.join("replay/met"),
        )
        .unwrap();
        assert!(replayed.manifest.reconciled);
        assert_eq!(replayed.outcome.stats, live.outcome.stats);
        assert_eq!(replayed.outcome.traffic_total, live.outcome.traffic_total);
        assert_eq!(replayed.manifest.workload, live.manifest.workload);
        assert_eq!(replayed.manifest.totals, live.manifest.totals);
        assert_eq!(replayed.manifest.windows, live.manifest.windows);
        validate_run_dir(&replayed.dir).unwrap();
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn event_cap_drops_but_still_reconciles() {
        let root = tmp_dir("cap");
        let mut options = TraceOptions::new(&root);
        options.max_events = Some(100);
        let run = trace_simulation(
            workloads::liver().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
            "unit",
            &options,
            &root.join("unit/liver"),
        )
        .unwrap();
        assert_eq!(run.manifest.events_written, 100);
        assert!(run.manifest.events_dropped > 0);
        assert!(
            run.manifest.reconciled,
            "the sampler sees every event regardless of the JSONL cap"
        );
        fs::remove_dir_all(&root).unwrap();
    }
}
