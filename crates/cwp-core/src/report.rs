//! Result tables: the textual form of every regenerated figure.

use std::fmt;

/// One cell of a result table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A numeric result, rendered with two decimals.
    Num(f64),
    /// An integer count.
    Int(u64),
    /// Free text.
    Text(String),
    /// No data (e.g. a denominator was zero).
    Missing,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            // A non-finite number means a denominator was zero somewhere
            // upstream; render it like missing data rather than "NaN".
            Cell::Num(v) if !v.is_finite() => "n/a".to_string(),
            Cell::Num(v) => format!("{v:.2}"),
            Cell::Int(v) => v.to_string(),
            Cell::Text(s) => s.clone(),
            Cell::Missing => "n/a".to_string(),
        }
    }

    /// The numeric value, if the cell holds a finite one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Num(v) if v.is_finite() => Some(*v),
            Cell::Num(_) => None,
            Cell::Int(v) => Some(*v as f64),
            _ => None,
        }
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

impl From<Option<f64>> for Cell {
    fn from(v: Option<f64>) -> Self {
        v.map_or(Cell::Missing, Cell::Num)
    }
}

/// What went wrong looking up a table cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellErrorKind {
    /// No table with the expected id at the expected position.
    NoSuchTable,
    /// The row key is absent.
    NoSuchRow,
    /// The column header is absent.
    NoSuchColumn,
    /// The cell exists but holds no finite number.
    NotNumeric,
}

/// A typed lookup failure: which table, row, and column disappointed.
///
/// Experiment sanity checks use this instead of `unwrap()` chains so a
/// malformed table surfaces as a diagnosable error (and, under the
/// supervised runner, as a retried/failed job) rather than a bare
/// `Option::unwrap` panic with no context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Table id the lookup ran against.
    pub table: String,
    /// Row key sought (empty for table-level failures).
    pub row: String,
    /// Column name sought (empty for table-level failures).
    pub column: String,
    /// What specifically was wrong.
    pub kind: CellErrorKind,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CellErrorKind::NoSuchTable => write!(f, "table {:?} not found", self.table),
            CellErrorKind::NoSuchRow => {
                write!(f, "table {:?}: no row {:?}", self.table, self.row)
            }
            CellErrorKind::NoSuchColumn => {
                write!(f, "table {:?}: no column {:?}", self.table, self.column)
            }
            CellErrorKind::NotNumeric => write!(
                f,
                "table {:?}: cell [{:?}, {:?}] is not a finite number",
                self.table, self.row, self.column
            ),
        }
    }
}

impl std::error::Error for CellError {}

/// Fetches `tables[index]`, checking it carries the expected id.
///
/// # Errors
///
/// Returns [`CellErrorKind::NoSuchTable`] when the index is out of
/// range or the id differs.
pub fn require_table<'t>(
    tables: &'t [Table],
    index: usize,
    id: &str,
) -> Result<&'t Table, CellError> {
    match tables.get(index) {
        Some(t) if t.id() == id => Ok(t),
        _ => Err(CellError {
            table: id.to_string(),
            row: String::new(),
            column: String::new(),
            kind: CellErrorKind::NoSuchTable,
        }),
    }
}

/// A labelled grid of results; one per regenerated table or figure.
///
/// # Examples
///
/// ```
/// use cwp_core::report::Table;
///
/// let mut t = Table::new("fig99", "A demo", "x");
/// t.columns(["alpha", "beta"]);
/// t.row("1", [1.0.into(), 2.0.into()]);
/// assert!(t.to_markdown().contains("alpha"));
/// assert!(t.to_csv().starts_with("x,alpha,beta"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    id: String,
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<Cell>)>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with an experiment id (e.g. `"fig13"`), a
    /// human title, and the label of the row-key column.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the data column headers.
    pub fn columns<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, names: I) -> &mut Self {
        self.columns = names.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the column count.
    pub fn row<I: IntoIterator<Item = Cell>>(
        &mut self,
        key: impl Into<String>,
        cells: I,
    ) -> &mut Self {
        let cells: Vec<Cell> = cells.into_iter().collect();
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the {} columns",
            self.columns.len()
        );
        self.rows.push((key.into(), cells));
        self
    }

    /// Appends a free-text note rendered under the table.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// The experiment id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a cell by row key and column name.
    pub fn cell(&self, row_key: &str, column: &str) -> Option<&Cell> {
        let col = self.columns.iter().position(|c| c == column)?;
        let (_, cells) = self.rows.iter().find(|(k, _)| k == row_key)?;
        cells.get(col)
    }

    /// Numeric value of a cell, if present.
    pub fn value(&self, row_key: &str, column: &str) -> Option<f64> {
        self.cell(row_key, column)?.as_f64()
    }

    /// Looks up a cell by row key and column name, with a typed error
    /// naming whichever of the three lookups failed.
    ///
    /// # Errors
    ///
    /// [`CellErrorKind::NoSuchRow`] / [`CellErrorKind::NoSuchColumn`]
    /// when the key or header is absent.
    pub fn require_cell(&self, row_key: &str, column: &str) -> Result<&Cell, CellError> {
        let err = |kind| CellError {
            table: self.id.clone(),
            row: row_key.to_string(),
            column: column.to_string(),
            kind,
        };
        let col = self
            .columns
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| err(CellErrorKind::NoSuchColumn))?;
        let (_, cells) = self
            .rows
            .iter()
            .find(|(k, _)| k == row_key)
            .ok_or_else(|| err(CellErrorKind::NoSuchRow))?;
        cells
            .get(col)
            .ok_or_else(|| err(CellErrorKind::NoSuchColumn))
    }

    /// Numeric value of a cell, with a typed error instead of `None`.
    ///
    /// # Errors
    ///
    /// As [`Table::require_cell`], plus [`CellErrorKind::NotNumeric`]
    /// when the cell exists but holds no finite number.
    pub fn require_value(&self, row_key: &str, column: &str) -> Result<f64, CellError> {
        self.require_cell(row_key, column)?
            .as_f64()
            .ok_or_else(|| CellError {
                table: self.id.clone(),
                row: row_key.to_string(),
                column: column.to_string(),
                kind: CellErrorKind::NotNumeric,
            })
    }

    /// Iterates over `(row_key, cells)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Cell])> {
        self.rows.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Renders a GitHub-flavored markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |", self.x_label));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str(&"|---".repeat(self.columns.len() + 1));
        out.push_str("|\n");
        for (key, cells) in &self.rows {
            out.push_str(&format!("| {key} |"));
            for c in cells {
                out.push_str(&format!(" {} |", c.render()));
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }

    /// Renders comma-separated values (header row first, notes omitted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = escape(&self.x_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(&escape(c));
        }
        out.push('\n');
        for (key, cells) in &self.rows {
            out.push_str(&escape(key));
            for c in cells {
                out.push(',');
                out.push_str(&escape(&c.render()));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig00", "Sample", "size");
        t.columns(["a", "b"]);
        t.row("1KB", [Cell::Num(1.5), Cell::Missing]);
        t.row("2KB", [Cell::Int(3), "x".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn lookups_by_key_and_column() {
        let t = sample();
        assert_eq!(t.value("1KB", "a"), Some(1.5));
        assert_eq!(t.value("2KB", "a"), Some(3.0));
        assert_eq!(t.value("1KB", "b"), None);
        assert_eq!(t.cell("9KB", "a"), None);
        assert_eq!(t.cell("1KB", "zzz"), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn require_helpers_name_the_failing_lookup() {
        let t = sample();
        assert_eq!(t.require_value("1KB", "a"), Ok(1.5));
        assert!(t.require_cell("1KB", "b").is_ok());

        let e = t.require_cell("9KB", "a").unwrap_err();
        assert_eq!(e.kind, CellErrorKind::NoSuchRow);
        assert!(e.to_string().contains("9KB"), "{e}");

        let e = t.require_cell("1KB", "zzz").unwrap_err();
        assert_eq!(e.kind, CellErrorKind::NoSuchColumn);

        let e = t.require_value("1KB", "b").unwrap_err();
        assert_eq!(e.kind, CellErrorKind::NotNumeric);
        assert!(e.to_string().contains("fig00"), "{e}");
    }

    #[test]
    fn require_table_checks_position_and_id() {
        let tables = vec![sample()];
        assert!(require_table(&tables, 0, "fig00").is_ok());
        assert_eq!(
            require_table(&tables, 0, "fig99").unwrap_err().kind,
            CellErrorKind::NoSuchTable
        );
        assert_eq!(
            require_table(&tables, 1, "fig00").unwrap_err().kind,
            CellErrorKind::NoSuchTable
        );
    }

    #[test]
    fn markdown_has_header_rows_and_notes() {
        let md = sample().to_markdown();
        assert!(md.contains("### fig00 — Sample"));
        assert!(md.contains("| size | a | b |"));
        assert!(md.contains("| 1KB | 1.50 | n/a |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    fn non_finite_numbers_render_as_missing() {
        let mut t = Table::new("x", "t", "k");
        t.columns(["a", "b"]);
        t.row("r", [Cell::Num(f64::NAN), Cell::Num(f64::INFINITY)]);
        assert!(t.to_markdown().contains("| r | n/a | n/a |"));
        assert_eq!(t.value("r", "a"), None);
        assert_eq!(t.value("r", "b"), None);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", "t", "k");
        t.columns(["a,b"]);
        t.row("r", ["v\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"v\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", "t", "k");
        t.columns(["a", "b"]);
        t.row("r", [Cell::Num(1.0)]);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from(2.0_f64).as_f64(), Some(2.0));
        assert_eq!(Cell::from(7_u64).as_f64(), Some(7.0));
        assert_eq!(Cell::from(Some(1.0)).as_f64(), Some(1.0));
        assert_eq!(Cell::from(None).as_f64(), None);
        assert_eq!(Cell::from("hi").as_f64(), None);
    }
}
