//! Supervised experiment execution: panic isolation, deadlines, retry
//! with backoff, and checkpoint/resume.
//!
//! A full `figures all --scale paper` run is hours of simulation; one
//! panicking experiment or one hung sweep should not cost the whole
//! run. This module executes experiments as isolated *jobs* on a worker
//! pool:
//!
//! - each job runs under [`std::panic::catch_unwind`] on a worker
//!   thread with its own [`Lab`], so a panic settles that job and
//!   leaves every other job untouched;
//! - a watchdog thread enforces a per-job deadline (scaled by the
//!   experiment's declared [`cost`](crate::experiments::Experiment::cost));
//!   a job past its deadline is abandoned and its worker replaced;
//! - failed attempts retry a bounded number of times with
//!   deterministic, seeded exponential backoff (SplitMix64 jitter —
//!   the same seed always produces the same schedule);
//! - every settled job is appended to a crash-safe checkpoint journal
//!   (`checkpoint.jsonl`, rewritten atomically via write-then-rename),
//!   so a killed run resumes with `figures --resume DIR` and replays
//!   finished tables byte-for-byte instead of re-simulating them;
//! - jobs that fail for good degrade to an `n/a` placeholder table, so
//!   the run always completes with a per-job outcome summary.

use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cwp_chaos::{
    read_jsonl_tolerant_io, retry_interrupted, write_jsonl_atomic_io, ChaosIo, IoHandle,
};
use cwp_obs::metrics::Registry;
use cwp_obs::{obs_debug, obs_info, obs_warn, Event, Json, JsonlWriter, Probe};
use cwp_trace::Scale;

use crate::experiments::Experiment;
use crate::lab::Lab;
use crate::obs::TraceOptions;
use crate::report::{Cell, Table};
use crate::supervise::{self, Supervisor};

/// File name of the checkpoint journal inside the journal directory.
pub const JOURNAL_FILE: &str = "checkpoint.jsonl";

/// File name of the runner's own event stream (job lifecycle events).
pub const RUNNER_EVENTS_FILE: &str = "runner.jsonl";

// ---------------------------------------------------------------------
// Jobs and results
// ---------------------------------------------------------------------

/// The boxed work a [`Job`] carries: run in some worker's [`Lab`],
/// produce tables or a failure message.
type JobWork = Arc<dyn Fn(&mut Lab) -> Result<Vec<Table>, String> + Send + Sync>;

/// One unit of supervised work: an id, a display title, a relative cost
/// (deadline multiplier), and the work itself.
#[derive(Clone)]
pub struct Job {
    /// Stable id; the journal keys resume decisions on it.
    pub id: String,
    /// Human title, used for placeholder tables.
    pub title: String,
    /// Relative cost in coarse units; the per-unit deadline is
    /// multiplied by this.
    pub cost: u32,
    work: JobWork,
}

impl Job {
    /// Wraps an arbitrary closure as a job.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        cost: u32,
        work: impl Fn(&mut Lab) -> Result<Vec<Table>, String> + Send + Sync + 'static,
    ) -> Self {
        Job {
            id: id.into(),
            title: title.into(),
            cost,
            work: Arc::new(work),
        }
    }

    /// Wraps a registered experiment: runs it with its sanity check
    /// applied, so malformed tables fail the job instead of printing.
    pub fn from_experiment(e: &Experiment) -> Self {
        let exp = *e;
        Job::new(e.id, e.title, e.cost, move |lab| {
            exp.run_checked(lab).map_err(|err| err.to_string())
        })
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Job({}, cost {})", self.id, self.cost)
    }
}

/// How a job settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job produced its tables.
    Ok,
    /// Every attempt failed (panic or returned error).
    Failed,
    /// The job exceeded its deadline and was abandoned.
    TimedOut,
    /// A prior run's journal already had this job's tables; they were
    /// replayed instead of re-simulated.
    Skipped,
}

impl JobOutcome {
    /// The journal tag for this outcome.
    pub fn tag(&self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::Failed => "failed",
            JobOutcome::TimedOut => "timed_out",
            JobOutcome::Skipped => "skipped",
        }
    }

    fn from_tag(tag: &str) -> Option<JobOutcome> {
        match tag {
            "ok" => Some(JobOutcome::Ok),
            "failed" => Some(JobOutcome::Failed),
            "timed_out" => Some(JobOutcome::TimedOut),
            "skipped" => Some(JobOutcome::Skipped),
            _ => None,
        }
    }
}

/// A table rendered to its final textual forms.
///
/// The journal stores rendered strings, not cell values, so a resumed
/// run replays exactly the bytes the uninterrupted run would have
/// printed — no re-rendering drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedTable {
    /// The table's experiment id.
    pub id: String,
    /// The table's human title.
    pub title: String,
    /// Data rows the table held (0 flags an empty result).
    pub rows: u64,
    /// `Table::to_markdown()` output.
    pub markdown: String,
    /// `Table::to_csv()` output.
    pub csv: String,
}

impl RenderedTable {
    /// Renders a [`Table`] once, capturing both output forms.
    pub fn from_table(t: &Table) -> Self {
        RenderedTable {
            id: t.id().to_string(),
            title: t.title().to_string(),
            rows: t.len() as u64,
            markdown: t.to_markdown(),
            csv: t.to_csv(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("rows", Json::UInt(self.rows)),
            ("markdown", Json::Str(self.markdown.clone())),
            ("csv", Json::Str(self.csv.clone())),
        ])
    }

    fn from_json(json: &Json) -> Option<RenderedTable> {
        let str_of = |key: &str| json.get(key).and_then(Json::as_str).map(str::to_string);
        Some(RenderedTable {
            id: str_of("id")?,
            title: str_of("title")?,
            rows: json.get("rows").and_then(Json::as_u64)?,
            markdown: str_of("markdown")?,
            csv: str_of("csv")?,
        })
    }
}

/// The settled state of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job id.
    pub id: String,
    /// The job title.
    pub title: String,
    /// How it settled.
    pub outcome: JobOutcome,
    /// Attempts consumed (1 = first try succeeded; 0 = replayed).
    pub attempts: u32,
    /// Wall-clock of the settling attempt, in milliseconds.
    pub wall_ms: u64,
    /// Time the settling attempt spent in the ready queue before a
    /// worker picked it up, in milliseconds (0 for timed-out jobs and
    /// for results replayed from journals written before wait
    /// tracking).
    pub wait_ms: u64,
    /// The failure or timeout detail, if any.
    pub error: Option<String>,
    /// The rendered tables (placeholders for failed/timed-out jobs).
    pub tables: Vec<RenderedTable>,
    /// `true` when the tables came from a prior run's journal.
    pub replayed: bool,
}

impl JobResult {
    /// `true` when the job settled without usable data rows.
    pub fn is_empty(&self) -> bool {
        !self.tables.iter().any(|t| t.rows > 0)
    }

    fn to_json(&self) -> Json {
        // Replayed results journal as "ok" so a resume-of-a-resume
        // still recognizes them as finished work.
        let tag = if self.replayed && self.outcome == JobOutcome::Skipped {
            "ok"
        } else {
            self.outcome.tag()
        };
        Json::obj([
            ("job", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("outcome", Json::Str(tag.to_string())),
            ("attempts", Json::UInt(u64::from(self.attempts))),
            ("wall_ms", Json::UInt(self.wall_ms)),
            ("wait_ms", Json::UInt(self.wait_ms)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
            (
                "tables",
                Json::Arr(self.tables.iter().map(RenderedTable::to_json).collect()),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<JobResult> {
        let str_of = |key: &str| json.get(key).and_then(Json::as_str).map(str::to_string);
        let tables = match json.get("tables")? {
            Json::Arr(items) => items
                .iter()
                .map(RenderedTable::from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(JobResult {
            id: str_of("job")?,
            title: str_of("title")?,
            outcome: JobOutcome::from_tag(json.get("outcome").and_then(Json::as_str)?)?,
            attempts: u32::try_from(json.get("attempts").and_then(Json::as_u64)?).ok()?,
            wall_ms: json.get("wall_ms").and_then(Json::as_u64)?,
            // Absent in journals written before queue-wait tracking.
            wait_ms: json.get("wait_ms").and_then(Json::as_u64).unwrap_or(0),
            error: str_of("error"),
            tables,
            replayed: false,
        })
    }
}

/// The whole run's outcome: per-job results in input order, plus the
/// total number of actual simulations performed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// One result per submitted job, in submission order.
    pub results: Vec<JobResult>,
    /// Actual (non-memoized) simulations across all workers.
    pub simulations: u64,
}

impl RunSummary {
    /// Jobs that settled with the given outcome.
    pub fn count(&self, outcome: JobOutcome) -> usize {
        self.results.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Jobs that needed more than one attempt (including final failures).
    pub fn retried(&self) -> usize {
        self.results.iter().filter(|r| r.attempts > 1).count()
    }

    /// Jobs that nominally succeeded but produced no data rows.
    pub fn empty(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Ok | JobOutcome::Skipped) && r.is_empty())
            .count()
    }

    /// Jobs that did not produce real tables: failures, timeouts, and
    /// empty successes. Nonzero means the run should exit nonzero.
    pub fn failures(&self) -> usize {
        self.count(JobOutcome::Failed) + self.count(JobOutcome::TimedOut) + self.empty()
    }

    /// One-line accounting, e.g. `"33 ok, 1 retried, 1 failed, ..."`.
    pub fn describe(&self) -> String {
        format!(
            "{} ok, {} retried, {} failed, {} timed out, {} skipped (resume), {} empty",
            self.count(JobOutcome::Ok),
            self.retried(),
            self.count(JobOutcome::Failed),
            self.count(JobOutcome::TimedOut),
            self.count(JobOutcome::Skipped),
            self.empty()
        )
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Supervision policy for a run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (each owns a [`Lab`]).
    pub workers: usize,
    /// Deadline per unit of job cost; `None` disables the watchdog's
    /// deadline enforcement.
    pub deadline_per_cost: Option<Duration>,
    /// Extra attempts after a failed first try.
    pub retries: u32,
    /// Base backoff delay; attempt `n` waits `base * 2^(n-1) * jitter`.
    pub backoff_base: Duration,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Directory for `checkpoint.jsonl` and `runner.jsonl`; `None`
    /// disables journaling (and therefore resume).
    pub journal_dir: Option<PathBuf>,
    /// Replay jobs already journaled as `ok` instead of re-running.
    pub resume: bool,
    /// Scale each worker's lab simulates at.
    pub scale: Scale,
    /// Per-simulation tracing, passed to each worker's lab.
    pub trace: Option<TraceOptions>,
    /// Restrict tracing to one workload (see [`Lab::set_trace_filter`]).
    pub trace_filter: Option<String>,
    /// Trace store shared by every worker's lab (and kept across
    /// panic-rebuilds), so each workload is recorded once per run.
    /// `None` lets the runner create one; pass
    /// [`TraceStore::disabled`](crate::TraceStore::disabled) to force
    /// live regeneration everywhere.
    pub trace_store: Option<Arc<crate::TraceStore>>,
    /// Test hook: sleep this long at the start of every attempt, so
    /// integration tests can kill the process mid-grid deterministically
    /// (set via `CWP_JOB_DELAY_MS` in the `figures` binary).
    pub job_delay: Option<Duration>,
    /// Run every simulation under the invariant audit (see
    /// [`Lab::enable_audit`]). Outcomes are unchanged; a violated
    /// invariant panics inside the job and surfaces as a failed run.
    pub audit: bool,
    /// Storage backend every checkpoint write and reload goes through.
    /// The default is the real filesystem; tests and the chaos harness
    /// substitute a fault-injecting backend here.
    pub io: IoHandle,
    /// When set, the runner exports its `checkpoint_corrupt_lines`
    /// counter into this registry on resume reload.
    pub registry: Option<Arc<Registry>>,
}

impl RunnerConfig {
    /// A sequential, no-deadline, no-journal configuration at `scale`.
    pub fn new(scale: Scale) -> Self {
        RunnerConfig {
            workers: 1,
            deadline_per_cost: None,
            retries: 2,
            backoff_base: Duration::from_millis(250),
            backoff_seed: 0x5ca1_ab1e,
            journal_dir: None,
            resume: false,
            scale,
            trace: None,
            trace_filter: None,
            trace_store: None,
            job_delay: None,
            audit: false,
            io: IoHandle::real(),
            registry: None,
        }
    }
}

// ---------------------------------------------------------------------
// Internal plumbing
// ---------------------------------------------------------------------

/// A dispatched attempt.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    job: usize,
    attempt: u32,
    /// When the ticket entered the ready queue; re-stamped by
    /// [`push_ready`] so retry backoff never counts as queue wait.
    dispatched: Instant,
}

/// The ready queue workers pull from.
#[derive(Default)]
struct QueueState {
    ready: std::collections::VecDeque<Ticket>,
    shutdown: bool,
}

type Queue = Arc<(Mutex<QueueState>, Condvar)>;

/// The watchdog over in-flight attempts and scheduled retries, keyed
/// by worker id (see [`crate::supervise`]).
type Watch = Arc<Supervisor<Ticket>>;

enum Msg {
    Done {
        ticket: Ticket,
        result: Result<Vec<Table>, String>,
        wall_ms: u64,
        wait_ms: u64,
        sims: u64,
    },
    TimedOut {
        worker: u64,
        ticket: Ticket,
    },
}

fn push_ready(queue: &Queue, mut ticket: Ticket) {
    ticket.dispatched = Instant::now();
    let (lock, cvar) = &**queue;
    lock.lock().expect("queue lock").ready.push_back(ticket);
    cvar.notify_one();
}

/// Renders the `n/a` placeholder a failed or timed-out job degrades to.
fn placeholder(job: &Job, outcome: JobOutcome, detail: &str) -> RenderedTable {
    let mut t = Table::new(&job.id, &job.title, "status");
    t.columns(["result"]);
    t.row(outcome.tag(), [Cell::Missing]);
    t.note(format!("experiment did not complete: {detail}"));
    let mut rendered = RenderedTable::from_table(&t);
    // The status row is a marker, not data: the job stays "empty".
    rendered.rows = 0;
    rendered
}

/// The worker thread body: pull tickets, run jobs under
/// `catch_unwind`, report results — unless the watchdog abandoned us.
fn worker_loop(
    worker_id: u64,
    jobs: Arc<Vec<Job>>,
    config: RunnerConfig,
    queue: Queue,
    watch: Watch,
    out: mpsc::Sender<Msg>,
) {
    let build_lab = |cfg: &RunnerConfig| {
        let mut lab = Lab::new(cfg.scale);
        // The shared store survives panic-rebuilds of this worker's lab
        // and is common to the whole pool: recordings are never lost to
        // a worker replacement.
        if let Some(store) = &cfg.trace_store {
            lab.set_store(Arc::clone(store));
        }
        if let Some(trace) = &cfg.trace {
            lab.enable_trace(trace.clone());
            lab.set_trace_filter(cfg.trace_filter.as_deref());
        }
        if cfg.audit {
            lab.enable_audit();
        }
        lab
    };
    let mut lab = build_lab(&config);
    let mut runs_before = 0u64;
    loop {
        let ticket = {
            let (lock, cvar) = &*queue;
            let mut state = lock.lock().expect("queue lock");
            loop {
                if let Some(t) = state.ready.pop_front() {
                    break t;
                }
                if state.shutdown {
                    return;
                }
                state = cvar.wait(state).expect("queue lock");
            }
        };
        let wait_ms = ticket.dispatched.elapsed().as_millis() as u64;
        let job = &jobs[ticket.job];
        // Register with the watchdog so it arms for this attempt's
        // deadline.
        let deadline = config
            .deadline_per_cost
            .map(|d| Instant::now() + d * job.cost.max(1));
        watch.register(worker_id, deadline, ticket);
        if let Some(delay) = config.job_delay {
            std::thread::sleep(delay);
        }
        let start = Instant::now();
        lab.set_trace_context(&job.id);
        let work = Arc::clone(&job.work);
        let outcome = catch_unwind(AssertUnwindSafe(|| work(&mut lab)));
        let wall_ms = start.elapsed().as_millis() as u64;
        // If the watchdog expired our deadline it removed our entry and
        // already settled the job; this worker is abandoned and a
        // replacement has taken its place — exit without reporting.
        if watch.complete(worker_id).is_none() {
            obs_debug!("worker {worker_id}: abandoned after deadline, exiting");
            return;
        }
        let sims = lab.runs() - runs_before;
        runs_before = lab.runs();
        let result = match outcome {
            Ok(r) => r,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic (non-string payload)".to_string());
                // The lab may hold partial memoized state from the
                // panicked experiment; rebuild it from scratch.
                lab = build_lab(&config);
                runs_before = 0;
                Err(format!("panic: {msg}"))
            }
        };
        if out
            .send(Msg::Done {
                ticket,
                result,
                wall_ms,
                wait_ms,
                sims,
            })
            .is_err()
        {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------

/// Executes jobs under supervision according to a [`RunnerConfig`].
#[derive(Debug, Clone)]
pub struct Runner {
    config: RunnerConfig,
}

impl Runner {
    /// Creates a runner with the given policy.
    pub fn new(config: RunnerConfig) -> Self {
        Runner { config }
    }

    /// The deterministic backoff before retry `attempt` of `job`:
    /// `base * 2^(attempt-1)`, jittered by a seeded multiplier in
    /// `[0.5, 1.5)`. Same seed, same job, same attempt — same delay.
    /// Delegates to [`supervise::backoff_delay`] with the job index as
    /// the jitter stream.
    pub fn backoff_delay(&self, job: usize, attempt: u32) -> Duration {
        supervise::backoff_delay(
            self.config.backoff_base,
            self.config.backoff_seed,
            job as u64,
            attempt,
        )
    }

    /// Runs `jobs` to completion (every job settles) and returns the
    /// per-job results in submission order.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O errors; job failures are *outcomes*,
    /// not errors.
    ///
    /// # Panics
    ///
    /// Panics if two jobs share an id (the journal could not tell them
    /// apart).
    pub fn run(&self, jobs: Vec<Job>) -> io::Result<RunSummary> {
        {
            let mut seen = std::collections::HashSet::new();
            for job in &jobs {
                assert!(seen.insert(job.id.as_str()), "duplicate job id {}", job.id);
            }
        }
        let mut results: Vec<Option<JobResult>> = vec![None; jobs.len()];

        // Resume: replay journaled successes instead of re-running them.
        let journal_path = self
            .config
            .journal_dir
            .as_ref()
            .map(|d| d.join(JOURNAL_FILE));
        if self.config.resume {
            if let Some(path) = &journal_path {
                let (replayed, corrupt_lines) = load_journal(&self.config.io, path)?;
                if let Some(registry) = &self.config.registry {
                    registry
                        .counter("checkpoint_corrupt_lines")
                        .add(corrupt_lines);
                }
                for (idx, job) in jobs.iter().enumerate() {
                    if let Some(mut prior) = replayed.get(&job.id).cloned() {
                        prior.outcome = JobOutcome::Skipped;
                        prior.attempts = 0;
                        prior.replayed = true;
                        results[idx] = Some(prior);
                    }
                }
                let skipped = results.iter().flatten().count();
                if skipped > 0 {
                    obs_info!("resume: {skipped} job(s) replayed from {}", path.display());
                }
            }
        }

        // The runner's own event stream (job lifecycle) goes next to the
        // journal; a probe write failure only loses observability.
        let mut probe: Option<JsonlWriter<std::fs::File>> = match &self.config.journal_dir {
            Some(dir) => {
                retry_interrupted(|| self.config.io.create_dir_all(dir))?;
                Some(JsonlWriter::new(
                    std::fs::File::create(dir.join(RUNNER_EVENTS_FILE))?,
                    None,
                ))
            }
            None => None,
        };
        let mut emit = move |event: Event| {
            if let Some(p) = &mut probe {
                p.on_event(&event);
            }
        };

        let jobs = Arc::new(jobs);
        let queue: Queue = Arc::new((Mutex::new(QueueState::default()), Condvar::new()));
        let (tx, rx) = mpsc::channel::<Msg>();
        // The watchdog: expired deadlines report a timeout, due retry
        // backoffs re-enter the ready queue.
        let watch: Watch = {
            let tx = tx.clone();
            let queue = Arc::clone(&queue);
            Arc::new(Supervisor::spawn(
                "cwp-watchdog",
                move |worker, ticket| {
                    let _ = tx.send(Msg::TimedOut { worker, ticket });
                },
                move |ticket| push_ready(&queue, ticket),
            ))
        };

        let workers = self.config.workers.max(1);
        let mut handles: HashMap<u64, std::thread::JoinHandle<()>> = HashMap::new();
        let mut next_worker_id = 0u64;
        let worker_tx = tx.clone();
        // Every worker (including replacements spawned after a timeout)
        // gets the same trace store, so the pool records each workload
        // exactly once per run.
        let worker_config = {
            let mut cfg = self.config.clone();
            if cfg.trace_store.is_none() {
                cfg.trace_store = Some(Arc::new(crate::TraceStore::new(cfg.scale)));
            }
            cfg
        };
        let mut spawn_worker = |handles: &mut HashMap<u64, std::thread::JoinHandle<()>>| {
            let id = next_worker_id;
            next_worker_id += 1;
            let handle = {
                let jobs = Arc::clone(&jobs);
                let config = worker_config.clone();
                let queue = Arc::clone(&queue);
                let watch = Arc::clone(&watch);
                let tx = worker_tx.clone();
                std::thread::Builder::new()
                    .name(format!("cwp-worker-{id}"))
                    .spawn(move || worker_loop(id, jobs, config, queue, watch, tx))
                    .expect("spawn worker thread")
            };
            handles.insert(id, handle);
        };
        for _ in 0..workers {
            spawn_worker(&mut handles);
        }
        drop(tx);

        // Dispatch every job not already settled by resume replay.
        let mut attempts: Vec<u32> = vec![0; jobs.len()];
        let mut pending = 0usize;
        for (idx, _) in jobs.iter().enumerate() {
            if results[idx].is_none() {
                attempts[idx] = 1;
                emit(Event::JobStart {
                    job: idx as u32,
                    attempt: 1,
                });
                push_ready(
                    &queue,
                    Ticket {
                        job: idx,
                        attempt: 1,
                        dispatched: Instant::now(),
                    },
                );
                pending += 1;
            }
        }

        let mut simulations = 0u64;
        let mut settled = 0usize;
        let settle = |idx: usize,
                      result: JobResult,
                      results: &mut Vec<Option<JobResult>>,
                      emit: &mut dyn FnMut(Event)|
         -> io::Result<()> {
            emit(Event::JobEnd {
                job: idx as u32,
                attempt: result.attempts,
                ok: result.outcome == JobOutcome::Ok,
                wall_ms: result.wall_ms,
                wait_ms: result.wait_ms,
            });
            results[idx] = Some(result);
            if let Some(path) = &journal_path {
                let lines: Vec<Json> = results.iter().flatten().map(JobResult::to_json).collect();
                write_jsonl_atomic_io(&self.config.io, path, &lines)?;
            }
            Ok(())
        };

        while settled < pending {
            let msg = rx.recv().expect("workers alive while jobs pending");
            match msg {
                Msg::Done {
                    ticket,
                    result,
                    wall_ms,
                    wait_ms,
                    sims,
                } => {
                    simulations += sims;
                    if results[ticket.job].is_some() || ticket.attempt != attempts[ticket.job] {
                        continue; // stale report from a superseded attempt
                    }
                    let job = &jobs[ticket.job];
                    match result {
                        Ok(tables) => {
                            let rendered = tables.iter().map(RenderedTable::from_table).collect();
                            settle(
                                ticket.job,
                                JobResult {
                                    id: job.id.clone(),
                                    title: job.title.clone(),
                                    outcome: JobOutcome::Ok,
                                    attempts: ticket.attempt,
                                    wall_ms,
                                    wait_ms,
                                    error: None,
                                    tables: rendered,
                                    replayed: false,
                                },
                                &mut results,
                                &mut emit,
                            )?;
                            settled += 1;
                        }
                        Err(error) if ticket.attempt <= self.config.retries => {
                            let next = ticket.attempt + 1;
                            let delay = self.backoff_delay(ticket.job, ticket.attempt);
                            obs_warn!(
                                "{}: attempt {} failed ({error}); retrying in {:?}",
                                job.id,
                                ticket.attempt,
                                delay
                            );
                            emit(Event::JobRetry {
                                job: ticket.job as u32,
                                attempt: ticket.attempt,
                                delay_ms: delay.as_millis() as u64,
                            });
                            emit(Event::JobStart {
                                job: ticket.job as u32,
                                attempt: next,
                            });
                            attempts[ticket.job] = next;
                            watch.release_after(
                                Instant::now() + delay,
                                Ticket {
                                    job: ticket.job,
                                    attempt: next,
                                    // Re-stamped by push_ready when the
                                    // backoff timer releases the ticket.
                                    dispatched: Instant::now(),
                                },
                            );
                        }
                        Err(error) => {
                            obs_warn!(
                                "{}: failed for good after {} attempt(s): {error}",
                                job.id,
                                ticket.attempt
                            );
                            let table = placeholder(job, JobOutcome::Failed, &error);
                            settle(
                                ticket.job,
                                JobResult {
                                    id: job.id.clone(),
                                    title: job.title.clone(),
                                    outcome: JobOutcome::Failed,
                                    attempts: ticket.attempt,
                                    wall_ms,
                                    wait_ms,
                                    error: Some(error),
                                    tables: vec![table],
                                    replayed: false,
                                },
                                &mut results,
                                &mut emit,
                            )?;
                            settled += 1;
                        }
                    }
                }
                Msg::TimedOut { worker, ticket } => {
                    if results[ticket.job].is_some() || ticket.attempt != attempts[ticket.job] {
                        continue;
                    }
                    let job = &jobs[ticket.job];
                    let deadline = self
                        .config
                        .deadline_per_cost
                        .map(|d| d * job.cost.max(1))
                        .unwrap_or_default();
                    let detail = format!("exceeded its {deadline:?} deadline");
                    obs_warn!("{}: {detail}; abandoning worker {worker}", job.id);
                    // The stuck worker keeps running until it notices its
                    // abandonment; replace it so throughput is preserved.
                    handles.remove(&worker);
                    spawn_worker(&mut handles);
                    let table = placeholder(job, JobOutcome::TimedOut, &detail);
                    settle(
                        ticket.job,
                        JobResult {
                            id: job.id.clone(),
                            title: job.title.clone(),
                            outcome: JobOutcome::TimedOut,
                            attempts: ticket.attempt,
                            wall_ms: deadline.as_millis() as u64,
                            wait_ms: 0,
                            error: Some(detail),
                            tables: vec![table],
                            replayed: false,
                        },
                        &mut results,
                        &mut emit,
                    )?;
                    settled += 1;
                }
            }
        }

        // Shut everything down and join the workers we did not abandon.
        // The watchdog thread itself joins when the last `watch` clone
        // drops (see [`Supervisor`]'s `Drop`).
        {
            let (lock, cvar) = &*queue;
            lock.lock().expect("queue lock").shutdown = true;
            cvar.notify_all();
        }
        watch.shutdown();
        for (_, handle) in handles {
            let _ = handle.join();
        }

        Ok(RunSummary {
            results: results
                .into_iter()
                .map(|r| r.expect("all settled"))
                .collect(),
            simulations,
        })
    }
}

/// Reads the checkpoint journal tolerantly, returning finished (`ok`)
/// results keyed by job id plus the number of corrupt lines skipped. A
/// missing journal is an empty map; a torn final line is tolerated
/// (the crash the journal exists to survive); mid-journal lines that
/// parse as JSON but not as a [`JobResult`] are counted, warned about
/// once, and skipped rather than silently dropped.
fn load_journal(io: &dyn ChaosIo, path: &Path) -> io::Result<(HashMap<String, JobResult>, u64)> {
    if !io.exists(path) {
        return Ok((HashMap::new(), 0));
    }
    let doc = read_jsonl_tolerant_io(io, path)?;
    if doc.truncated {
        obs_warn!(
            "{}: journal ends in a partially-written line; ignoring it",
            path.display()
        );
    }
    let mut map = HashMap::new();
    let mut corrupt_lines = 0u64;
    for line in &doc.lines {
        match JobResult::from_json(line) {
            Some(result) => {
                if result.outcome == JobOutcome::Ok {
                    map.insert(result.id.clone(), result);
                }
            }
            None => corrupt_lines += 1,
        }
    }
    if corrupt_lines > 0 {
        obs_warn!(
            "{}: skipped {corrupt_lines} corrupt checkpoint line(s) on reload",
            path.display()
        );
    }
    Ok((map, corrupt_lines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn table_for(id: &str) -> Table {
        let mut t = Table::new(id, format!("{id} title"), "x");
        t.columns(["v"]);
        t.row("r", [Cell::Num(1.0)]);
        t
    }

    fn ok_job(id: &str) -> Job {
        let id_owned = id.to_string();
        Job::new(id, format!("{id} title"), 1, move |_lab| {
            Ok(vec![table_for(&id_owned)])
        })
    }

    fn config() -> RunnerConfig {
        let mut c = RunnerConfig::new(Scale::Test);
        c.backoff_base = Duration::from_millis(1);
        c
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwp-runner-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut c = config();
        c.workers = 4;
        let jobs: Vec<Job> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|id| ok_job(id))
            .collect();
        let summary = Runner::new(c).run(jobs).unwrap();
        let ids: Vec<&str> = summary.results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "c", "d", "e"]);
        assert_eq!(summary.count(JobOutcome::Ok), 5);
        assert_eq!(summary.failures(), 0);
        assert!(summary.results.iter().all(|r| r.attempts == 1));
    }

    #[test]
    fn a_panicking_job_is_isolated_retried_and_degraded() {
        let mut c = config();
        c.workers = 2;
        c.retries = 1;
        let jobs = vec![
            ok_job("good"),
            Job::new(
                "bad",
                "always panics",
                1,
                |_lab| -> Result<Vec<Table>, String> { panic!("intentional test panic") },
            ),
        ];
        let summary = Runner::new(c).run(jobs).unwrap();
        assert_eq!(summary.results[0].outcome, JobOutcome::Ok);
        let bad = &summary.results[1];
        assert_eq!(bad.outcome, JobOutcome::Failed);
        assert_eq!(bad.attempts, 2, "one retry after the first panic");
        assert!(bad.error.as_deref().unwrap().contains("intentional"));
        assert!(bad.is_empty(), "failed jobs degrade to an n/a placeholder");
        assert!(bad.tables[0].markdown.contains("n/a"));
        assert_eq!(summary.retried(), 1);
        assert_eq!(summary.failures(), 1);
    }

    #[test]
    fn a_flaky_job_recovers_within_its_retry_budget() {
        let mut c = config();
        c.retries = 2;
        let tries = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&tries);
        let jobs = vec![Job::new("flaky", "third time lucky", 1, move |_lab| {
            if counter.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(vec![table_for("flaky")])
            }
        })];
        let summary = Runner::new(c).run(jobs).unwrap();
        let r = &summary.results[0];
        assert_eq!(r.outcome, JobOutcome::Ok);
        assert_eq!(r.attempts, 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn workers_share_one_trace_store_across_the_pool_and_panic_rebuilds() {
        let mut c = config();
        c.workers = 2;
        c.retries = 1;
        let store = Arc::new(crate::TraceStore::new(Scale::Test));
        c.trace_store = Some(Arc::clone(&store));
        let sim = cwp_cache::CacheConfig::default();
        let mut jobs: Vec<Job> = (0..4)
            .map(|i| {
                Job::new(format!("sim-{i}"), "simulates yacc", 1, move |lab| {
                    let out = lab.outcome("yacc", &sim);
                    assert!(out.stats.accesses() > 0);
                    Ok(vec![table_for("sim")])
                })
            })
            .collect();
        let panicked = Arc::new(AtomicU32::new(0));
        let flag = Arc::clone(&panicked);
        jobs.push(Job::new(
            "panics-once",
            "lab rebuild keeps the shared store",
            1,
            move |lab| {
                lab.outcome("yacc", &sim);
                if flag.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("intentional test panic");
                }
                Ok(vec![table_for("panics-once")])
            },
        ));
        let summary = Runner::new(c).run(jobs).unwrap();
        assert_eq!(summary.failures(), 0);
        assert_eq!(
            store.recordings(),
            1,
            "one yacc recording across workers and panic-rebuilt labs"
        );
    }

    #[test]
    fn a_hung_job_times_out_and_the_run_continues() {
        let mut c = config();
        c.workers = 1;
        c.retries = 0;
        c.deadline_per_cost = Some(Duration::from_millis(40));
        let jobs = vec![
            Job::new("hang", "sleeps past deadline", 1, |_lab| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(vec![table_for("hang")])
            }),
            ok_job("after"),
        ];
        let summary = Runner::new(c).run(jobs).unwrap();
        assert_eq!(summary.results[0].outcome, JobOutcome::TimedOut);
        assert!(summary.results[0]
            .error
            .as_deref()
            .unwrap()
            .contains("deadline"));
        assert_eq!(
            summary.results[1].outcome,
            JobOutcome::Ok,
            "a replacement worker ran the remaining job"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let runner = Runner::new(config());
        let d1 = runner.backoff_delay(3, 1);
        let d2 = runner.backoff_delay(3, 2);
        assert_eq!(d1, runner.backoff_delay(3, 1), "same seed, same delay");
        assert!(d2 > d1, "attempt 2 backs off longer: {d1:?} vs {d2:?}");
        assert_ne!(
            runner.backoff_delay(4, 1),
            d1,
            "different jobs jitter differently"
        );
    }

    #[test]
    fn journal_round_trips_and_resume_replays_finished_jobs() {
        let dir = tmpdir("resume");
        let ran = Arc::new(AtomicU32::new(0));

        let mut c = config();
        c.journal_dir = Some(dir.clone());
        c.retries = 0;
        let counter = Arc::clone(&ran);
        let jobs = vec![
            ok_job("done"),
            Job::new("broken", "fails first run", 1, move |_lab| {
                counter.fetch_add(1, Ordering::SeqCst);
                Err("first run fails".to_string())
            }),
        ];
        let summary = Runner::new(c).run(jobs).unwrap();
        assert_eq!(summary.count(JobOutcome::Ok), 1);
        assert_eq!(summary.count(JobOutcome::Failed), 1);
        let first_markdown = summary.results[0].tables[0].markdown.clone();

        // Second run resumes: "done" replays without re-running, the
        // previously failed job runs again and now succeeds.
        let mut c = config();
        c.journal_dir = Some(dir.clone());
        c.resume = true;
        c.retries = 0;
        let jobs = vec![
            Job::new(
                "done",
                "must not re-run",
                1,
                |_lab| -> Result<Vec<Table>, String> {
                    panic!("resume must not re-run a journaled job")
                },
            ),
            ok_job("broken"),
        ];
        let summary = Runner::new(c).run(jobs).unwrap();
        let done = &summary.results[0];
        assert_eq!(done.outcome, JobOutcome::Skipped);
        assert!(done.replayed);
        assert_eq!(done.attempts, 0);
        assert_eq!(
            done.tables[0].markdown, first_markdown,
            "byte-identical replay"
        );
        assert_eq!(summary.results[1].outcome, JobOutcome::Ok);
        assert_eq!(ran.load(Ordering::SeqCst), 1, "failed job ran once per run");

        // The journal now records both as ok, so a third resume skips
        // everything (resume-of-a-resume).
        let (journal, corrupt) = load_journal(&cwp_chaos::RealIo, &dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.len(), 2);
        assert_eq!(corrupt, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_journal_line_is_tolerated_on_resume() {
        let dir = tmpdir("torn");
        let path = dir.join(JOURNAL_FILE);
        let mut text = String::new();
        JobResult {
            id: "whole".to_string(),
            title: "t".to_string(),
            outcome: JobOutcome::Ok,
            attempts: 1,
            wall_ms: 1,
            wait_ms: 0,
            error: None,
            tables: vec![RenderedTable::from_table(&table_for("whole"))],
            replayed: false,
        }
        .to_json()
        .write(&mut text);
        text.push_str("\n{\"job\":\"torn\",\"outco");
        std::fs::write(&path, text).unwrap();
        let (journal, corrupt) = load_journal(&cwp_chaos::RealIo, &path).unwrap();
        assert_eq!(journal.len(), 1);
        assert!(journal.contains_key("whole"));
        assert_eq!(
            corrupt, 0,
            "a torn final line is truncation, not corruption"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_lines_are_counted_and_exported_on_resume() {
        let dir = tmpdir("corrupt");
        let path = dir.join(JOURNAL_FILE);
        let mut text = String::new();
        JobResult {
            id: "whole".to_string(),
            title: "t".to_string(),
            outcome: JobOutcome::Ok,
            attempts: 1,
            wall_ms: 1,
            wait_ms: 0,
            error: None,
            tables: vec![RenderedTable::from_table(&table_for("whole"))],
            replayed: false,
        }
        .to_json()
        .write(&mut text);
        // Valid JSON, but not a JobResult: the lenient reader used to
        // skip these silently; now they are counted.
        text.push_str(
            "\n{\"not\":\"a job result\"}\n{\"job\":\"half\",\"outcome\":\"nonsense\"}\n",
        );
        std::fs::write(&path, text).unwrap();

        let (journal, corrupt) = load_journal(&cwp_chaos::RealIo, &path).unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(corrupt, 2);

        // A resumed run exports the count into the caller's registry.
        let registry = Arc::new(Registry::new());
        let mut c = config();
        c.journal_dir = Some(dir.clone());
        c.resume = true;
        c.registry = Some(Arc::clone(&registry));
        let summary = Runner::new(c)
            .run(vec![Job::new(
                "whole",
                "must not re-run",
                1,
                |_lab| -> Result<Vec<Table>, String> {
                    panic!("resume must not re-run a journaled job")
                },
            )])
            .unwrap();
        assert_eq!(summary.results[0].outcome, JobOutcome::Skipped);
        assert_eq!(registry.counter("checkpoint_corrupt_lines").value(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn the_checkpoint_journal_survives_a_fault_injecting_backend() {
        use cwp_chaos::{FaultPlan, FaultyIo};

        let dir = tmpdir("faulty-journal");
        // Transient-only faults: EINTR storms the retry loops absorb.
        let io = Arc::new(FaultyIo::new(FaultPlan::transient_only(200_000, 0xC4A0)));
        let mut c = config();
        c.journal_dir = Some(dir.clone());
        c.io = IoHandle::new(io);
        let jobs: Vec<Job> = ["a", "b", "c"].iter().map(|id| ok_job(id)).collect();
        let summary = Runner::new(c).run(jobs).unwrap();
        assert_eq!(summary.count(JobOutcome::Ok), 3);

        // The journal on disk is complete and replayable.
        let (journal, corrupt) = load_journal(&cwp_chaos::RealIo, &dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.len(), 3);
        assert_eq!(corrupt, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_successes_count_as_failures() {
        let jobs = vec![Job::new("hollow", "no rows", 1, |_lab| {
            let mut t = Table::new("hollow", "no rows", "x");
            t.columns(["v"]);
            Ok(vec![t])
        })];
        let summary = Runner::new(config()).run(jobs).unwrap();
        assert_eq!(summary.results[0].outcome, JobOutcome::Ok);
        assert_eq!(summary.empty(), 1);
        assert_eq!(summary.failures(), 1);
        assert!(
            summary.describe().contains("1 empty"),
            "{}",
            summary.describe()
        );
    }

    #[test]
    fn from_experiment_runs_the_real_thing() {
        let e = crate::experiments::by_id("table2").unwrap();
        let job = Job::from_experiment(&e);
        assert_eq!(job.id, "table2");
        let summary = Runner::new(config()).run(vec![job]).unwrap();
        assert_eq!(summary.results[0].outcome, JobOutcome::Ok);
        assert!(!summary.results[0].is_empty());
    }
}
