//! Driving a workload trace through a cache configuration.

use cwp_cache::{Cache, CacheConfig, CacheStats, NullProbe, Probe, ProbedMemoryCache};
use cwp_mem::Traffic;
use cwp_trace::{AccessKind, MemRef, Scale, TraceSink, TraceSummary, Workload};

/// Everything one (workload, configuration) simulation produces.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The trace's instruction/read/write totals.
    pub summary: TraceSummary,
    /// Cache event counters, including flush ("flush stop") statistics.
    pub stats: CacheStats,
    /// Back-side traffic during execution only (cold stop).
    pub traffic_execution: Traffic,
    /// Back-side traffic including the final flush of dirty lines
    /// (flush stop) — the accounting Section 5 argues for.
    pub traffic_total: Traffic,
}

impl SimOutcome {
    /// Back-side transactions per instruction (Figure 18/19's y-axis),
    /// flush included.
    pub fn transactions_per_instruction(&self) -> f64 {
        self.traffic_total.total_transactions() as f64 / self.summary.instructions as f64
    }

    /// Back-side bytes per instruction, flush included.
    pub fn bytes_per_instruction(&self) -> f64 {
        self.traffic_total.total_bytes() as f64 / self.summary.instructions as f64
    }
}

/// A [`TraceSink`] adapter that feeds references into a cache.
///
/// Store data is fabricated (the byte pattern is irrelevant to every
/// statistic; functional correctness is covered by the transparency
/// property tests in `cwp-cache`).
#[derive(Debug)]
pub struct CacheSink<P = NullProbe> {
    cache: ProbedMemoryCache<P>,
    scratch: [u8; 8],
}

impl CacheSink {
    /// Wraps a fresh cache built from `config`.
    pub fn new(config: CacheConfig) -> Self {
        CacheSink {
            cache: Cache::with_memory(config),
            scratch: [0u8; 8],
        }
    }
}

impl<P: Probe> CacheSink<P> {
    /// Wraps a fresh cache built from `config` with `probe` observing
    /// every cache event.
    pub fn with_probe(config: CacheConfig, probe: P) -> Self {
        CacheSink {
            cache: ProbedMemoryCache::with_memory_probed(config, probe),
            scratch: [0u8; 8],
        }
    }

    /// The cache being driven.
    pub fn cache(&self) -> &ProbedMemoryCache<P> {
        &self.cache
    }

    /// Mutable access to the cache being driven.
    pub fn cache_mut(&mut self) -> &mut ProbedMemoryCache<P> {
        &mut self.cache
    }

    /// Consumes the sink, returning the cache.
    pub fn into_cache(self) -> ProbedMemoryCache<P> {
        self.cache
    }
}

impl<P: Probe> TraceSink for CacheSink<P> {
    #[inline]
    fn record(&mut self, r: MemRef) {
        let len = r.size as usize;
        match r.kind {
            AccessKind::Read => {
                let mut buf = self.scratch;
                self.cache.read(r.addr, &mut buf[..len]);
            }
            AccessKind::Write => {
                let buf = self.scratch;
                self.cache.write(r.addr, &buf[..len]);
            }
        }
    }
}

/// Runs `workload` at `scale` through a cache built from `config`,
/// flushing at the end (flush stop).
///
/// # Examples
///
/// ```
/// use cwp_cache::CacheConfig;
/// use cwp_core::sim::simulate;
/// use cwp_trace::{workloads, Scale};
///
/// let outcome = simulate(
///     workloads::yacc().as_ref(),
///     Scale::Test,
///     &CacheConfig::default(),
/// );
/// assert!(outcome.stats.accesses() > 0);
/// ```
pub fn simulate(workload: &dyn Workload, scale: Scale, config: &CacheConfig) -> SimOutcome {
    let (outcome, NullProbe) = simulate_probed(workload, scale, config, NullProbe);
    outcome
}

/// As [`simulate`], but with `probe` attached to the cache for the whole
/// run (execution and final flush). Returns the probe alongside the
/// outcome so callers can inspect what it collected.
pub fn simulate_probed<P: Probe>(
    workload: &dyn Workload,
    scale: Scale,
    config: &CacheConfig,
    probe: P,
) -> (SimOutcome, P) {
    let mut sink = CacheSink::with_probe(*config, probe);
    let summary = workload.run(scale, &mut sink);
    let mut cache = sink.into_cache();
    let traffic_execution = cache.traffic();
    cache.flush();
    let stats = *cache.stats();
    let traffic_total = cache.traffic();
    let (_, probe) = cache.into_parts();
    (
        SimOutcome {
            summary,
            stats,
            traffic_execution,
            traffic_total,
        },
        probe,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_cache::{WriteHitPolicy, WriteMissPolicy};
    use cwp_trace::workloads;

    #[test]
    fn simulate_accounts_for_every_reference() {
        let out = simulate(
            workloads::grr().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
        );
        // Word-sized refs never split with 16B lines.
        assert_eq!(out.stats.reads, out.summary.reads);
        assert_eq!(out.stats.writes, out.summary.writes);
        assert_eq!(out.stats.read_hits + out.stats.read_misses, out.stats.reads);
        assert_eq!(
            out.stats.write_hits + out.stats.write_misses,
            out.stats.writes
        );
    }

    #[test]
    fn flush_traffic_is_additional() {
        let out = simulate(
            workloads::yacc().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
        );
        assert!(
            out.traffic_total.write_back.transactions
                >= out.traffic_execution.write_back.transactions
        );
        assert_eq!(
            out.traffic_total.fetch, out.traffic_execution.fetch,
            "flush never fetches"
        );
    }

    #[test]
    fn write_through_cache_generates_store_traffic() {
        let config = CacheConfig::builder()
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::WriteAround)
            .build()
            .unwrap();
        let out = simulate(workloads::liver().as_ref(), Scale::Test, &config);
        assert_eq!(
            out.traffic_total.write_through.transactions,
            out.stats.writes
        );
        assert_eq!(out.traffic_total.write_back.transactions, 0);
    }

    #[test]
    fn per_instruction_rates_are_finite_and_positive() {
        let out = simulate(
            workloads::ccom().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
        );
        assert!(out.transactions_per_instruction() > 0.0);
        assert!(out.bytes_per_instruction() > out.transactions_per_instruction());
    }
}
