//! Driving a workload trace through a cache configuration.

use cwp_cache::{Cache, CacheConfig, CacheStats, NullProbe, Probe};
use cwp_mem::{CwpError, MainMemory, NextLevel, Traffic, TrafficRecorder, VoidMemory};
use cwp_trace::{AccessKind, MemRef, RecordedTrace, Scale, TraceSink, TraceSummary, Workload};
use cwp_verify::InvariantAuditor;

use crate::supervise::CancelToken;

/// How many references the cancellable drivers replay between polls of
/// their [`CancelToken`]. Small enough to bound cancellation latency to
/// well under a millisecond, large enough that the poll is free.
const CANCEL_POLL_REFS: usize = 4096;

/// Everything one (workload, configuration) simulation produces.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The trace's instruction/read/write totals.
    pub summary: TraceSummary,
    /// Cache event counters, including flush ("flush stop") statistics.
    pub stats: CacheStats,
    /// Back-side traffic during execution only (cold stop).
    pub traffic_execution: Traffic,
    /// Back-side traffic including the final flush of dirty lines
    /// (flush stop) — the accounting Section 5 argues for.
    pub traffic_total: Traffic,
}

impl SimOutcome {
    /// Back-side transactions per instruction (Figure 18/19's y-axis),
    /// flush included.
    pub fn transactions_per_instruction(&self) -> f64 {
        self.traffic_total.total_transactions() as f64 / self.summary.instructions as f64
    }

    /// Back-side bytes per instruction, flush included.
    pub fn bytes_per_instruction(&self) -> f64 {
        self.traffic_total.total_bytes() as f64 / self.summary.instructions as f64
    }
}

/// A [`TraceSink`] adapter that feeds references into a cache.
///
/// Store data is fabricated (the byte pattern is irrelevant to every
/// statistic; functional correctness is covered by the transparency
/// property tests in `cwp-cache`). The backing memory `M` defaults to
/// [`MainMemory`], the golden data-carrying model; measurement-only
/// passes may substitute [`VoidMemory`] via [`CacheSink::data_free`].
#[derive(Debug)]
pub struct CacheSink<P = NullProbe, M = MainMemory> {
    cache: Cache<TrafficRecorder<M>, P>,
    scratch: [u8; 8],
}

impl CacheSink {
    /// Wraps a fresh cache built from `config`.
    pub fn new(config: CacheConfig) -> Self {
        CacheSink {
            cache: Cache::with_memory(config),
            scratch: [0u8; 8],
        }
    }
}

impl CacheSink<NullProbe, VoidMemory> {
    /// Wraps a fresh cache backed by [`VoidMemory`] instead of a real
    /// data image.
    ///
    /// [`CacheStats`] and [`Traffic`] are functions of the address
    /// stream and the configuration alone, so a data-free cache settles
    /// to outcomes identical to [`CacheSink::new`]'s at a fraction of
    /// the cost — but only while nothing observes the bytes themselves.
    /// Fault injection does (corrupted data changes recovery
    /// accounting), hence the panic below.
    ///
    /// # Panics
    ///
    /// Panics if `config` enables fault injection.
    pub fn data_free(config: CacheConfig) -> Self {
        assert_eq!(
            config.fault_rate_ppm(),
            0,
            "a data-free cache cannot model fault injection"
        );
        CacheSink {
            cache: Cache::new(config, TrafficRecorder::new(VoidMemory)),
            scratch: [0u8; 8],
        }
    }
}

impl<P: Probe> CacheSink<P> {
    /// Wraps a fresh cache built from `config` with `probe` observing
    /// every cache event.
    pub fn with_probe(config: CacheConfig, probe: P) -> Self {
        CacheSink {
            cache: Cache::with_memory_probed(config, probe),
            scratch: [0u8; 8],
        }
    }
}

impl<P: Probe, M: NextLevel> CacheSink<P, M> {
    /// The cache being driven.
    pub fn cache(&self) -> &Cache<TrafficRecorder<M>, P> {
        &self.cache
    }

    /// Mutable access to the cache being driven.
    pub fn cache_mut(&mut self) -> &mut Cache<TrafficRecorder<M>, P> {
        &mut self.cache
    }

    /// Consumes the sink, returning the cache.
    pub fn into_cache(self) -> Cache<TrafficRecorder<M>, P> {
        self.cache
    }
}

impl<P: Probe, M: NextLevel> TraceSink for CacheSink<P, M> {
    #[inline]
    fn record(&mut self, r: MemRef) {
        let len = r.size as usize;
        match r.kind {
            AccessKind::Read => {
                let mut buf = self.scratch;
                self.cache.read(r.addr, &mut buf[..len]);
            }
            AccessKind::Write => {
                let buf = self.scratch;
                self.cache.write(r.addr, &buf[..len]);
            }
        }
    }
}

/// Runs `workload` at `scale` through a cache built from `config`,
/// flushing at the end (flush stop).
///
/// # Examples
///
/// ```
/// use cwp_cache::CacheConfig;
/// use cwp_core::sim::simulate;
/// use cwp_trace::{workloads, Scale};
///
/// let outcome = simulate(
///     workloads::yacc().as_ref(),
///     Scale::Test,
///     &CacheConfig::default(),
/// );
/// assert!(outcome.stats.accesses() > 0);
/// ```
pub fn simulate(workload: &dyn Workload, scale: Scale, config: &CacheConfig) -> SimOutcome {
    let (outcome, NullProbe) = simulate_probed(workload, scale, config, NullProbe);
    outcome
}

/// As [`simulate`], but with `probe` attached to the cache for the whole
/// run (execution and final flush). Returns the probe alongside the
/// outcome so callers can inspect what it collected.
pub fn simulate_probed<P: Probe>(
    workload: &dyn Workload,
    scale: Scale,
    config: &CacheConfig,
    probe: P,
) -> (SimOutcome, P) {
    let mut sink = CacheSink::with_probe(*config, probe);
    let summary = workload.run(scale, &mut sink);
    settle(sink, summary)
}

/// Final-flush epilogue shared by every simulation driver: flush the
/// cache (flush stop), split traffic into execution-only vs total, and
/// hand the probe back.
fn settle<P: Probe, M: NextLevel>(sink: CacheSink<P, M>, summary: TraceSummary) -> (SimOutcome, P) {
    let mut cache = sink.into_cache();
    let traffic_execution = cache.traffic();
    cache.flush();
    let stats = *cache.stats();
    let traffic_total = cache.traffic();
    let (_, probe) = cache.into_parts();
    (
        SimOutcome {
            summary,
            stats,
            traffic_execution,
            traffic_total,
        },
        probe,
    )
}

/// As [`simulate`], but driven by a pre-recorded trace instead of a
/// live generator run. Produces an outcome identical to simulating the
/// workload the trace was recorded from.
///
/// # Examples
///
/// ```
/// use cwp_cache::CacheConfig;
/// use cwp_core::sim::{replay, simulate};
/// use cwp_trace::{workloads, RecordedTrace, Scale};
///
/// let w = workloads::met();
/// let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
/// let live = simulate(w.as_ref(), Scale::Test, &CacheConfig::default());
/// let replayed = replay(&trace, &CacheConfig::default());
/// assert_eq!(live.stats, replayed.stats);
/// ```
pub fn replay(trace: &RecordedTrace, config: &CacheConfig) -> SimOutcome {
    let (outcome, NullProbe) = replay_probed(trace, config, NullProbe);
    outcome
}

/// As [`simulate_probed`], but driven by a pre-recorded trace.
pub fn replay_probed<P: Probe>(
    trace: &RecordedTrace,
    config: &CacheConfig,
    probe: P,
) -> (SimOutcome, P) {
    let mut sink = CacheSink::with_probe(*config, probe);
    let summary = trace.replay(&mut sink);
    settle(sink, summary)
}

/// One replay pass through a bank of caches: every reference is fed to
/// each configuration in turn, so an N-point sweep decodes the trace
/// once instead of N times. Outcomes are returned in `configs` order
/// and are identical to calling [`replay`] per configuration.
///
/// Configurations without fault injection run as *data-free* banks
/// ([`CacheSink::data_free`]): no bytes move, no memory image is kept,
/// and only the metadata machinery — tags, valid/dirty masks, LRU,
/// traffic counters — executes. That skips `MainMemory`'s per-byte page
/// bookkeeping, which otherwise dominates a sweep's wall-clock cost.
/// Fault-injecting configurations (whose statistics *do* depend on the
/// bytes) fall back to a full per-configuration [`replay`].
pub fn simulate_many(trace: &RecordedTrace, configs: &[CacheConfig]) -> Vec<SimOutcome> {
    let mut outcomes: Vec<Option<SimOutcome>> = configs.iter().map(|_| None).collect();
    let bank: Vec<usize> = (0..configs.len())
        .filter(|&i| configs[i].fault_rate_ppm() == 0)
        .collect();
    if !bank.is_empty() {
        let mut sinks: Vec<CacheSink<NullProbe, VoidMemory>> = bank
            .iter()
            .map(|&i| CacheSink::data_free(configs[i]))
            .collect();
        for r in trace.iter() {
            for sink in &mut sinks {
                sink.record(r);
            }
        }
        let summary = trace.summary();
        for (&i, sink) in bank.iter().zip(sinks) {
            outcomes[i] = Some(settle(sink, summary).0);
        }
    }
    for (i, config) in configs.iter().enumerate() {
        if outcomes[i].is_none() {
            outcomes[i] = Some(replay(trace, config));
        }
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("every configuration was settled or replayed"))
        .collect()
}

// ---------------------------------------------------------------------
// Cancellable drivers (`cwp-serve` deadlines)
// ---------------------------------------------------------------------

/// As [`replay`], but polls `cancel` every [`CANCEL_POLL_REFS`]
/// references. Returns `None` if the token trips before the replay
/// finishes — the outcome so far is discarded, since a partial drive
/// produces meaningless statistics. An un-cancelled run is identical to
/// [`replay`].
pub fn replay_cancellable(
    trace: &RecordedTrace,
    config: &CacheConfig,
    cancel: &CancelToken,
) -> Option<SimOutcome> {
    let mut sink = CacheSink::new(*config);
    for (i, r) in trace.iter().enumerate() {
        if i % CANCEL_POLL_REFS == 0 && cancel.is_cancelled() {
            return None;
        }
        sink.record(r);
    }
    if cancel.is_cancelled() {
        return None;
    }
    Some(settle(sink, trace.summary()).0)
}

/// As [`simulate_many`], but cooperatively cancellable: the banked pass
/// polls `cancel` every [`CANCEL_POLL_REFS`] references, and the
/// per-configuration fault-injection fallback uses
/// [`replay_cancellable`]. Returns `None` on cancellation; an
/// un-cancelled run returns outcomes identical to [`simulate_many`].
pub fn simulate_many_cancellable(
    trace: &RecordedTrace,
    configs: &[CacheConfig],
    cancel: &CancelToken,
) -> Option<Vec<SimOutcome>> {
    let mut outcomes: Vec<Option<SimOutcome>> = configs.iter().map(|_| None).collect();
    let bank: Vec<usize> = (0..configs.len())
        .filter(|&i| configs[i].fault_rate_ppm() == 0)
        .collect();
    if !bank.is_empty() {
        let mut sinks: Vec<CacheSink<NullProbe, VoidMemory>> = bank
            .iter()
            .map(|&i| CacheSink::data_free(configs[i]))
            .collect();
        for (i, r) in trace.iter().enumerate() {
            if i % CANCEL_POLL_REFS == 0 && cancel.is_cancelled() {
                return None;
            }
            for sink in &mut sinks {
                sink.record(r);
            }
        }
        let summary = trace.summary();
        for (&i, sink) in bank.iter().zip(sinks) {
            outcomes[i] = Some(settle(sink, summary).0);
        }
    }
    for (i, config) in configs.iter().enumerate() {
        if outcomes[i].is_none() {
            outcomes[i] = Some(replay_cancellable(trace, config, cancel)?);
        }
    }
    if cancel.is_cancelled() {
        return None;
    }
    Some(
        outcomes
            .into_iter()
            .map(|o| o.expect("every configuration was settled or replayed"))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Audited drivers (`figures --audit`, `cwp-fuzz`)
// ---------------------------------------------------------------------

/// A [`TraceSink`] adapter that forwards every reference to an audited
/// [`CacheSink`] and re-checks the engine's sub-block mask laws on the
/// touched set(s) after each one. Violations are remembered (first one
/// wins) rather than panicking, so the trace drive completes and the
/// caller can surface a typed error.
struct AuditingSink<'a> {
    inner: &'a mut CacheSink<InvariantAuditor>,
    first_violation: Option<String>,
}

impl TraceSink for AuditingSink<'_> {
    fn record(&mut self, r: MemRef) {
        self.inner.record(r);
        if self.first_violation.is_none() {
            if let Err(e) = self.inner.cache().audit_masks_at(r.addr, r.size as usize) {
                self.first_violation = Some(e);
            }
        }
    }
}

/// Shared epilogue of the audited drivers: surface per-reference mask
/// violations, settle, then run the auditor's online checks and its
/// event-vs-counter reconciliation.
fn settle_audited(
    sink: CacheSink<InvariantAuditor>,
    summary: TraceSummary,
    first_violation: Option<String>,
) -> Result<SimOutcome, CwpError> {
    if let Some(detail) = first_violation {
        return Err(CwpError::InvariantViolation { detail });
    }
    let (outcome, auditor) = settle(sink, summary);
    auditor.check()?;
    auditor.reconcile(&outcome.stats, &outcome.traffic_total)?;
    Ok(outcome)
}

/// As [`simulate`], but with the full invariant audit enabled: an
/// [`InvariantAuditor`] probe re-derives every counter and traffic class
/// from the event stream and checks conservation laws, and the engine's
/// sub-block mask laws are re-verified after every reference.
///
/// The outcome is identical to [`simulate`]'s — auditing observes, it
/// never steers — so `figures --audit` output is byte-identical to an
/// unaudited run.
///
/// # Errors
///
/// [`CwpError::InvariantViolation`] describing the first broken law.
pub fn simulate_audited(
    workload: &dyn Workload,
    scale: Scale,
    config: &CacheConfig,
) -> Result<SimOutcome, CwpError> {
    let mut sink = CacheSink::with_probe(*config, InvariantAuditor::new(config));
    let mut audit = AuditingSink {
        inner: &mut sink,
        first_violation: None,
    };
    let summary = workload.run(scale, &mut audit);
    let first_violation = audit.first_violation.take();
    settle_audited(sink, summary, first_violation)
}

/// As [`replay`], but with the full invariant audit enabled. See
/// [`simulate_audited`].
///
/// # Errors
///
/// [`CwpError::InvariantViolation`] describing the first broken law.
pub fn replay_audited(trace: &RecordedTrace, config: &CacheConfig) -> Result<SimOutcome, CwpError> {
    let mut sink = CacheSink::with_probe(*config, InvariantAuditor::new(config));
    let mut audit = AuditingSink {
        inner: &mut sink,
        first_violation: None,
    };
    let summary = trace.replay(&mut audit);
    let first_violation = audit.first_violation.take();
    settle_audited(sink, summary, first_violation)
}

/// As [`simulate_many`], but audited: besides running the banked pass,
/// every configuration is *also* replayed singly under a full audit and
/// the two outcomes are required to match exactly — the "stats deltas
/// sum across a banked pass exactly as they do run singly" conservation
/// law. Roughly doubles the cost; only the `--audit` paths use it.
///
/// # Errors
///
/// [`CwpError::InvariantViolation`] if any audited single replay breaks
/// a law, or if a banked outcome differs from its single-replay twin.
pub fn simulate_many_audited(
    trace: &RecordedTrace,
    configs: &[CacheConfig],
) -> Result<Vec<SimOutcome>, CwpError> {
    let banked = simulate_many(trace, configs);
    for (outcome, config) in banked.iter().zip(configs) {
        let solo = replay_audited(trace, config)?;
        if solo.summary != outcome.summary
            || solo.stats != outcome.stats
            || solo.traffic_execution != outcome.traffic_execution
            || solo.traffic_total != outcome.traffic_total
        {
            return Err(CwpError::InvariantViolation {
                detail: format!(
                    "banked simulate_many outcome diverges from its audited single \
                     replay for {config}"
                ),
            });
        }
    }
    Ok(banked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_cache::{WriteHitPolicy, WriteMissPolicy};
    use cwp_trace::workloads;

    #[test]
    fn simulate_accounts_for_every_reference() {
        let out = simulate(
            workloads::grr().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
        );
        // Word-sized refs never split with 16B lines.
        assert_eq!(out.stats.reads, out.summary.reads);
        assert_eq!(out.stats.writes, out.summary.writes);
        assert_eq!(out.stats.read_hits + out.stats.read_misses, out.stats.reads);
        assert_eq!(
            out.stats.write_hits + out.stats.write_misses,
            out.stats.writes
        );
    }

    #[test]
    fn flush_traffic_is_additional() {
        let out = simulate(
            workloads::yacc().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
        );
        assert!(
            out.traffic_total.write_back.transactions
                >= out.traffic_execution.write_back.transactions
        );
        assert_eq!(
            out.traffic_total.fetch, out.traffic_execution.fetch,
            "flush never fetches"
        );
    }

    #[test]
    fn write_through_cache_generates_store_traffic() {
        let config = CacheConfig::builder()
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::WriteAround)
            .build()
            .unwrap();
        let out = simulate(workloads::liver().as_ref(), Scale::Test, &config);
        assert_eq!(
            out.traffic_total.write_through.transactions,
            out.stats.writes
        );
        assert_eq!(out.traffic_total.write_back.transactions, 0);
    }

    #[test]
    fn replay_matches_a_live_generator_run() {
        let w = workloads::yacc();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let config = CacheConfig::default();
        let live = simulate(w.as_ref(), Scale::Test, &config);
        let replayed = replay(&trace, &config);
        assert_eq!(live.summary, replayed.summary);
        assert_eq!(live.stats, replayed.stats);
        assert_eq!(live.traffic_execution, replayed.traffic_execution);
        assert_eq!(live.traffic_total, replayed.traffic_total);
    }

    #[test]
    fn simulate_many_matches_per_config_replay() {
        let w = workloads::liver();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let configs = [
            CacheConfig::default(),
            CacheConfig::builder()
                .write_hit(WriteHitPolicy::WriteThrough)
                .write_miss(WriteMissPolicy::WriteAround)
                .build()
                .unwrap(),
            CacheConfig::builder().size_bytes(1024).build().unwrap(),
        ];
        let fanned = simulate_many(&trace, &configs);
        assert_eq!(fanned.len(), configs.len());
        for (outcome, config) in fanned.iter().zip(&configs) {
            let solo = replay(&trace, config);
            assert_eq!(outcome.summary, solo.summary);
            assert_eq!(outcome.stats, solo.stats);
            assert_eq!(outcome.traffic_execution, solo.traffic_execution);
            assert_eq!(outcome.traffic_total, solo.traffic_total);
        }
    }

    #[test]
    fn data_free_bank_matches_the_golden_engine_across_every_policy() {
        // The data-free fast path must be indistinguishable from the
        // data-carrying engine wherever simulate_many may use it: every
        // write-hit x write-miss combination, plus set-associative and
        // narrow/wide-line geometries that stress victim selection and
        // sub-block masks.
        let w = workloads::ccom();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let mut configs = Vec::new();
        for hit in WriteHitPolicy::ALL {
            for miss in WriteMissPolicy::ALL {
                // Skip combinations the builder rejects (write-back +
                // write-invalidate conflict).
                if let Ok(config) = CacheConfig::builder()
                    .size_bytes(1024)
                    .line_bytes(16)
                    .write_hit(hit)
                    .write_miss(miss)
                    .build()
                {
                    configs.push(config);
                }
            }
        }
        assert_eq!(configs.len(), 6, "4 write-through + 2 write-back combos");
        for (line, ways) in [(4u32, 1u32), (32, 2), (16, 4)] {
            configs.push(
                CacheConfig::builder()
                    .size_bytes(2048)
                    .line_bytes(line)
                    .associativity(ways)
                    .write_hit(WriteHitPolicy::WriteBack)
                    .write_miss(WriteMissPolicy::WriteValidate)
                    .build()
                    .unwrap(),
            );
        }
        let fanned = simulate_many(&trace, &configs);
        for (outcome, config) in fanned.iter().zip(&configs) {
            let golden = replay(&trace, config);
            assert_eq!(outcome.summary, golden.summary, "{config:?}");
            assert_eq!(outcome.stats, golden.stats, "{config:?}");
            assert_eq!(
                outcome.traffic_execution, golden.traffic_execution,
                "{config:?}"
            );
            assert_eq!(outcome.traffic_total, golden.traffic_total, "{config:?}");
        }
    }

    #[test]
    fn fault_injecting_configs_fall_back_to_the_full_engine() {
        let w = workloads::grr();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let faulty = CacheConfig::builder()
            .size_bytes(1024)
            .fault_rate_ppm(5_000)
            .fault_seed(7)
            .build()
            .unwrap();
        let clean = CacheConfig::builder().size_bytes(1024).build().unwrap();
        let fanned = simulate_many(&trace, &[faulty, clean]);
        let golden = replay(&trace, &faulty);
        assert!(
            fanned[0].stats.faults.injected > 0,
            "the faulty config must actually inject"
        );
        assert_eq!(fanned[0].stats, golden.stats);
        assert_eq!(fanned[0].traffic_total, golden.traffic_total);
        assert_eq!(fanned[1].stats, replay(&trace, &clean).stats);
    }

    #[test]
    #[should_panic(expected = "cannot model fault injection")]
    fn data_free_sink_rejects_fault_injection() {
        let config = CacheConfig::builder().fault_rate_ppm(1).build().unwrap();
        let _ = CacheSink::data_free(config);
    }

    #[test]
    fn cancellable_drivers_match_their_plain_twins_when_not_cancelled() {
        let w = workloads::met();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let configs = [
            CacheConfig::default(),
            CacheConfig::builder()
                .size_bytes(1024)
                .fault_rate_ppm(5_000)
                .fault_seed(3)
                .build()
                .unwrap(),
        ];
        let token = CancelToken::new();
        let solo = replay_cancellable(&trace, &configs[0], &token).unwrap();
        assert_eq!(solo.stats, replay(&trace, &configs[0]).stats);
        let fanned = simulate_many_cancellable(&trace, &configs, &token).unwrap();
        let plain = simulate_many(&trace, &configs);
        for (a, b) in fanned.iter().zip(&plain) {
            assert_eq!(a.summary, b.summary);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.traffic_total, b.traffic_total);
        }
    }

    #[test]
    fn a_tripped_token_aborts_the_drive() {
        let w = workloads::met();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let token = CancelToken::new();
        token.cancel();
        assert!(replay_cancellable(&trace, &CacheConfig::default(), &token).is_none());
        assert!(simulate_many_cancellable(&trace, &[CacheConfig::default()], &token).is_none());
    }

    #[test]
    fn per_instruction_rates_are_finite_and_positive() {
        let out = simulate(
            workloads::ccom().as_ref(),
            Scale::Test,
            &CacheConfig::default(),
        );
        assert!(out.transactions_per_instruction() > 0.0);
        assert!(out.bytes_per_instruction() > out.transactions_per_instruction());
    }

    #[test]
    fn audited_runs_pass_and_match_unaudited_outcomes() {
        // The auditor observes, it never steers: an audited run must
        // produce the exact outcome of an unaudited one, across every
        // valid policy combination.
        let w = workloads::yacc();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        for hit in WriteHitPolicy::ALL {
            for miss in WriteMissPolicy::ALL {
                let Ok(config) = CacheConfig::builder()
                    .size_bytes(1024)
                    .write_hit(hit)
                    .write_miss(miss)
                    .build()
                else {
                    continue;
                };
                let plain = replay(&trace, &config);
                let audited = replay_audited(&trace, &config)
                    .unwrap_or_else(|e| panic!("audit failed for {config}: {e}"));
                assert_eq!(plain.summary, audited.summary);
                assert_eq!(plain.stats, audited.stats);
                assert_eq!(plain.traffic_execution, audited.traffic_execution);
                assert_eq!(plain.traffic_total, audited.traffic_total);
            }
        }
    }

    #[test]
    fn simulate_audited_agrees_with_replay_audited() {
        let w = workloads::grr();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let config = CacheConfig::default();
        let live = simulate_audited(w.as_ref(), Scale::Test, &config).unwrap();
        let replayed = replay_audited(&trace, &config).unwrap();
        assert_eq!(live.summary, replayed.summary);
        assert_eq!(live.stats, replayed.stats);
        assert_eq!(live.traffic_total, replayed.traffic_total);
    }

    #[test]
    fn simulate_many_audited_upholds_the_banked_equals_singly_law() {
        let w = workloads::liver();
        let trace = RecordedTrace::record(w.as_ref(), Scale::Test);
        let configs = [
            CacheConfig::default(),
            CacheConfig::builder()
                .size_bytes(1024)
                .write_hit(WriteHitPolicy::WriteThrough)
                .write_miss(WriteMissPolicy::WriteValidate)
                .build()
                .unwrap(),
        ];
        let banked = simulate_many_audited(&trace, &configs).unwrap();
        let unaudited = simulate_many(&trace, &configs);
        for (a, b) in banked.iter().zip(&unaudited) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.traffic_total, b.traffic_total);
        }
    }
}
