//! The [`TraceStore`]: record-once/replay-many trace sharing.
//!
//! Every sweep in the paper drives the same six reference streams
//! through many cache configurations. The store holds one
//! [`RecordedTrace`] per workload (at one scale) behind an `Arc`, so
//! every [`Lab`](crate::Lab) — and every worker thread in the
//! supervised runner — replays a single recording instead of re-running
//! the workload generator per sweep point.
//!
//! Capture is memory-bounded: the store has a byte budget
//! ([`DEFAULT_BUDGET_BYTES`] unless configured). A workload whose trace
//! fits the *total* budget always records; if the store is then over
//! budget, the least-recently-used other recordings are evicted until
//! it fits again (an evicted workload simply re-records on next use).
//! Only a workload whose trace alone exceeds the whole budget records
//! nothing and falls back to live generation — callers see `None` from
//! [`TraceStore::get_or_record`] and drive the generator directly. A
//! budget of zero ([`TraceStore::disabled`]) turns the store off
//! entirely, which is how `figures --no-trace-store` forces the legacy
//! regenerate-always path for equivalence checks.
//!
//! Concurrency: each workload's slot is a `OnceLock`, so concurrent
//! workers block on (rather than duplicate) an in-flight recording,
//! and a panic inside a generator leaves the slot empty for the next
//! attempt. The budget accounting is advisory — two workloads recording
//! at the same instant may transiently overshoot by one trace (the
//! overshoot is trimmed back by eviction as each finishes), and holders
//! of an evicted trace's `Arc` keep it alive until they drop it.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cwp_obs::{obs_debug, obs_warn};
use cwp_trace::{RecordedTrace, Scale, Workload, APPROX_BYTES_PER_REF, TRACE_FILE_EXT};

/// Default capture budget: 512 MiB, comfortably above the ~240 MiB the
/// six paper-scale traces need while still bounding worst-case memory.
pub const DEFAULT_BUDGET_BYTES: u64 = 512 << 20;

type Slot = Arc<OnceLock<Option<Arc<RecordedTrace>>>>;

/// A workload's slot plus its LRU stamp (larger = used more recently).
struct SlotEntry {
    slot: Slot,
    last_used: u64,
}

/// Shared storage of one recorded trace per workload, at one scale.
///
/// Cheap to share: hold it in an `Arc` and clone the handle per
/// thread. All methods take `&self`.
///
/// # Examples
///
/// ```
/// use cwp_core::TraceStore;
/// use cwp_trace::{workloads, Scale};
///
/// let store = TraceStore::new(Scale::Test);
/// let w = workloads::yacc();
/// let a = store.get_or_record(w.as_ref()).expect("fits the budget");
/// let b = store.get_or_record(w.as_ref()).expect("fits the budget");
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "recorded exactly once");
/// assert_eq!(store.recordings(), 1);
/// ```
pub struct TraceStore {
    scale: Scale,
    budget_bytes: u64,
    used_bytes: AtomicU64,
    recordings: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    clock: AtomicU64,
    slots: Mutex<HashMap<String, SlotEntry>>,
}

impl TraceStore {
    /// A store at `scale` with the default capture budget.
    pub fn new(scale: Scale) -> Self {
        Self::with_budget(scale, DEFAULT_BUDGET_BYTES)
    }

    /// A store at `scale` that keeps at most `budget_bytes` of
    /// recordings; workloads that would exceed it fall back to live
    /// generation.
    pub fn with_budget(scale: Scale, budget_bytes: u64) -> Self {
        TraceStore {
            scale,
            budget_bytes,
            used_bytes: AtomicU64::new(0),
            recordings: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// A store that never records: every lookup returns `None`, so all
    /// simulation regenerates traces live.
    pub fn disabled(scale: Scale) -> Self {
        Self::with_budget(scale, 0)
    }

    /// The scale every recording was (or will be) captured at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// `false` when the store was built with [`TraceStore::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// Approximate bytes currently held by recordings.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Number of traces captured by generator runs (loaded or inserted
    /// traces do not count). A re-capture after an eviction counts
    /// again.
    pub fn recordings(&self) -> u64 {
        self.recordings.load(Ordering::Relaxed)
    }

    /// Number of recordings evicted to respect the budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lookups served from an existing recording without capturing.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to capture a trace, found nothing, or fell
    /// back to live generation. `hits / (hits + misses)` is the
    /// store's hit ratio.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The slot for `name`, created empty if absent, with its LRU stamp
    /// refreshed.
    fn slot(&self, name: &str) -> Slot {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let entry = slots.entry(name.to_string()).or_insert_with(|| SlotEntry {
            slot: Slot::default(),
            last_used: stamp,
        });
        entry.last_used = stamp;
        Arc::clone(&entry.slot)
    }

    /// Evicts least-recently-used recordings (never `keep`'s) until the
    /// store fits its budget or nothing evictable remains.
    fn evict_to_budget(&self, keep: &str) {
        while self.used_bytes.load(Ordering::Relaxed) > self.budget_bytes {
            let victim = {
                let mut slots = self
                    .slots
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                let name = slots
                    .iter()
                    .filter(|(name, entry)| {
                        name.as_str() != keep && matches!(entry.slot.get(), Some(Some(_)))
                    })
                    .min_by_key(|(_, entry)| entry.last_used)
                    .map(|(name, _)| name.clone());
                name.and_then(|n| slots.remove(&n).map(|entry| (n, entry)))
            };
            let Some((name, entry)) = victim else {
                return; // nothing left to evict; stay (advisorily) over
            };
            if let Some(Some(trace)) = entry.slot.get() {
                let bytes = trace.approx_bytes();
                let _ = self
                    .used_bytes
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        Some(v.saturating_sub(bytes))
                    });
                self.evictions.fetch_add(1, Ordering::Relaxed);
                obs_debug!(
                    "evicted {name} (~{} KiB) to respect the {} MiB trace budget",
                    bytes / 1024,
                    self.budget_bytes >> 20
                );
            }
        }
    }

    /// The recording for `workload`, capturing it on first use.
    ///
    /// A trace that fits the *total* budget always records; if the
    /// store then exceeds its budget, least-recently-used recordings
    /// are evicted to make room (they re-record on next use). Returns
    /// `None` only when the store is disabled or the workload's trace
    /// alone exceeds the whole budget — the caller should run the
    /// generator live. That miss is remembered, so a never-fits
    /// workload costs one wasted generator pass in total, not one per
    /// lookup.
    pub fn get_or_record(&self, workload: &dyn Workload) -> Option<Arc<RecordedTrace>> {
        if !self.is_enabled() {
            // The caller will generate live: a miss by definition.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let slot = self.slot(workload.name());
        let mut captured = false;
        let recorded = slot
            .get_or_init(|| {
                captured = true;
                // 12 B/ref floors the SoA footprint (4 gap + 8 addr,
                // meta rounds up), so the record cap never rejects a
                // trace whose true size fits the budget; the exact
                // check below catches the sliver the floor lets
                // through. APPROX_BYTES_PER_REF (13) stays the sizing
                // estimate for callers.
                let max_records =
                    usize::try_from(self.budget_bytes / (APPROX_BYTES_PER_REF - 1))
                        .unwrap_or(usize::MAX);
                match RecordedTrace::record_bounded(workload, self.scale, max_records) {
                    Ok(trace) if trace.approx_bytes() > self.budget_bytes => {
                        obs_warn!(
                            "{} does not fit the trace budget ({} of {} bytes); \
                             falling back to live generation",
                            workload.name(),
                            trace.approx_bytes(),
                            self.budget_bytes
                        );
                        None
                    }
                    Ok(trace) => {
                        self.used_bytes
                            .fetch_add(trace.approx_bytes(), Ordering::Relaxed);
                        self.recordings.fetch_add(1, Ordering::Relaxed);
                        obs_debug!(
                            "recorded {} at {}: {} refs, ~{} KiB",
                            workload.name(),
                            self.scale,
                            trace.len(),
                            trace.approx_bytes() / 1024
                        );
                        Some(Arc::new(trace))
                    }
                    Err(overflow) => {
                        obs_warn!(
                            "{} does not fit the trace budget ({overflow}); falling back to live generation",
                            workload.name()
                        );
                        None
                    }
                }
            })
            .clone();
        // Hit-ratio accounting: a hit is a recorded trace served
        // without capture work; a capture, a remembered never-fits
        // workload, or a disabled slot all count as misses.
        if recorded.is_some() && !captured {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        self.evict_to_budget(workload.name());
        recorded
    }

    /// The recording for `name`, if one is already present. Never
    /// triggers a capture.
    pub fn lookup(&self, name: &str) -> Option<Arc<RecordedTrace>> {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.slot(name).get().cloned().flatten();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Installs a pre-built recording (e.g. one loaded from disk) for
    /// `name`, replacing any existing slot. Evicts LRU recordings if
    /// the store is pushed over budget.
    pub fn insert(&self, name: &str, trace: Arc<RecordedTrace>) {
        self.used_bytes
            .fetch_add(trace.approx_bytes(), Ordering::Relaxed);
        let cell = OnceLock::new();
        cell.set(Some(trace)).expect("fresh cell is empty");
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let replaced = {
            let mut slots = self
                .slots
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slots.insert(
                name.to_string(),
                SlotEntry {
                    slot: Arc::new(cell),
                    last_used: stamp,
                },
            )
        };
        // Replacing a populated slot releases its bytes.
        if let Some(entry) = replaced {
            if let Some(Some(old)) = entry.slot.get() {
                let bytes = old.approx_bytes();
                let _ = self
                    .used_bytes
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        Some(v.saturating_sub(bytes))
                    });
            }
        }
        self.evict_to_budget(name);
    }

    /// Workload names with a recording present, sorted.
    pub fn recorded_names(&self) -> Vec<String> {
        let slots = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut names: Vec<String> = slots
            .iter()
            .filter(|(_, entry)| matches!(entry.slot.get(), Some(Some(_))))
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// The conventional file name for `workload`'s trace on disk.
    pub fn trace_file_name(workload: &str) -> String {
        format!("{workload}.{TRACE_FILE_EXT}")
    }

    /// Saves every present recording into `dir` (created if absent) as
    /// `<workload>.cwptrc`, returning the files written.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error; earlier files may already be on
    /// disk.
    pub fn save_all(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for name in self.recorded_names() {
            if let Some(trace) = self.lookup(&name) {
                let path = dir.join(Self::trace_file_name(&name));
                trace.save(&path)?;
                written.push(path);
            }
        }
        Ok(written)
    }
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("scale", &self.scale)
            .field("budget_bytes", &self.budget_bytes)
            .field("used_bytes", &self.used_bytes())
            .field("recordings", &self.recordings())
            .field("evictions", &self.evictions())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_trace::workloads;

    #[test]
    fn stores_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceStore>();
    }

    #[test]
    fn concurrent_lookups_record_once() {
        let store = Arc::new(TraceStore::new(Scale::Test));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let w = workloads::liver();
                    store.get_or_record(w.as_ref()).unwrap().len()
                })
            })
            .collect();
        let lens: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(store.recordings(), 1, "one capture despite four threads");
        assert!(store.used_bytes() > 0);
    }

    #[test]
    fn a_disabled_store_never_records() {
        let store = TraceStore::disabled(Scale::Test);
        let w = workloads::yacc();
        assert!(store.get_or_record(w.as_ref()).is_none());
        assert!(store.lookup("yacc").is_none());
        assert_eq!(store.recordings(), 0);
        assert!(!store.is_enabled());
    }

    #[test]
    fn over_budget_workloads_fall_back_and_are_remembered() {
        // Enough budget to be enabled, far too little for a real trace.
        let store = TraceStore::with_budget(Scale::Test, 64);
        let w = workloads::ccom();
        assert!(store.get_or_record(w.as_ref()).is_none());
        assert!(store.get_or_record(w.as_ref()).is_none());
        assert_eq!(store.recordings(), 0);
        assert_eq!(store.used_bytes(), 0);
        assert_eq!(store.evictions(), 0, "nothing was stored, nothing evicts");
    }

    #[test]
    fn lru_eviction_respects_the_budget_and_recency_order() {
        // Size the budget so it holds yacc+met but not all three: the
        // third recording must evict exactly one — the least recently
        // *used*, not the least recently recorded.
        let sizes: Vec<u64> = [workloads::yacc(), workloads::met(), workloads::grr()]
            .iter()
            .map(|w| RecordedTrace::record(w.as_ref(), Scale::Test).approx_bytes())
            .collect();
        let (s_yacc, s_met, s_grr) = (sizes[0], sizes[1], sizes[2]);
        let budget = (s_yacc + s_met).max(s_yacc + s_grr) + 8;
        assert!(
            budget < s_yacc + s_met + s_grr,
            "budget must not hold all three"
        );
        let store = TraceStore::with_budget(Scale::Test, budget);

        assert!(store.get_or_record(workloads::yacc().as_ref()).is_some());
        assert!(store.get_or_record(workloads::met().as_ref()).is_some());
        assert_eq!(store.evictions(), 0, "both fit");
        // Touch yacc so met becomes the LRU victim.
        assert!(store.lookup("yacc").is_some());
        assert!(store.get_or_record(workloads::grr().as_ref()).is_some());
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.recorded_names(), ["grr", "yacc"]);
        assert!(store.used_bytes() <= budget, "eviction restored the budget");

        // The evicted workload transparently re-records on next use.
        assert!(store.get_or_record(workloads::met().as_ref()).is_some());
        assert_eq!(store.recordings(), 4, "met was captured twice");
        assert!(store.evictions() >= 2);
        assert!(store.used_bytes() <= budget);
    }

    #[test]
    fn a_trace_larger_than_everything_already_stored_still_records() {
        // A budget that holds only the larger of two traces must evict
        // the smaller earlier recording rather than refuse to record.
        let s_ccom = RecordedTrace::record(workloads::ccom().as_ref(), Scale::Test).approx_bytes();
        let s_met = RecordedTrace::record(workloads::met().as_ref(), Scale::Test).approx_bytes();
        let (first, second, larger) = if s_ccom >= s_met {
            ("met", "ccom", s_ccom)
        } else {
            ("ccom", "met", s_met)
        };
        let store = TraceStore::with_budget(Scale::Test, larger + 8);
        assert!(store
            .get_or_record(workloads::by_name(first).unwrap().as_ref())
            .is_some());
        assert!(
            store
                .get_or_record(workloads::by_name(second).unwrap().as_ref())
                .is_some(),
            "fits the total budget, so it records"
        );
        assert_eq!(store.evictions(), 1, "the smaller trace was evicted");
        assert_eq!(store.recorded_names(), [second]);
    }

    #[test]
    fn inserted_traces_are_served_and_listed() {
        let store = TraceStore::new(Scale::Test);
        let w = workloads::met();
        let trace = Arc::new(RecordedTrace::record(w.as_ref(), Scale::Test));
        store.insert("met", Arc::clone(&trace));
        let got = store.get_or_record(w.as_ref()).unwrap();
        assert!(Arc::ptr_eq(&got, &trace), "served without re-recording");
        assert_eq!(store.recordings(), 0);
        assert_eq!(store.recorded_names(), ["met"]);
    }

    #[test]
    fn hits_and_misses_count_served_recordings_and_captures() {
        let store = TraceStore::new(Scale::Test);
        let w = workloads::ccom();
        // First use captures: a miss, not a hit.
        assert!(store.get_or_record(w.as_ref()).is_some());
        assert_eq!((store.hits(), store.misses()), (0, 1));
        // Subsequent uses are served from the recording.
        assert!(store.get_or_record(w.as_ref()).is_some());
        assert!(store.get_or_record(w.as_ref()).is_some());
        assert_eq!((store.hits(), store.misses()), (2, 1));
        // Lookups count too, both ways.
        assert!(store.lookup("ccom").is_some());
        assert!(store.lookup("grr").is_none());
        assert_eq!((store.hits(), store.misses()), (3, 2));
        // A disabled store serves nothing: every use is a miss.
        let disabled = TraceStore::disabled(Scale::Test);
        assert!(disabled.get_or_record(w.as_ref()).is_none());
        assert_eq!((disabled.hits(), disabled.misses()), (0, 1));
    }

    #[test]
    fn save_all_writes_loadable_traces() {
        let dir = std::env::temp_dir().join(format!("cwp-store-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::new(Scale::Test);
        let w = workloads::grr();
        let original = store.get_or_record(w.as_ref()).unwrap();
        let written = store.save_all(&dir).unwrap();
        assert_eq!(written.len(), 1);
        assert!(written[0].ends_with("grr.cwptrc"));
        let loaded = RecordedTrace::load(&written[0]).unwrap();
        assert_eq!(&loaded, original.as_ref());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
