//! Reusable supervision primitives: deadline watchdog, delayed release,
//! deterministic backoff, and cooperative cancellation.
//!
//! Extracted from the runner so every supervised execution context in
//! the workspace — the batch [`Runner`](crate::runner::Runner) and the
//! resident `cwp-serve` front end — shares one implementation of the
//! fiddly parts:
//!
//! - [`Supervisor`]: a background thread that tracks in-flight work
//!   keyed by an arbitrary `u64`, expires entries whose deadline has
//!   passed, and releases delayed payloads (retry backoff) when due;
//! - [`backoff_delay`]: the deterministic, seeded exponential backoff
//!   schedule (SplitMix64 jitter — same seed, same stream, same
//!   attempt: same delay);
//! - [`CancelToken`]: a cheap shared flag that long simulation loops
//!   poll so abandoned work stops burning CPU.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cwp_mem::rng::SplitMix64;

// ---------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------

/// The deterministic backoff before retry `attempt` of the given
/// `stream` (a job index, request id, or any stable identifier):
/// `base * 2^(attempt-1)`, jittered by a seeded multiplier in
/// `[0.5, 1.5)`. Same seed, same stream, same attempt — same delay.
pub fn backoff_delay(base: Duration, seed: u64, stream: u64, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16));
    let seed = seed
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(u64::from(attempt));
    let mut rng = SplitMix64::seed_from_u64(seed);
    exp.mul_f64(0.5 + rng.gen_f64())
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

/// A shared cancellation flag.
///
/// Cloning is cheap (one `Arc`); all clones observe the same flag.
/// Simulation loops poll [`is_cancelled`](CancelToken::is_cancelled)
/// every few thousand references, so cancellation latency is bounded
/// without per-reference overhead.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the flag; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any clone has called [`cancel`](CancelToken::cancel).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// The supervisor thread
// ---------------------------------------------------------------------

/// State shared between supervisor users and its thread.
struct SupervisorState<T> {
    running: HashMap<u64, (Option<Instant>, T)>,
    delayed: Vec<(Instant, T)>,
    shutdown: bool,
}

type Shared<T> = Arc<(Mutex<SupervisorState<T>>, Condvar)>;

/// A watchdog thread over in-flight work.
///
/// Entries are registered under a `u64` key with an optional deadline.
/// When a deadline passes, the entry is removed and the `on_expired`
/// callback fires with its key and payload; the owner discovering its
/// entry gone (via [`complete`](Supervisor::complete) returning `None`)
/// knows it was abandoned. Payloads handed to
/// [`release_after`](Supervisor::release_after) are delivered to the
/// `on_due` callback once their instant passes — the retry-backoff
/// mechanism.
///
/// Callbacks run on the supervisor thread with its lock released, so
/// they may re-enter the supervisor (e.g. re-register work), but they
/// should stay short: a slow callback delays every other expiry.
pub struct Supervisor<T: Clone + Send + 'static> {
    shared: Shared<T>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl<T: Clone + Send + 'static> Supervisor<T> {
    /// Spawns the supervisor thread.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn the thread.
    pub fn spawn(
        name: &str,
        on_expired: impl Fn(u64, T) + Send + 'static,
        on_due: impl Fn(T) + Send + 'static,
    ) -> Self {
        let shared: Shared<T> = Arc::new((
            Mutex::new(SupervisorState {
                running: HashMap::new(),
                delayed: Vec::new(),
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(name.to_string())
                .spawn(move || supervisor_loop(&shared, &on_expired, &on_due))
                .expect("spawn supervisor thread")
        };
        Supervisor {
            shared,
            handle: Some(handle),
        }
    }

    /// Tracks `payload` under `key`; a `None` deadline disables expiry
    /// for this entry (it still must be [`complete`]d).
    ///
    /// [`complete`]: Supervisor::complete
    pub fn register(&self, key: u64, deadline: Option<Instant>, payload: T) {
        let (lock, cvar) = &*self.shared;
        lock.lock()
            .expect("supervisor lock")
            .running
            .insert(key, (deadline, payload));
        cvar.notify_one();
    }

    /// Removes the entry for `key`, returning its payload — or `None`
    /// if the supervisor already expired it (the caller was abandoned
    /// and must not act on the work's result).
    pub fn complete(&self, key: u64) -> Option<T> {
        let (lock, _) = &*self.shared;
        lock.lock()
            .expect("supervisor lock")
            .running
            .remove(&key)
            .map(|(_, payload)| payload)
    }

    /// Schedules `payload` for delivery to `on_due` once `at` passes.
    pub fn release_after(&self, at: Instant, payload: T) {
        let (lock, cvar) = &*self.shared;
        lock.lock()
            .expect("supervisor lock")
            .delayed
            .push((at, payload));
        cvar.notify_one();
    }

    /// Stops the supervisor thread. Pending delayed payloads are
    /// dropped; in-flight entries are forgotten. Called automatically
    /// on drop.
    pub fn shutdown(&self) {
        let (lock, cvar) = &*self.shared;
        lock.lock().expect("supervisor lock").shutdown = true;
        cvar.notify_all();
    }
}

impl<T: Clone + Send + 'static> Drop for Supervisor<T> {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<T: Clone + Send + 'static> std::fmt::Debug for Supervisor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lock, _) = &*self.shared;
        let state = lock.lock().expect("supervisor lock");
        f.debug_struct("Supervisor")
            .field("running", &state.running.len())
            .field("delayed", &state.delayed.len())
            .finish()
    }
}

fn supervisor_loop<T: Clone + Send>(
    shared: &Shared<T>,
    on_expired: &(impl Fn(u64, T) + Send),
    on_due: &(impl Fn(T) + Send),
) {
    let (lock, cvar) = &**shared;
    let mut state = lock.lock().expect("supervisor lock");
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        // Expire deadlines: remove the entry (abandoning its owner) and
        // collect the payload for the callback.
        let expired_keys: Vec<u64> = state
            .running
            .iter()
            .filter(|(_, (deadline, _))| deadline.is_some_and(|d| d <= now))
            .map(|(k, _)| *k)
            .collect();
        let mut expired = Vec::with_capacity(expired_keys.len());
        for key in expired_keys {
            if let Some((_, payload)) = state.running.remove(&key) {
                expired.push((key, payload));
            }
        }
        // Collect delayed payloads whose release time has passed.
        let mut due = Vec::new();
        state.delayed.retain(|(at, payload)| {
            if *at <= now {
                due.push(payload.clone());
                false
            } else {
                true
            }
        });
        if !expired.is_empty() || !due.is_empty() {
            // Run callbacks unlocked so they may re-enter the
            // supervisor (re-registering retries, for example).
            drop(state);
            for (key, payload) in expired {
                on_expired(key, payload);
            }
            for payload in due {
                on_due(payload);
            }
            state = lock.lock().expect("supervisor lock");
            continue;
        }
        // Sleep until the next deadline or release, or until notified.
        let next = state
            .running
            .values()
            .filter_map(|(deadline, _)| *deadline)
            .chain(state.delayed.iter().map(|(at, _)| *at))
            .min();
        state = match next {
            Some(at) => {
                let wait = at.saturating_duration_since(Instant::now());
                cvar.wait_timeout(state, wait.max(Duration::from_millis(1)))
                    .expect("supervisor lock")
                    .0
            }
            None => cvar.wait(state).expect("supervisor lock"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn backoff_is_deterministic_grows_and_jitters_per_stream() {
        let base = Duration::from_millis(250);
        let d1 = backoff_delay(base, 7, 3, 1);
        let d2 = backoff_delay(base, 7, 3, 2);
        assert_eq!(d1, backoff_delay(base, 7, 3, 1), "same inputs, same delay");
        assert!(d2 > d1, "attempt 2 backs off longer: {d1:?} vs {d2:?}");
        assert_ne!(
            backoff_delay(base, 7, 4, 1),
            d1,
            "different streams jitter differently"
        );
        // The jitter multiplier stays in [0.5, 1.5).
        assert!(d1 >= base / 2 && d1 < base * 3 / 2);
    }

    #[test]
    fn backoff_attempt_exponent_saturates() {
        let base = Duration::from_millis(1);
        let huge = backoff_delay(base, 0, 0, u32::MAX);
        assert!(huge <= base.saturating_mul(1 << 16).mul_f64(1.5));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn expired_entries_are_abandoned_and_reported() {
        let (tx, rx) = mpsc::channel();
        let sup: Supervisor<&'static str> = Supervisor::spawn(
            "test-sup-expire",
            move |key, payload| {
                tx.send((key, payload)).unwrap();
            },
            |_| {},
        );
        sup.register(42, Some(Instant::now() + Duration::from_millis(20)), "late");
        let (key, payload) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((key, payload), (42, "late"));
        assert_eq!(
            sup.complete(42),
            None,
            "owner of an expired entry is abandoned"
        );
    }

    #[test]
    fn completed_entries_never_expire() {
        let (tx, rx) = mpsc::channel();
        let sup: Supervisor<u32> = Supervisor::spawn(
            "test-sup-complete",
            move |key, _| {
                tx.send(key).unwrap();
            },
            |_| {},
        );
        sup.register(1, Some(Instant::now() + Duration::from_millis(50)), 10);
        assert_eq!(sup.complete(1), Some(10));
        assert!(
            rx.recv_timeout(Duration::from_millis(200)).is_err(),
            "completed entry must not fire on_expired"
        );
    }

    #[test]
    fn delayed_payloads_are_released_when_due() {
        let (tx, rx) = mpsc::channel();
        let sup: Supervisor<u32> = Supervisor::spawn(
            "test-sup-due",
            |_, _| {},
            move |p| {
                tx.send(p).unwrap();
            },
        );
        let now = Instant::now();
        sup.release_after(now + Duration::from_millis(40), 2);
        sup.release_after(now + Duration::from_millis(5), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 2);
    }

    #[test]
    fn cancel_is_idempotent_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        token.cancel(); // double-cancel must be a harmless no-op
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn backoff_bounds_hold_for_every_seed_stream_and_attempt() {
        let base = Duration::from_millis(10);
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..25u64 {
            for stream in 0..4u64 {
                for attempt in 1..=6u32 {
                    let exp = base * (1 << (attempt - 1));
                    let delay = backoff_delay(base, seed, stream, attempt);
                    assert_eq!(
                        delay,
                        backoff_delay(base, seed, stream, attempt),
                        "backoff must be deterministic for {seed}/{stream}/{attempt}"
                    );
                    assert!(
                        delay >= exp / 2 && delay < exp * 3 / 2,
                        "{seed}/{stream}/{attempt}: {delay:?} outside [{:?}, {:?})",
                        exp / 2,
                        exp * 3 / 2
                    );
                    distinct.insert(delay);
                }
            }
        }
        // Jitter must actually spread the schedule, not collapse it.
        assert!(
            distinct.len() > 300,
            "only {} distinct delays",
            distinct.len()
        );
    }

    #[test]
    fn settling_a_racing_deadline_has_exactly_one_winner_per_key() {
        const KEYS: u64 = 200;
        let expired = Arc::new(Mutex::new(Vec::new()));
        let sup: Supervisor<u64> = Supervisor::spawn(
            "test-sup-race",
            {
                let expired = Arc::clone(&expired);
                move |key, _| expired.lock().expect("expired lock").push(key)
            },
            |_| {},
        );
        let now = Instant::now();
        for key in 0..KEYS {
            // Deadlines staggered right around "now" so completion
            // genuinely races expiry.
            sup.register(key, Some(now + Duration::from_micros(500 * (key % 8))), key);
        }
        let completed: Vec<u64> = (0..KEYS).filter(|k| sup.complete(*k).is_some()).collect();
        // Every key not completed must eventually expire; none may do
        // both, none may vanish.
        let give_up = Instant::now() + Duration::from_secs(5);
        loop {
            let expired_so_far = expired.lock().expect("expired lock").len();
            if expired_so_far + completed.len() == KEYS as usize {
                break;
            }
            assert!(
                Instant::now() < give_up,
                "lost keys: {} completed + {expired_so_far} expired of {KEYS}",
                completed.len()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let expired = expired.lock().expect("expired lock");
        for key in 0..KEYS {
            let was_completed = completed.contains(&key);
            let was_expired = expired.contains(&key);
            assert!(
                was_completed ^ was_expired,
                "key {key}: completed={was_completed} expired={was_expired}"
            );
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_drops_pending_releases() {
        let (tx, rx) = mpsc::channel();
        let sup: Supervisor<u32> = Supervisor::spawn(
            "test-sup-shutdown",
            |_, _| {},
            move |p| {
                let _ = tx.send(p);
            },
        );
        sup.release_after(Instant::now() + Duration::from_millis(30), 7);
        sup.shutdown();
        sup.shutdown(); // second shutdown must be a no-op
        assert!(
            rx.recv_timeout(Duration::from_millis(150)).is_err(),
            "a pending release must be dropped on shutdown"
        );
        // The state map stays usable after shutdown (Engine::drop calls
        // shutdown after a drain already stopped the supervisor).
        sup.register(1, None, 0);
        assert_eq!(sup.complete(1), Some(0));
    }

    #[test]
    fn entries_without_deadlines_wait_forever() {
        let (tx, rx) = mpsc::channel();
        let sup: Supervisor<u32> = Supervisor::spawn(
            "test-sup-nodeadline",
            move |key, _| {
                tx.send(key).unwrap();
            },
            |_| {},
        );
        sup.register(9, None, 0);
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(sup.complete(9), Some(0));
    }
}
