//! Kill-and-resume chaos test: SIGKILL a supervised `figures` run
//! mid-grid, resume it, and require byte-identical tables.
//!
//! This is the acceptance scenario for the checkpoint journal: the
//! journal must survive an uncontrolled kill (write-then-rename
//! atomicity), `--resume` must skip exactly the journaled jobs, and the
//! replayed output must match an uninterrupted run byte for byte. The
//! trace directory must also still validate cleanly — partially-written
//! run directories (no manifest) are skipped, torn JSONL tails are
//! tolerated as warnings.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use cwp_obs::schema::validate_trace_dir;

/// A subset of the registry that exercises several experiment shapes
/// (characterization table, line sweep, size sweeps, byte traffic).
const IDS: [&str; 6] = ["table1", "fig01", "fig02", "fig10", "fig13", "ext_bytes"];

fn figures() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_figures"));
    cmd.args(["--scale", "test", "--jobs", "1", "--retries", "0"]);
    cmd.args(IDS);
    cmd
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cwp-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn journaled_ok_count(journal: &Path) -> usize {
    fs::read_to_string(journal)
        .map(|text| {
            text.lines()
                .filter(|l| l.contains("\"outcome\":\"ok\""))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn a_sigkilled_run_resumes_to_byte_identical_tables() {
    let dir = tmp_root("resume");

    // Reference: the same grid, uninterrupted and untraced.
    let reference = figures().output().expect("run reference figures");
    assert!(
        reference.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Victim: same grid, traced + journaled, with every attempt
    // stretched by the test hook so the kill lands mid-grid.
    let mut child = figures()
        .arg("--trace")
        .arg(&dir)
        .env("CWP_JOB_DELAY_MS", "300")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim figures");
    let journal = dir.join("checkpoint.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed_midway = false;
    loop {
        if child.try_wait().expect("poll child").is_some() {
            // The whole grid finished before we could kill it — the
            // resume below degenerates to all-skipped, which still
            // verifies replay fidelity.
            break;
        }
        let settled = journaled_ok_count(&journal);
        if settled >= 1 && settled < IDS.len() {
            child.kill().expect("SIGKILL the victim");
            child.wait().expect("reap the victim");
            killed_midway = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim made no journal progress within the deadline"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let settled_at_kill = journaled_ok_count(&journal);
    assert!(
        settled_at_kill >= 1,
        "the journal must hold at least one finished job"
    );

    // Resume: journaled jobs replay, the rest re-run.
    let resumed = figures()
        .arg("--resume")
        .arg(&dir)
        .output()
        .expect("run resumed figures");
    assert!(
        resumed.status.success(),
        "resumed run failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    if killed_midway {
        assert!(
            stderr.contains(&format!("resume: {settled_at_kill} job(s) replayed")),
            "resume must skip exactly the journaled jobs; stderr:\n{stderr}"
        );
    }

    // The replayed + re-run output must match the uninterrupted run
    // byte for byte.
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&reference.stdout),
        "resumed tables must be byte-identical to an uninterrupted run"
    );

    // The journal now records the whole grid as finished...
    assert_eq!(journaled_ok_count(&journal), IDS.len());

    // ...and the trace directory validates despite the kill: complete
    // run dirs check out, manifest-less partial dirs are skipped.
    let reports = validate_trace_dir(&dir).expect("post-kill trace validation");
    assert!(!reports.is_empty());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_failing_grid_exits_nonzero_but_still_prints_placeholders() {
    // Sanity companion: the supervised binary's exit status reflects
    // job failures (here: an unknown id is a usage failure up front).
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["--scale", "test", "no_such_experiment"])
        .output()
        .expect("run figures");
    assert!(!out.status.success());
}
