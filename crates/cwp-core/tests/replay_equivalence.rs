//! The trace substrate's end-to-end contract: a reference stream that
//! goes generator -> `TraceWriter` -> disk bytes -> `TraceReader` ->
//! [`RecordedTrace`] -> cache replay settles to *byte-identical*
//! [`CacheStats`] and [`Traffic`] against simulating the live
//! generator, for every workload in the suite.
//!
//! This is the property the whole record-once/replay-many design rests
//! on: fig10-style sweeps may replace their generator runs with replays
//! (and banked replays) only because nothing observable distinguishes
//! the two.

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_core::{replay, simulate, simulate_many};
use cwp_trace::io::{TraceReader, TraceWriter};
use cwp_trace::recorded::{RecordedTrace, TraceRecorder};
use cwp_trace::{workloads, Scale, TraceSink, Workload};

/// Serializes `workload`'s stream through the binary format and decodes
/// it back, exactly as `figures --save-traces` / `--load-traces` do.
fn disk_round_trip(workload: &dyn Workload) -> RecordedTrace {
    let mut bytes = Vec::new();
    let mut writer = TraceWriter::new(&mut bytes).expect("header write cannot fail in memory");
    let summary = workload.run(Scale::Test, &mut writer);
    writer
        .finish_with_summary(summary)
        .expect("flush cannot fail in memory");

    let mut reader = TraceReader::new(&bytes[..]).expect("the magic header round-trips");
    let mut recorder = TraceRecorder::new();
    for record in reader.by_ref() {
        recorder.record(record.expect("every written record decodes"));
    }
    let mut folded = recorder.folded_summary();
    folded.instructions += reader
        .trailing_insts()
        .expect("finish_with_summary always writes a footer");
    let trace = recorder
        .finish(folded)
        .expect("an unbounded recorder cannot overflow");
    assert_eq!(
        trace.summary(),
        summary,
        "the footer must reconstruct the run totals, trailing compute included"
    );
    trace
}

fn probe_configs() -> Vec<CacheConfig> {
    vec![
        CacheConfig::default(),
        CacheConfig::builder()
            .size_bytes(1024)
            .line_bytes(16)
            .write_hit(WriteHitPolicy::WriteThrough)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .expect("geometry is valid"),
        CacheConfig::builder()
            .size_bytes(4096)
            .line_bytes(32)
            .associativity(2)
            .write_hit(WriteHitPolicy::WriteBack)
            .write_miss(WriteMissPolicy::WriteValidate)
            .build()
            .expect("geometry is valid"),
    ]
}

#[test]
fn disk_round_tripped_replay_matches_live_simulation_for_every_workload() {
    for workload in workloads::suite() {
        let trace = disk_round_trip(workload.as_ref());
        for config in probe_configs() {
            let live = simulate(workload.as_ref(), Scale::Test, &config);
            let replayed = replay(&trace, &config);
            let name = workload.name();
            assert_eq!(live.summary, replayed.summary, "{name} {config:?}");
            assert_eq!(live.stats, replayed.stats, "{name} {config:?}");
            assert_eq!(
                live.traffic_execution, replayed.traffic_execution,
                "{name} {config:?}"
            );
            assert_eq!(
                live.traffic_total, replayed.traffic_total,
                "{name} {config:?}"
            );
        }
    }
}

#[test]
fn banked_fanout_over_a_disk_round_trip_matches_live_simulation() {
    let configs = probe_configs();
    for workload in workloads::suite() {
        let trace = disk_round_trip(workload.as_ref());
        let fanned = simulate_many(&trace, &configs);
        for (outcome, config) in fanned.iter().zip(&configs) {
            let live = simulate(workload.as_ref(), Scale::Test, config);
            let name = workload.name();
            assert_eq!(live.summary, outcome.summary, "{name} {config:?}");
            assert_eq!(live.stats, outcome.stats, "{name} {config:?}");
            assert_eq!(
                live.traffic_total, outcome.traffic_total,
                "{name} {config:?}"
            );
        }
    }
}
