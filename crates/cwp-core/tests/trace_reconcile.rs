//! End-to-end trace integrity: a traced experiment's artifacts must
//! reconcile with — and be able to re-derive — the untraced numbers.

use std::fs;
use std::path::PathBuf;

use cwp_cache::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use cwp_core::obs::{trace_simulation, TraceOptions};
use cwp_core::sim::simulate;
use cwp_obs::schema::{validate_run_dir, validate_trace_dir};
use cwp_obs::{read_events, Event, RunManifest};
use cwp_trace::{workloads, Scale};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cwp-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The acceptance scenario: one write-hit experiment and one write-miss
/// experiment, traced, validating, and reconciling exactly.
#[test]
fn two_traced_experiments_reconcile_with_cache_stats() {
    let root = tmp_root("two-experiments");
    let options = TraceOptions::new(&root);

    // A write-back run (the write-hit policy axis, Figure 1 territory)...
    let write_back = CacheConfig::builder()
        .write_hit(WriteHitPolicy::WriteBack)
        .write_miss(WriteMissPolicy::FetchOnWrite)
        .build()
        .unwrap();
    // ...and a write-validate run (the write-miss axis, Figure 13).
    let write_validate = CacheConfig::builder()
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(WriteMissPolicy::WriteValidate)
        .build()
        .unwrap();

    for (experiment, config) in [("fig01", &write_back), ("fig13", &write_validate)] {
        let workload = workloads::ccom();
        let dir = root.join(experiment).join("000-ccom");
        let run = trace_simulation(
            workload.as_ref(),
            Scale::Test,
            config,
            experiment,
            &options,
            &dir,
        )
        .unwrap();
        assert!(run.manifest.reconciled, "{experiment}: must reconcile");

        // The same simulation without probes produces identical numbers.
        let plain = simulate(workload.as_ref(), Scale::Test, config);
        assert_eq!(run.outcome.stats, plain.stats, "{experiment}");
        assert_eq!(run.outcome.traffic_total, plain.traffic_total);

        // The manifest's totals are the stats, verbatim.
        let total = |key: &str| {
            run.manifest
                .totals
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(total("accesses"), plain.stats.accesses());
        assert_eq!(total("misses"), plain.stats.total_misses());
        assert_eq!(
            total("backside_txns"),
            plain.traffic_total.total_transactions()
        );

        validate_run_dir(&dir).unwrap();
    }

    let reports = validate_trace_dir(&root).unwrap();
    assert_eq!(reports.len(), 2);
    fs::remove_dir_all(&root).unwrap();
}

/// A figure's number can be re-derived from the trace alone: summing the
/// windowed CSV reproduces the run's miss rate without re-simulating.
#[test]
fn miss_rate_rederives_from_windows_csv() {
    let root = tmp_root("rederive");
    let config = CacheConfig::default();
    let dir = root.join("fig04/000-yacc");
    let run = trace_simulation(
        workloads::yacc().as_ref(),
        Scale::Test,
        &config,
        "fig04",
        &TraceOptions::new(&root),
        &dir,
    )
    .unwrap();

    let csv = fs::read_to_string(dir.join("windows.csv")).unwrap();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    let col = |name: &str| header.iter().position(|&c| c == name).unwrap();
    let (refs_col, rh, rm, wh, wm) = (
        col("refs"),
        col("read_hits"),
        col("read_misses"),
        col("write_hits"),
        col("write_misses"),
    );
    let mut refs = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for line in lines {
        let f: Vec<u64> = line.split(',').map(|v| v.parse().unwrap_or(0)).collect();
        refs += f[refs_col];
        hits += f[rh] + f[wh];
        misses += f[rm] + f[wm];
    }
    assert_eq!(refs, run.outcome.stats.accesses());
    assert_eq!(hits + misses, refs, "every access is a hit or a miss");
    let derived = misses as f64 / refs as f64;
    assert!(
        (derived - run.outcome.stats.miss_rate()).abs() < 1e-12,
        "windows give {derived}, stats give {}",
        run.outcome.stats.miss_rate()
    );
    fs::remove_dir_all(&root).unwrap();
}

/// The JSONL stream round-trips: reading it back gives the same events
/// the run emitted, in order, and the manifest agrees with the files.
#[test]
fn jsonl_stream_round_trips_and_matches_manifest() {
    let root = tmp_root("jsonl");
    let dir = root.join("fig01/000-grr");
    let run = trace_simulation(
        workloads::grr().as_ref(),
        Scale::Test,
        &CacheConfig::default(),
        "fig01",
        &TraceOptions::new(&root),
        &dir,
    )
    .unwrap();

    let file = fs::File::open(dir.join("events.jsonl")).unwrap();
    let events = read_events(std::io::BufReader::new(file)).unwrap();
    assert_eq!(events.len() as u64, run.manifest.events_written);

    // Event-level spot check: Access events alone reproduce the
    // reference count.
    let accesses = events
        .iter()
        .filter(|e| matches!(e, Event::Access { .. }))
        .count() as u64;
    assert_eq!(accesses, run.outcome.stats.accesses());

    let manifest_text = fs::read_to_string(dir.join("manifest.json")).unwrap();
    let manifest = RunManifest::from_json(&cwp_obs::Json::parse(&manifest_text).unwrap()).unwrap();
    assert_eq!(manifest, run.manifest);
    fs::remove_dir_all(&root).unwrap();
}
