//! The assembler: text to [`Program`](crate::Program).
//!
//! Two-pass, line-oriented. Supported syntax:
//!
//! ```text
//! # comment
//! .data
//! table:  .dword 1, 2, 3        # 8-byte values
//!         .word  4, 5           # 4-byte values
//! buffer: .space 64             # zeroed bytes
//!         .align 16
//! .text
//! main:
//!     li    r1, table           # pseudo: address of a data label
//!     ld    r2, 8(r1)           # doubleword load
//!     lw    r3, 0(r1)           # word load
//!     addi  r2, r2, -1
//!     add   r2, r2, r3          # also sub/mul/and/or/xor/sll/srl/slt/sltu
//!     sd    r2, 16(r1)
//!     mv    r4, r2              # pseudo: addi r4, r2, 0
//!     beq   r2, r0, done        # also bne/blt/bge
//!     jal   r31, subroutine     # link register gets the return index
//!     j     main                # pseudo: jal r0, main
//!     jr    r31
//! done:
//!     halt
//! ```
//!
//! Branch/jump targets are instruction *indices* (there is no binary
//! encoding); `li` of a text label yields its index, so `jr` works for
//! computed returns.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::isa::{AluOp, Cond, Instruction, Reg};
use crate::workload::Program;

/// Base virtual address of the data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// An assembly error, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// A symbol's resolved meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symbol {
    /// Byte address in the data segment.
    Data(u64),
    /// Instruction index in the text segment.
    Text(usize),
}

/// Strips a comment and whitespace.
fn clean(line: &str) -> &str {
    line.split('#').next().unwrap_or("").trim()
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let digits = tok.strip_prefix('r').ok_or_else(|| AsmError {
        line,
        message: format!("expected register, got '{tok}'"),
    })?;
    match digits.parse::<u8>() {
        Ok(n) if n < 32 => Ok(Reg::new(n)),
        _ => err(line, format!("bad register '{tok}'")),
    }
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad integer '{tok}'")),
    }
}

/// Parses `imm` or a symbol (data address / text index).
fn parse_value(tok: &str, symbols: &HashMap<String, Symbol>, line: usize) -> Result<i64, AsmError> {
    if tok.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
        return parse_int(tok, line);
    }
    match symbols.get(tok) {
        Some(Symbol::Data(addr)) => Ok(*addr as i64),
        Some(Symbol::Text(idx)) => Ok(*idx as i64),
        None => err(line, format!("undefined symbol '{tok}'")),
    }
}

/// Parses `offset(rN)`.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let open = tok.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected off(reg), got '{tok}'"),
    })?;
    if !tok.ends_with(')') {
        return err(line, format!("expected off(reg), got '{tok}'"));
    }
    let off_str = &tok[..open];
    let reg_str = &tok[open + 1..tok.len() - 1];
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_int(off_str, line)?
    };
    Ok((offset, parse_reg(reg_str, line)?))
}

fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

struct FirstPass {
    symbols: HashMap<String, Symbol>,
    data: Vec<u8>,
    /// (line number, mnemonic, operands) for pass two.
    text: Vec<(usize, String, Vec<String>)>,
}

fn first_pass(source: &str) -> Result<FirstPass, AsmError> {
    let mut segment = Segment::Text;
    let mut symbols = HashMap::new();
    let mut data: Vec<u8> = Vec::new();
    let mut text: Vec<(usize, String, Vec<String>)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = clean(raw);
        if line.is_empty() {
            continue;
        }

        // Labels (possibly several) at the start of the line.
        while let Some(colon) = line.find(':') {
            let (name, rest) = line.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                || name.starts_with(|c: char| c.is_ascii_digit())
            {
                break;
            }
            let symbol = match segment {
                Segment::Text => Symbol::Text(text.len()),
                Segment::Data => Symbol::Data(DATA_BASE + data.len() as u64),
            };
            if symbols.insert(name.to_string(), symbol).is_some() {
                return err(lineno, format!("duplicate label '{name}'"));
            }
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }

        let (head, rest) = match line.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (line, ""),
        };

        match head {
            ".text" => segment = Segment::Text,
            ".data" => segment = Segment::Data,
            ".word" | ".dword" => {
                if segment != Segment::Data {
                    return err(lineno, format!("{head} outside .data"));
                }
                let width = if head == ".word" { 4 } else { 8 };
                // Natural alignment for the values.
                while !data.len().is_multiple_of(width) {
                    data.push(0);
                }
                for tok in split_operands(rest) {
                    let v = parse_int(&tok, lineno)?;
                    data.extend_from_slice(&(v as u64).to_le_bytes()[..width]);
                }
            }
            ".space" => {
                if segment != Segment::Data {
                    return err(lineno, ".space outside .data");
                }
                let n = parse_int(rest, lineno)?;
                if n < 0 {
                    return err(lineno, "negative .space");
                }
                data.resize(data.len() + n as usize, 0);
            }
            ".align" => {
                if segment != Segment::Data {
                    return err(lineno, ".align outside .data");
                }
                let n = parse_int(rest, lineno)?;
                if n <= 0 || (n as u64) & (n as u64 - 1) != 0 {
                    return err(lineno, "alignment must be a positive power of two");
                }
                while !(data.len() as u64).is_multiple_of(n as u64) {
                    data.push(0);
                }
            }
            directive if directive.starts_with('.') => {
                return err(lineno, format!("unknown directive '{directive}'"));
            }
            mnemonic => {
                if segment != Segment::Text {
                    return err(lineno, format!("instruction '{mnemonic}' outside .text"));
                }
                text.push((lineno, mnemonic.to_string(), split_operands(rest)));
            }
        }
    }
    Ok(FirstPass {
        symbols,
        data,
        text,
    })
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" | "addi" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "and" | "andi" => AluOp::And,
        "or" | "ori" => AluOp::Or,
        "xor" | "xori" => AluOp::Xor,
        "sll" | "slli" => AluOp::Sll,
        "srl" | "srli" => AluOp::Srl,
        "slt" | "slti" => AluOp::Slt,
        "sltu" | "sltui" => AluOp::Sltu,
        _ => return None,
    })
}

fn branch_cond(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        _ => return None,
    })
}

fn want(ops: &[String], n: usize, line: usize, mnemonic: &str) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        err(
            line,
            format!("'{mnemonic}' takes {n} operands, got {}", ops.len()),
        )
    }
}

fn text_target(
    tok: &str,
    symbols: &HashMap<String, Symbol>,
    line: usize,
) -> Result<usize, AsmError> {
    match symbols.get(tok) {
        Some(Symbol::Text(idx)) => Ok(*idx),
        Some(Symbol::Data(_)) => err(line, format!("'{tok}' is a data label, not code")),
        None => err(line, format!("undefined label '{tok}'")),
    }
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its source line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let FirstPass {
        symbols,
        data,
        text,
    } = first_pass(source)?;
    let mut insts = Vec::with_capacity(text.len());

    for (line, mnemonic, ops) in &text {
        let line = *line;
        let inst = match mnemonic.as_str() {
            m if alu_op(m).is_some() => {
                let op = alu_op(m).expect("checked by the guard");
                want(ops, 3, line, m)?;
                let rd = parse_reg(&ops[0], line)?;
                let rs = parse_reg(&ops[1], line)?;
                if m.ends_with('i') {
                    let imm = parse_value(&ops[2], &symbols, line)?;
                    Instruction::AluImm { op, rd, rs, imm }
                } else if ops[2].starts_with('r') && parse_reg(&ops[2], line).is_ok() {
                    let rt = parse_reg(&ops[2], line)?;
                    Instruction::Alu { op, rd, rs, rt }
                } else {
                    let imm = parse_value(&ops[2], &symbols, line)?;
                    Instruction::AluImm { op, rd, rs, imm }
                }
            }
            "li" => {
                want(ops, 2, line, "li")?;
                Instruction::AluImm {
                    op: AluOp::Add,
                    rd: parse_reg(&ops[0], line)?,
                    rs: Reg::ZERO,
                    imm: parse_value(&ops[1], &symbols, line)?,
                }
            }
            "mv" => {
                want(ops, 2, line, "mv")?;
                Instruction::AluImm {
                    op: AluOp::Add,
                    rd: parse_reg(&ops[0], line)?,
                    rs: parse_reg(&ops[1], line)?,
                    imm: 0,
                }
            }
            "ld" | "lw" => {
                want(ops, 2, line, mnemonic)?;
                let (offset, rs) = parse_mem(&ops[1], line)?;
                Instruction::Load {
                    rd: parse_reg(&ops[0], line)?,
                    rs,
                    offset,
                    bytes: if mnemonic == "ld" { 8 } else { 4 },
                }
            }
            "sd" | "sw" => {
                want(ops, 2, line, mnemonic)?;
                let (offset, rs) = parse_mem(&ops[1], line)?;
                Instruction::Store {
                    rt: parse_reg(&ops[0], line)?,
                    rs,
                    offset,
                    bytes: if mnemonic == "sd" { 8 } else { 4 },
                }
            }
            m if branch_cond(m).is_some() => {
                want(ops, 3, line, m)?;
                Instruction::Branch {
                    cond: branch_cond(m).expect("checked by the guard"),
                    rs: parse_reg(&ops[0], line)?,
                    rt: parse_reg(&ops[1], line)?,
                    target: text_target(&ops[2], &symbols, line)?,
                }
            }
            "jal" => {
                want(ops, 2, line, "jal")?;
                Instruction::Jal {
                    rd: parse_reg(&ops[0], line)?,
                    target: text_target(&ops[1], &symbols, line)?,
                }
            }
            "j" => {
                want(ops, 1, line, "j")?;
                Instruction::Jal {
                    rd: Reg::ZERO,
                    target: text_target(&ops[0], &symbols, line)?,
                }
            }
            "jr" => {
                want(ops, 1, line, "jr")?;
                Instruction::Jr {
                    rs: parse_reg(&ops[0], line)?,
                }
            }
            "halt" => {
                want(ops, 0, line, "halt")?;
                Instruction::Halt
            }
            other => return err(line, format!("unknown instruction '{other}'")),
        };
        insts.push(inst);
    }

    let entry = match symbols.get("main") {
        Some(Symbol::Text(idx)) => *idx,
        Some(Symbol::Data(_)) => return err(0, "'main' must be a text label"),
        None => 0,
    };
    let data_symbols = symbols
        .into_iter()
        .map(|(name, sym)| match sym {
            Symbol::Data(addr) => (name, addr),
            Symbol::Text(idx) => (name, idx as u64),
        })
        .collect();
    Ok(Program::from_parts(
        insts,
        data,
        DATA_BASE,
        data_symbols,
        entry,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_minimal_program() {
        let p = assemble("main:\n  li r1, 5\n  halt\n").unwrap();
        assert_eq!(p.instructions().len(), 2);
        assert_eq!(p.entry(), 0);
    }

    #[test]
    fn data_labels_resolve_to_addresses() {
        let p = assemble(".data\nx: .dword 7\ny: .word 1, 2\n.text\nmain: halt\n").unwrap();
        assert_eq!(p.symbol("x"), Some(DATA_BASE));
        assert_eq!(p.symbol("y"), Some(DATA_BASE + 8));
        assert_eq!(p.data().len(), 16);
        assert_eq!(p.data()[0], 7);
    }

    #[test]
    fn alignment_and_space() {
        let p = assemble(".data\n.word 1\n.align 16\nbuf: .space 32\n.text\nmain: halt\n").unwrap();
        assert_eq!(p.symbol("buf"), Some(DATA_BASE + 16));
        assert_eq!(p.data().len(), 48);
    }

    #[test]
    fn branches_resolve_forward_and_backward() {
        let p = assemble(
            "main:\n  li r1, 3\nloop:\n  addi r1, r1, -1\n  bne r1, r0, loop\n  beq r0, r0, end\n  halt\nend:\n  halt\n",
        )
        .unwrap();
        match p.instructions()[2] {
            Instruction::Branch { target, .. } => assert_eq!(target, 1),
            ref other => panic!("expected branch, got {other:?}"),
        }
        match p.instructions()[3] {
            Instruction::Branch { target, .. } => assert_eq!(target, 5),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("main:\n  frob r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frob"));
        let e = assemble("main:\n  beq r1, r0, nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
        let e = assemble("x: .word 1\n").unwrap_err();
        assert!(e.message.contains("outside .data"));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let e = assemble("main:\nmain: halt\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn memory_operands_parse() {
        let p = assemble("main:\n  ld r1, -8(r2)\n  sw r3, (r4)\n  halt\n").unwrap();
        assert_eq!(
            p.instructions()[0],
            Instruction::Load {
                rd: Reg::new(1),
                rs: Reg::new(2),
                offset: -8,
                bytes: 8
            }
        );
        assert_eq!(
            p.instructions()[1],
            Instruction::Store {
                rt: Reg::new(3),
                rs: Reg::new(4),
                offset: 0,
                bytes: 4
            }
        );
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("main:\n  li r1, 0x10\n  li r2, -3\n  halt\n").unwrap();
        match p.instructions()[0] {
            Instruction::AluImm { imm, .. } => assert_eq!(imm, 16),
            ref other => panic!("unexpected {other:?}"),
        }
        match p.instructions()[1] {
            Instruction::AluImm { imm, .. } => assert_eq!(imm, -3),
            ref other => panic!("unexpected {other:?}"),
        }
    }
}
