//! The interpreter.

use std::error::Error;
use std::fmt;

use cwp_trace::{MemRef, TraceSink, TraceSummary};

use crate::isa::Instruction;
use crate::port::DataPort;
use crate::workload::Program;

/// A runtime fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Control flow left the instruction vector.
    BadPc {
        /// The offending instruction index.
        pc: u64,
    },
    /// A memory access was not aligned to its width (the MultiTitan has no
    /// unaligned accesses).
    Unaligned {
        /// The access address.
        addr: u64,
        /// The access width.
        bytes: u8,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::BadPc { pc } => write!(f, "control transfer to bad index {pc}"),
            CpuError::Unaligned { addr, bytes } => {
                write!(f, "unaligned {bytes}B access at {addr:#x}")
            }
        }
    }
}

impl Error for CpuError {}

/// What a [`Cpu::run`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// `true` if the program executed `halt`; `false` if the step budget
    /// ran out first.
    pub halted: bool,
    /// Instruction/load/store totals.
    pub summary: TraceSummary,
}

/// The interpreter: a [`Program`] plus 32 registers over a [`DataPort`].
#[derive(Debug)]
pub struct Cpu<P> {
    program: Program,
    regs: [u64; 32],
    pc: usize,
    port: P,
    loaded: bool,
}

impl<P: DataPort> Cpu<P> {
    /// Creates a CPU with `program` over `port`. The data segment is
    /// loaded into the port on the first run.
    pub fn new(program: Program, port: P) -> Self {
        let pc = program.entry();
        Cpu {
            program,
            regs: [0; 32],
            pc,
            port,
            loaded: false,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Reads a register.
    pub fn reg(&self, index: usize) -> u64 {
        self.regs[index]
    }

    /// The memory port (e.g. to inspect cache statistics afterwards).
    pub fn port(&self) -> &P {
        &self.port
    }

    /// Mutable access to the memory port.
    pub fn port_mut(&mut self) -> &mut P {
        &mut self.port
    }

    /// Consumes the CPU, returning the port.
    pub fn into_port(self) -> P {
        self.port
    }

    fn load_data_segment(&mut self) {
        if !self.loaded {
            self.port
                .store(self.program.data_base(), self.program.data());
            self.loaded = true;
        }
    }

    /// Runs until `halt` or `max_steps` instructions, with memory
    /// references flowing only to the port.
    ///
    /// # Errors
    ///
    /// Returns a [`CpuError`] on a bad control transfer or unaligned
    /// access.
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, CpuError> {
        struct Null;
        impl TraceSink for Null {
            fn record(&mut self, _r: MemRef) {}
        }
        self.run_traced(max_steps, &mut Null)
    }

    /// Like [`Cpu::run`], also emitting every data reference into `sink`
    /// (with instruction gaps counting non-memory instructions).
    ///
    /// # Errors
    ///
    /// Returns a [`CpuError`] on a bad control transfer or unaligned
    /// access.
    pub fn run_traced(
        &mut self,
        max_steps: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<RunOutcome, CpuError> {
        self.load_data_segment();
        let mut summary = TraceSummary::default();
        let mut gap: u32 = 0;
        let mut halted = false;

        while summary.instructions < max_steps {
            let Some(&inst) = self.program.instructions().get(self.pc) else {
                return Err(CpuError::BadPc { pc: self.pc as u64 });
            };
            summary.instructions += 1;
            gap += 1;
            self.pc += 1;

            match inst {
                Instruction::Alu { op, rd, rs, rt } => {
                    self.write_reg(rd, op.apply(self.regs[rs.index()], self.regs[rt.index()]));
                }
                Instruction::AluImm { op, rd, rs, imm } => {
                    self.write_reg(rd, op.apply(self.regs[rs.index()], imm as u64));
                }
                Instruction::Load {
                    rd,
                    rs,
                    offset,
                    bytes,
                } => {
                    let addr = self.regs[rs.index()].wrapping_add(offset as u64);
                    self.check_aligned(addr, bytes)?;
                    let mut buf = [0u8; 8];
                    self.port.load(addr, &mut buf[..bytes as usize]);
                    self.write_reg(rd, u64::from_le_bytes(buf));
                    summary.reads += 1;
                    sink.record(MemRef::read(addr, bytes).with_gap(gap));
                    gap = 0;
                }
                Instruction::Store {
                    rt,
                    rs,
                    offset,
                    bytes,
                } => {
                    let addr = self.regs[rs.index()].wrapping_add(offset as u64);
                    self.check_aligned(addr, bytes)?;
                    let buf = self.regs[rt.index()].to_le_bytes();
                    self.port.store(addr, &buf[..bytes as usize]);
                    summary.writes += 1;
                    sink.record(MemRef::write(addr, bytes).with_gap(gap));
                    gap = 0;
                }
                Instruction::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    if cond.holds(self.regs[rs.index()], self.regs[rt.index()]) {
                        self.pc = target;
                    }
                }
                Instruction::Jal { rd, target } => {
                    self.write_reg(rd, self.pc as u64);
                    self.pc = target;
                }
                Instruction::Jr { rs } => {
                    self.pc = self.regs[rs.index()] as usize;
                }
                Instruction::Halt => {
                    halted = true;
                    break;
                }
            }
        }
        Ok(RunOutcome { halted, summary })
    }

    #[inline]
    fn write_reg(&mut self, rd: crate::isa::Reg, value: u64) {
        if rd.index() != 0 {
            self.regs[rd.index()] = value;
        }
    }

    #[inline]
    fn check_aligned(&self, addr: u64, bytes: u8) -> Result<(), CpuError> {
        if !addr.is_multiple_of(u64::from(bytes)) {
            Err(CpuError::Unaligned { addr, bytes })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_mem::MainMemory;

    fn run_program(src: &str) -> Cpu<MainMemory> {
        let program = Program::assemble(src).expect("test program assembles");
        let mut cpu = Cpu::new(program, MainMemory::new());
        let outcome = cpu.run(100_000).expect("no fault");
        assert!(outcome.halted, "program must halt");
        cpu
    }

    #[test]
    fn arithmetic_and_registers() {
        let cpu =
            run_program("main:\n li r1, 6\n li r2, 7\n mul r3, r1, r2\n addi r4, r3, -2\n halt\n");
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(cpu.reg(4), 40);
    }

    #[test]
    fn r0_is_hardwired_to_zero() {
        let cpu = run_program("main:\n li r0, 99\n addi r1, r0, 1\n halt\n");
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(1), 1);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let cpu = run_program(
            ".data\nx: .dword 10\ny: .dword 0\n.text\nmain:\n li r1, x\n ld r2, 0(r1)\n addi r2, r2, 32\n sd r2, 8(r1)\n halt\n",
        );
        let y = cpu.program().symbol("y").unwrap();
        let mut cpu = cpu;
        let mut buf = [0u8; 8];
        cpu.port_mut().load(y, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 42);
    }

    #[test]
    fn word_loads_zero_extend() {
        let cpu = run_program(
            ".data\nx: .word 0xffffffff\n.text\nmain:\n li r1, x\n lw r2, 0(r1)\n halt\n",
        );
        assert_eq!(cpu.reg(2), 0xffff_ffff);
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10.
        let cpu = run_program(
            "main:\n li r1, 10\n li r2, 0\nloop:\n add r2, r2, r1\n addi r1, r1, -1\n bne r1, r0, loop\n halt\n",
        );
        assert_eq!(cpu.reg(2), 55);
    }

    #[test]
    fn subroutine_call_and_return() {
        let cpu = run_program(
            "main:\n li r1, 5\n jal r31, double\n mv r3, r2\n halt\ndouble:\n add r2, r1, r1\n jr r31\n",
        );
        assert_eq!(cpu.reg(3), 10);
    }

    #[test]
    fn step_budget_stops_infinite_loops() {
        let program = Program::assemble("main:\n j main\n").unwrap();
        let mut cpu = Cpu::new(program, MainMemory::new());
        let outcome = cpu.run(1000).unwrap();
        assert!(!outcome.halted);
        assert_eq!(outcome.summary.instructions, 1000);
    }

    #[test]
    fn unaligned_access_faults() {
        let program = Program::assemble("main:\n li r1, 0x1001\n ld r2, 0(r1)\n halt\n").unwrap();
        let mut cpu = Cpu::new(program, MainMemory::new());
        let err = cpu.run(100).unwrap_err();
        assert!(matches!(err, CpuError::Unaligned { bytes: 8, .. }));
    }

    #[test]
    fn jump_off_the_end_faults() {
        let program = Program::assemble("main:\n li r1, 99\n jr r1\n").unwrap();
        let mut cpu = Cpu::new(program, MainMemory::new());
        assert!(matches!(cpu.run(100), Err(CpuError::BadPc { .. })));
    }

    #[test]
    fn falling_off_the_end_faults() {
        let program = Program::assemble("main:\n li r1, 1\n").unwrap();
        let mut cpu = Cpu::new(program, MainMemory::new());
        assert!(matches!(cpu.run(100), Err(CpuError::BadPc { .. })));
    }
}
