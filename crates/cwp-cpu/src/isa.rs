//! The instruction set: a minimal MultiTitan-flavoured load/store RISC.
//!
//! Thirty-two 64-bit general registers (`r0` hardwired to zero), word and
//! doubleword memory operations only (the MultiTitan "does not support
//! byte loads and stores"), and a handful of ALU and control instructions.
//! The interpreter works on this enum directly; there is no binary
//! encoding, so immediates are full `i64`s.

use std::fmt;

/// A general register, `r0`..`r31`. `r0` always reads as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> Reg {
        assert!(n < 32, "register index {n} out of range");
        Reg(n)
    }

    /// The register number.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by the low 6 bits of the right operand).
    Sll,
    /// Logical shift right.
    Srl,
    /// Set if less than (unsigned): 1 or 0.
    Sltu,
    /// Set if less than (signed): 1 or 0.
    Slt,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed greater or equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    pub fn holds(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
        }
    }
}

/// One instruction. Branch and jump targets are indices into the
/// program's instruction vector (the assembler resolves labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `rd = rs OP rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd = rs OP imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// Load `bytes` (4 or 8, zero-extended) from `rs + offset` into `rd`.
    Load {
        /// Destination.
        rd: Reg,
        /// Base register.
        rs: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width: 4 or 8.
        bytes: u8,
    },
    /// Store the low `bytes` of `rt` to `rs + offset`.
    Store {
        /// Source.
        rt: Reg,
        /// Base register.
        rs: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width: 4 or 8.
        bytes: u8,
    },
    /// Branch to `target` if `cond(rs, rt)`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
        /// Instruction index to jump to.
        target: usize,
    },
    /// Unconditional jump, saving the return index+1 in `rd`.
    Jal {
        /// Link register (often `r0` to discard).
        rd: Reg,
        /// Instruction index to jump to.
        target: usize,
    },
    /// Indirect jump to the instruction index in `rs`.
    Jr {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Stop execution.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0, "wrapping");
        assert_eq!(AluOp::Sub.apply(3, 5), u64::MAX - 1);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Sll.apply(1, 65), 2, "shift masks to 6 bits");
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1, "signed: -1 < 0");
        assert_eq!(AluOp::Sltu.apply(u64::MAX, 0), 0, "unsigned: max > 0");
    }

    #[test]
    fn branch_conditions() {
        assert!(Cond::Eq.holds(4, 4));
        assert!(Cond::Ne.holds(4, 5));
        assert!(Cond::Lt.holds(u64::MAX, 0), "signed less-than");
        assert!(Cond::Ge.holds(0, u64::MAX));
    }

    #[test]
    fn register_bounds() {
        assert_eq!(Reg::new(31).index(), 31);
        assert_eq!(Reg::ZERO.to_string(), "r0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_32_is_rejected() {
        let _ = Reg::new(32);
    }
}
