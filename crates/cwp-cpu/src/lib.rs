//! A MultiTitan-style RISC interpreter and assembler.
//!
//! The paper's data comes from "modifying a simulator for the MultiTitan
//! architecture" and running real programs on it. This crate closes that
//! methodological loop for `cwp`: a small load/store RISC with no byte
//! memory operations (word and doubleword only, like the MultiTitan), an
//! assembler for it, and an interpreter whose data references flow through
//! any [`DataPort`] — a flat memory, or any cache hierarchy from
//! `cwp-cache`.
//!
//! Assembled programs also implement [`cwp_trace::Workload`], so
//! user-written assembly plugs into the whole experiment harness exactly
//! like the six built-in benchmarks.
//!
//! # Examples
//!
//! Assemble and run a program against a write-validate cache:
//!
//! ```
//! use cwp_cache::{Cache, CacheConfig, WriteHitPolicy, WriteMissPolicy};
//! use cwp_cpu::{Cpu, DataPort, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Program::assemble(
//!     r#"
//!     .data
//!     value: .dword 5
//!     .text
//!     main:
//!         li   r1, value
//!         ld   r2, 0(r1)
//!         addi r2, r2, 37
//!         sd   r2, 0(r1)
//!         halt
//!     "#,
//! )?;
//! let config = CacheConfig::builder()
//!     .write_hit(WriteHitPolicy::WriteThrough)
//!     .write_miss(WriteMissPolicy::WriteValidate)
//!     .build()?;
//! let mut cpu = Cpu::new(program, Cache::with_memory(config));
//! let outcome = cpu.run(1_000)?;
//! assert!(outcome.halted);
//! let mut buf = [0u8; 8];
//! let addr = cpu.program().symbol("value").unwrap();
//! cpu.port_mut().load(addr, &mut buf);
//! assert_eq!(u64::from_le_bytes(buf), 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod isa;
pub mod port;
pub mod programs;
pub mod workload;

pub use asm::AsmError;
pub use cpu::{Cpu, CpuError, RunOutcome};
pub use isa::{Instruction, Reg};
pub use port::DataPort;
pub use workload::{CpuWorkload, Program};
