//! The [`DataPort`]: where the CPU's loads and stores go.

use cwp_cache::Cache;
use cwp_mem::{MainMemory, NextLevel};

/// The CPU-side memory interface: byte-addressed loads and stores.
///
/// A flat [`MainMemory`] is the simplest port; a [`Cache`] (over any
/// hierarchy) is the interesting one — running the same program over
/// different ports must produce identical architectural results, which is
/// the ISA-level form of the transparency property.
pub trait DataPort {
    /// Fills `buf` from `addr`.
    fn load(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes `data` at `addr`.
    fn store(&mut self, addr: u64, data: &[u8]);
}

impl DataPort for MainMemory {
    fn load(&mut self, addr: u64, buf: &mut [u8]) {
        self.read(addr, buf);
    }

    fn store(&mut self, addr: u64, data: &[u8]) {
        self.write(addr, data);
    }
}

impl<N: NextLevel> DataPort for Cache<N> {
    fn load(&mut self, addr: u64, buf: &mut [u8]) {
        self.read(addr, buf);
    }

    fn store(&mut self, addr: u64, data: &[u8]) {
        self.write(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_cache::CacheConfig;

    #[test]
    fn memory_and_cache_ports_agree() {
        let mut flat = MainMemory::new();
        let mut cached = Cache::new(CacheConfig::default(), MainMemory::new());
        for port in [
            &mut flat as &mut dyn DataPort,
            &mut cached as &mut dyn DataPort,
        ] {
            port.store(0x40, &[1, 2, 3, 4]);
            let mut buf = [0u8; 4];
            port.load(0x40, &mut buf);
            assert_eq!(buf, [1, 2, 3, 4]);
        }
    }
}
