//! Canonical assembly programs: the paper's motivating access patterns as
//! real code.
//!
//! Each constructor returns a [`CpuWorkload`], usable anywhere the six
//! synthetic benchmarks are. The programs are the paper's recurring
//! examples: the saxpy-style read-modify-write loop (linpack's inner
//! loop), the block copy of Section 4, and the fresh-buffer fill that
//! allocation instructions target.

use crate::workload::{CpuWorkload, Program};

/// `y[i] = y[i] + a * x[i]` over 512 doublewords: linpack's inner loop.
/// Every store is preceded by a load of the same address, so
/// write-validate has almost nothing to remove here (Section 4).
pub const AXPY_SRC: &str = r#"
    .data
    x:  .space 4096          # 512 dwords
    y:  .space 4096
    .text
    main:
        li   r1, x
        li   r2, y
        li   r3, 512          # n
        li   r4, 3            # a
    loop:
        ld   r5, 0(r1)        # x[i]
        mul  r5, r5, r4
        ld   r6, 0(r2)        # y[i]
        add  r6, r6, r5
        sd   r6, 0(r2)        # y[i] = ...
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, -1
        bne  r3, r0, loop
        halt
"#;

/// Copies 512 doublewords from `src` to `dst`: the Section 4 block copy.
/// Under fetch-on-write, every destination line is fetched only to be
/// overwritten; no-fetch policies skip half the bus traffic.
pub const MEMCPY_SRC: &str = r#"
    .data
    src: .space 4096
    dst: .space 4096
    .text
    main:
        # Seed the source so the copy moves real data.
        li   r1, src
        li   r3, 512
        li   r4, 0x1234
    seed:
        sd   r4, 0(r1)
        addi r4, r4, 17
        addi r1, r1, 8
        addi r3, r3, -1
        bne  r3, r0, seed

        li   r1, src
        li   r2, dst
        li   r3, 512
    loop:
        ld   r4, 0(r1)
        sd   r4, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, -1
        bne  r3, r0, loop
        halt
"#;

/// Fills a 4KB buffer with a constant: the fresh-allocation pattern that
/// cache-line allocation instructions (and write-validate) eliminate all
/// fetches for.
pub const FILL_SRC: &str = r#"
    .data
    buf: .space 4096
    .text
    main:
        li   r1, buf
        li   r2, 512
        li   r3, 0x5a
    loop:
        sd   r3, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
"#;

/// Insertion sort over 256 words seeded with a linear-congruential
/// pattern: data-dependent control flow and shifting read-modify-write
/// windows.
pub const SORT_SRC: &str = r#"
    .data
    arr: .space 1024          # 256 words
    .text
    main:
        # Seed arr[i] with a pseudo-random pattern: v = v*1103515245+12345 (mod 2^31)
        li   r1, arr
        li   r2, 256
        li   r3, 12345        # v
        li   r4, 1103515245
        li   r5, 0x7fffffff
    seed:
        mul  r3, r3, r4
        addi r3, r3, 12345
        and  r3, r3, r5
        sw   r3, 0(r1)
        addi r1, r1, 4
        addi r2, r2, -1
        bne  r2, r0, seed

        # Insertion sort.
        li   r6, 1            # i
        li   r7, 256          # n
    outer:
        bge  r6, r7, done
        li   r1, arr
        sll  r8, r6, 2
        add  r8, r1, r8       # &arr[i]
        lw   r9, 0(r8)        # key
        mv   r10, r8          # j pointer (element being shifted into)
    inner:
        li   r1, arr
        beq  r10, r1, place
        lw   r11, -4(r10)
        bge  r9, r11, place
        sw   r11, 0(r10)
        addi r10, r10, -4
        j    inner
    place:
        sw   r9, 0(r10)
        addi r6, r6, 1
        j    outer
    done:
        halt
"#;

/// The axpy workload.
pub fn axpy() -> CpuWorkload {
    CpuWorkload::new(
        "axpy",
        "y += a*x over 512 dwords (linpack's inner loop)",
        Program::assemble(AXPY_SRC).expect("axpy assembles"),
        (1, 8, 64),
        1_000_000,
    )
}

/// The block-copy workload.
pub fn memcpy() -> CpuWorkload {
    CpuWorkload::new(
        "memcpy",
        "copy 4KB, load/store interleaved (the Section 4 block copy)",
        Program::assemble(MEMCPY_SRC).expect("memcpy assembles"),
        (1, 8, 64),
        1_000_000,
    )
}

/// The buffer-fill workload.
pub fn fill() -> CpuWorkload {
    CpuWorkload::new(
        "fill",
        "fill a fresh 4KB buffer (the allocation-instruction pattern)",
        Program::assemble(FILL_SRC).expect("fill assembles"),
        (1, 8, 64),
        1_000_000,
    )
}

/// The insertion-sort workload.
pub fn sort() -> CpuWorkload {
    CpuWorkload::new(
        "sort",
        "insertion sort over 256 words",
        Program::assemble(SORT_SRC).expect("sort assembles"),
        (1, 4, 16),
        20_000_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::port::DataPort;
    use cwp_mem::MainMemory;
    use cwp_trace::Workload;

    #[test]
    fn all_programs_assemble_and_halt() {
        for w in [axpy(), memcpy(), fill(), sort()] {
            let mut cpu = Cpu::new(w.program().clone(), MainMemory::new());
            let outcome = cpu.run(20_000_000).expect("no fault");
            assert!(outcome.halted, "{} did not halt", w.name());
            assert!(outcome.summary.writes > 0, "{} never stored", w.name());
        }
    }

    #[test]
    fn memcpy_actually_copies() {
        let w = memcpy();
        let mut cpu = Cpu::new(w.program().clone(), MainMemory::new());
        cpu.run(1_000_000).unwrap();
        let src = w.program().symbol("src").unwrap();
        let dst = w.program().symbol("dst").unwrap();
        for i in (0..4096u64).step_by(512) {
            let mut a = [0u8; 8];
            let mut b = [0u8; 8];
            cpu.port_mut().load(src + i, &mut a);
            cpu.port_mut().load(dst + i, &mut b);
            assert_eq!(a, b, "mismatch at offset {i}");
            assert_ne!(u64::from_le_bytes(a), 0, "source was never seeded");
        }
    }

    #[test]
    fn sort_produces_sorted_output() {
        let w = sort();
        let mut cpu = Cpu::new(w.program().clone(), MainMemory::new());
        cpu.run(20_000_000).unwrap();
        let arr = w.program().symbol("arr").unwrap();
        let mut prev = 0u32;
        for i in 0..256u64 {
            let mut buf = [0u8; 4];
            cpu.port_mut().load(arr + i * 4, &mut buf);
            let v = u32::from_le_bytes(buf);
            assert!(v >= prev, "arr[{i}] = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn fill_writes_every_slot() {
        let w = fill();
        let mut cpu = Cpu::new(w.program().clone(), MainMemory::new());
        cpu.run(1_000_000).unwrap();
        let buf_addr = w.program().symbol("buf").unwrap();
        let mut buf = [0u8; 8];
        cpu.port_mut().load(buf_addr + 4088, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 0x5a);
    }
}
