//! [`Program`]: an assembled binary, and [`CpuWorkload`]: a program as a
//! first-class `cwp-trace` workload.

use std::collections::HashMap;

use cwp_mem::MainMemory;
use cwp_trace::{Scale, TraceSink, TraceSummary, Workload};

use crate::asm::{self, AsmError};
use crate::cpu::Cpu;
use crate::isa::Instruction;

/// An assembled program: instructions, initialized data, and symbols.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Instruction>,
    data: Vec<u8>,
    data_base: u64,
    symbols: HashMap<String, u64>,
    entry: usize,
}

impl Program {
    /// Assembles source text. See [`crate::asm`] for the syntax.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] with the offending source line.
    pub fn assemble(source: &str) -> Result<Program, AsmError> {
        asm::assemble(source)
    }

    pub(crate) fn from_parts(
        insts: Vec<Instruction>,
        data: Vec<u8>,
        data_base: u64,
        symbols: HashMap<String, u64>,
        entry: usize,
    ) -> Program {
        Program {
            insts,
            data,
            data_base,
            symbols,
            entry,
        }
    }

    /// The instruction vector.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// The initialized data segment image.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base address the data segment loads at.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Entry instruction index (`main`, or 0).
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Resolves a label: data labels yield their byte address, text labels
    /// their instruction index.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }
}

/// Wraps a [`Program`] as a [`Workload`], so user assembly runs through
/// the same experiment harness as the built-in benchmarks.
///
/// The program executes on a private flat memory; every load and store is
/// emitted as a trace record, with the instruction gap counting the
/// non-memory instructions executed since the previous reference. `Scale`
/// multiplies the whole-program repetition count (data is re-initialized
/// between repetitions).
#[derive(Debug, Clone)]
pub struct CpuWorkload {
    name: &'static str,
    description: &'static str,
    program: Program,
    /// Repetitions at (test, quick, paper) scale.
    reps: (u32, u32, u32),
    max_steps: u64,
}

impl CpuWorkload {
    /// Creates a workload from an assembled program.
    ///
    /// `reps` gives the whole-program repetition counts at test, quick,
    /// and paper scale; `max_steps` bounds each repetition (a safety rail
    /// against non-terminating programs).
    pub fn new(
        name: &'static str,
        description: &'static str,
        program: Program,
        reps: (u32, u32, u32),
        max_steps: u64,
    ) -> CpuWorkload {
        CpuWorkload {
            name,
            description,
            program,
            reps,
            max_steps,
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl Workload for CpuWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn run(&self, scale: Scale, sink: &mut dyn TraceSink) -> TraceSummary {
        let reps = scale.pick(self.reps.0, self.reps.1, self.reps.2);
        let mut summary = TraceSummary::default();
        for _ in 0..reps {
            let mut cpu = Cpu::new(self.program.clone(), MainMemory::new());
            let outcome = cpu
                .run_traced(self.max_steps, sink)
                .expect("assembled program must not fault");
            assert!(
                outcome.halted,
                "program '{}' exceeded {} steps without halting",
                self.name, self.max_steps
            );
            summary.absorb(outcome.summary);
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_trace::stats::TraceStats;

    const LOOPY: &str = r#"
        .data
        buf: .space 256
        .text
        main:
            li   r1, buf
            li   r2, 32          # elements
        loop:
            ld   r3, 0(r1)
            addi r3, r3, 1
            sd   r3, 0(r1)
            addi r1, r1, 8
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
    "#;

    #[test]
    fn cpu_workload_emits_the_programs_references() {
        let program = Program::assemble(LOOPY).unwrap();
        let w = CpuWorkload::new("loopy", "increment a buffer", program, (1, 2, 4), 10_000);
        let mut stats = TraceStats::new();
        let summary = w.run(Scale::Test, &mut stats);
        assert_eq!(stats.reads(), 32);
        assert_eq!(stats.writes(), 32);
        assert_eq!(summary.reads, 32);
        // 2 setup + 32 * 6 loop instructions + halt.
        assert_eq!(summary.instructions, 2 + 32 * 6 + 1);
    }

    #[test]
    fn scale_multiplies_repetitions() {
        let program = Program::assemble(LOOPY).unwrap();
        let w = CpuWorkload::new("loopy", "increment a buffer", program, (1, 2, 4), 10_000);
        let mut a = TraceStats::new();
        w.run(Scale::Test, &mut a);
        let mut b = TraceStats::new();
        w.run(Scale::Quick, &mut b);
        assert_eq!(b.reads(), 2 * a.reads());
    }
}
