//! ISA-level transparency: the same program must compute the same result
//! over a flat memory and over every cache configuration.

use cwp_cache::{Cache, CacheConfig, ConfigError, WriteHitPolicy, WriteMissPolicy};
use cwp_cpu::{programs, Cpu, CpuWorkload, DataPort};
use cwp_mem::MainMemory;

fn all_configs() -> Vec<CacheConfig> {
    let mut configs = Vec::new();
    for hit in WriteHitPolicy::ALL {
        for miss in WriteMissPolicy::ALL {
            for (size, line) in [(1 << 10, 16u32), (2 << 10, 8)] {
                match CacheConfig::builder()
                    .size_bytes(size)
                    .line_bytes(line)
                    .write_hit(hit)
                    .write_miss(miss)
                    .build()
                {
                    Ok(c) => configs.push(c),
                    Err(ConfigError::PolicyConflict { .. }) => {}
                    Err(e) => panic!("unexpected config error: {e}"),
                }
            }
        }
    }
    configs
}

/// Runs the program to completion over `port` and returns the bytes of
/// its whole data segment afterwards.
fn final_data_segment<P: DataPort>(w: &CpuWorkload, port: P) -> (Vec<u8>, P) {
    let mut cpu = Cpu::new(w.program().clone(), port);
    let outcome = cpu.run(50_000_000).expect("program must not fault");
    assert!(outcome.halted, "{} must halt", w.program().data().len());
    let base = w.program().data_base();
    let len = w.program().data().len();
    let mut image = vec![0u8; len];
    let mut port = cpu.into_port();
    port.load(base, &mut image);
    (image, port)
}

#[test]
fn every_policy_computes_the_same_results() {
    for w in [
        programs::axpy(),
        programs::memcpy(),
        programs::fill(),
        programs::sort(),
    ] {
        let (golden, _) = final_data_segment(&w, MainMemory::new());
        for config in all_configs() {
            let cache = Cache::new(config, MainMemory::new());
            let (got, mut cache) = final_data_segment(&w, cache);
            // Reading through the cache already merges pending state; the
            // image must match byte for byte.
            assert_eq!(got, golden, "{config}: data segment diverged");
            // And after a flush, memory itself must hold the same image.
            cache.flush();
            let mut flat = vec![0u8; golden.len()];
            cache
                .next_level_mut()
                .load(w.program().data_base(), &mut flat);
            assert_eq!(flat, golden, "{config}: memory diverged after flush");
        }
    }
}

/// Runs the program over a fresh write-through cache with the given miss
/// policy and returns the fetch count (no verification reads, which would
/// add fetches of their own).
fn run_fetches(w: &CpuWorkload, miss: WriteMissPolicy) -> u64 {
    let config = CacheConfig::builder()
        .size_bytes(1 << 10)
        .line_bytes(16)
        .write_hit(WriteHitPolicy::WriteThrough)
        .write_miss(miss)
        .build()
        .unwrap();
    let mut cpu = Cpu::new(w.program().clone(), Cache::new(config, MainMemory::new()));
    // Load the data segment (a bulk store) and discard its traffic so only
    // the program's own references are counted.
    cpu.run(0).expect("segment load cannot fault");
    cpu.port_mut().reset_stats();
    let outcome = cpu.run(50_000_000).expect("program must not fault");
    assert!(outcome.halted);
    cpu.port().stats().fetches
}

#[test]
fn block_copy_policy_traffic_matches_the_papers_argument() {
    // Section 4: on a large copy, fetch-on-write fetches the destination
    // lines only to overwrite them; write-validate skips those fetches.
    let w = programs::memcpy();
    let fow = run_fetches(&w, WriteMissPolicy::FetchOnWrite);
    let wv = run_fetches(&w, WriteMissPolicy::WriteValidate);
    assert!(
        wv * 3 < fow * 2,
        "write-validate ({wv}) should fetch about half of fetch-on-write ({fow})"
    );
}

#[test]
fn axpy_gains_little_from_write_validate() {
    // linpack's inner loop is read-modify-write: the load fetches the line
    // before the store, so write-validate has nothing left to remove.
    let w = programs::axpy();
    let fow = run_fetches(&w, WriteMissPolicy::FetchOnWrite);
    let wv = run_fetches(&w, WriteMissPolicy::WriteValidate);
    // Every store follows a load of the same line, so there is nothing
    // for write-validate to remove.
    assert!(
        wv * 10 > fow * 9,
        "axpy should not benefit much from write-validate: {wv} vs {fow}"
    );
}

#[test]
fn fill_is_the_ideal_write_validate_case() {
    let w = programs::fill();
    let fow = run_fetches(&w, WriteMissPolicy::FetchOnWrite);
    let wv = run_fetches(&w, WriteMissPolicy::WriteValidate);
    assert!(
        fow >= 256,
        "filling 4KB through 16B lines must miss every line"
    );
    assert_eq!(wv, 0, "write-validate never fetches on a pure fill");
}
