//! [`CwpError`]: the workspace-wide structured error type.
//!
//! The simulator's hot paths (the per-access loops in `cwp-cache`) stay
//! infallible for speed, but everything around them — configuration,
//! checked access entry points, and the fault-recovery machinery — reports
//! failures through this one enum instead of panicking. A detected fault
//! is *data*, not a crash: the paper's Section 3 argument is precisely
//! about which faults are recoverable, so the simulator must survive all
//! of them and report what happened.

use std::error::Error;
use std::fmt;

/// Every way a `cwp` simulation can fail without it being a bug in the
/// simulator itself.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CwpError {
    /// A configuration was rejected (invalid geometry, conflicting
    /// policies, an unrepresentable fault rate, ...).
    Config {
        /// Human-readable reason the configuration was rejected.
        reason: String,
    },
    /// An access `addr..addr + len` does not fit in the 64-bit address
    /// space.
    AddressOverflow {
        /// Starting address of the offending access.
        addr: u64,
        /// Length of the offending access in bytes.
        len: usize,
    },
    /// An access that a component requires to be aligned was not.
    Misaligned {
        /// Starting address of the offending access.
        addr: u64,
        /// The alignment the component required, in bytes.
        align: u64,
    },
    /// A detected fault destroyed dirty data that existed nowhere else
    /// in the hierarchy (Section 3: parity on a dirty write-back line).
    FaultLoss {
        /// Line-aligned address of the line that lost data.
        line_addr: u64,
        /// Number of dirty bytes that were unrecoverable.
        dirty_bytes: u32,
    },
    /// A faulty transfer was retried up to its bound and never succeeded.
    RetriesExhausted {
        /// Address of the transfer that kept faulting.
        addr: u64,
        /// Number of attempts made (initial try plus retries).
        attempts: u32,
    },
    /// The simulator caught itself in an inconsistent state: a counter
    /// moved without the bookkeeping that must accompany it, or an
    /// audited conservation law failed. Unlike the other variants this
    /// *is* a bug in the simulator — it is reported as data instead of
    /// a silent fallback so callers (and the invariant auditor) can
    /// fail loudly with the evidence attached.
    InvariantViolation {
        /// What law was broken, with the observed values.
        detail: String,
    },
}

impl fmt::Display for CwpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CwpError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            CwpError::AddressOverflow { addr, len } => {
                write!(
                    f,
                    "access at {addr:#x} of {len} bytes overflows the address space"
                )
            }
            CwpError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} is not {align}-byte aligned")
            }
            CwpError::FaultLoss {
                line_addr,
                dirty_bytes,
            } => write!(
                f,
                "unrecoverable fault: line {line_addr:#x} lost {dirty_bytes} dirty byte(s)"
            ),
            CwpError::RetriesExhausted { addr, attempts } => {
                write!(
                    f,
                    "transfer at {addr:#x} still faulty after {attempts} attempt(s)"
                )
            }
            CwpError::InvariantViolation { detail } => {
                write!(f, "simulator invariant violated: {detail}")
            }
        }
    }
}

impl Error for CwpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: [(CwpError, &str); 6] = [
            (
                CwpError::Config {
                    reason: "zero ways".into(),
                },
                "zero ways",
            ),
            (
                CwpError::AddressOverflow {
                    addr: u64::MAX,
                    len: 2,
                },
                "overflows",
            ),
            (
                CwpError::Misaligned {
                    addr: 0x13,
                    align: 4,
                },
                "not 4-byte aligned",
            ),
            (
                CwpError::FaultLoss {
                    line_addr: 0x40,
                    dirty_bytes: 3,
                },
                "3 dirty byte",
            ),
            (
                CwpError::RetriesExhausted {
                    addr: 0x80,
                    attempts: 4,
                },
                "after 4 attempt",
            ),
            (
                CwpError::InvariantViolation {
                    detail: "loss counter moved without a recorded site".into(),
                },
                "invariant violated",
            ),
        ];
        for (err, needle) in cases {
            let shown = err.to_string();
            assert!(shown.contains(needle), "{shown:?} missing {needle:?}");
        }
    }
}
