//! [`FaultyNextLevel`]: a next-level wrapper that injects transit faults.
//!
//! The tentpole fault model in `cwp-cache` covers faults *at rest* in the
//! data array. This wrapper covers the other half of Section 3's argument:
//! bits flipped *in flight* on the bus between hierarchy levels. Transfers
//! in real systems carry parity sideband bits, so a corrupted transfer is
//! detectable and the natural recovery is to retry the transfer — which is
//! exactly what this wrapper models, with a bounded number of attempts.
//!
//! Fetches are retried because the source (the inner level) still holds
//! the correct data. Write-backs and write-throughs are also retried; the
//! writer still holds the data until the transfer is acknowledged. If the
//! retry bound is ever exhausted, the corrupted transfer is delivered
//! as-is and counted — never a panic — so multi-level stacks (`ext_l2`)
//! degrade gracefully.

use crate::next::NextLevel;
use crate::rng::SplitMix64;
use cwp_obs::event::Event;
use cwp_obs::{NullProbe, Probe};

/// Counters kept by a [`FaultyNextLevel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitFaultStats {
    /// Transfers attempted (including retries).
    pub attempts: u64,
    /// Transfers on which a fault was injected.
    pub injected: u64,
    /// Retries performed after a detected transit fault.
    pub retries: u64,
    /// Transfers delivered corrupted because the retry bound ran out.
    pub delivered_corrupt: u64,
}

impl TransitFaultStats {
    /// Transfers that completed cleanly (possibly after retries).
    pub fn recovered(&self) -> u64 {
        self.injected.saturating_sub(self.delivered_corrupt)
    }
}

/// Wraps any [`NextLevel`] and flips one bit per faulty transfer with a
/// configurable probability, retrying detected faults up to a bound.
///
/// Determinism: the injector is driven by a seeded [`SplitMix64`], so a
/// fixed `(seed, rate)` pair yields the same fault sites on every run.
///
/// # Examples
///
/// ```
/// use cwp_mem::{FaultyNextLevel, MainMemory, NextLevel};
///
/// // Fault half of all transfers, allow up to 20 retries: everything
/// // recovers (each retry faults independently with the same rate).
/// let mut level = FaultyNextLevel::new(MainMemory::new(), 500_000, 0x51, 20);
/// for round in 0..16 { level.write_through(0x80 + round, &[round as u8]); }
/// level.write_through(0x40, &[7; 4]);
/// let mut buf = [0u8; 4];
/// level.fetch_line(0x40, &mut buf);
/// assert_eq!(buf, [7; 4]);
/// assert!(level.transit_stats().injected > 0);
/// assert_eq!(level.transit_stats().delivered_corrupt, 0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultyNextLevel<N, P = NullProbe> {
    inner: N,
    rng: SplitMix64,
    /// Probability of a fault per transfer, in parts per million.
    rate_ppm: u32,
    /// Maximum retries after the initial attempt of a faulty transfer.
    retry_limit: u32,
    stats: TransitFaultStats,
    probe: P,
}

impl<N: NextLevel> FaultyNextLevel<N> {
    /// Wraps `inner`, faulting each transfer with probability
    /// `rate_ppm / 1_000_000` and retrying detected faults up to
    /// `retry_limit` times.
    pub fn new(inner: N, rate_ppm: u32, seed: u64, retry_limit: u32) -> Self {
        FaultyNextLevel::with_probe(inner, rate_ppm, seed, retry_limit, NullProbe)
    }
}

impl<N: NextLevel, P: Probe> FaultyNextLevel<N, P> {
    /// As [`FaultyNextLevel::new`], but attaches `probe` to observe
    /// [`Event::TransitFault`] for every in-flight corruption.
    pub fn with_probe(inner: N, rate_ppm: u32, seed: u64, retry_limit: u32, probe: P) -> Self {
        FaultyNextLevel {
            inner,
            rng: SplitMix64::seed_from_u64(seed),
            rate_ppm: rate_ppm.min(1_000_000),
            retry_limit,
            stats: TransitFaultStats::default(),
            probe,
        }
    }

    #[inline]
    fn emit(&mut self, event: Event) {
        if P::ENABLED {
            self.probe.on_event(&event);
        }
    }

    /// Consumes the wrapper, returning the wrapped level and the probe.
    pub fn into_parts(self) -> (N, P) {
        (self.inner, self.probe)
    }

    /// The transit-fault counters accumulated so far.
    pub fn transit_stats(&self) -> &TransitFaultStats {
        &self.stats
    }

    /// The wrapped level.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// The wrapped level, mutably (e.g. to read a `TrafficRecorder`).
    pub fn inner_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// Consumes the wrapper and returns the wrapped level.
    pub fn into_inner(self) -> N {
        self.inner
    }

    /// Decides whether this transfer faults, and if so where.
    fn fault_site(&mut self, len: usize) -> Option<(usize, u8)> {
        if len == 0 || self.rate_ppm == 0 {
            return None;
        }
        if !self.rng.gen_ratio(self.rate_ppm, 1_000_000) {
            return None;
        }
        let byte = self.rng.below(len as u64) as usize;
        let bit = (self.rng.next_u64() % 8) as u8;
        Some((byte, bit))
    }

    /// Runs one transfer attempt of `len` bytes through `xfer`, injecting
    /// a fault into the produced bytes when the injector fires. Returns
    /// `true` if the attempt was clean.
    fn attempt(&mut self, len: usize, xfer: impl FnOnce(&mut N, Option<(usize, u8)>)) -> bool {
        self.stats.attempts += 1;
        let site = self.fault_site(len);
        if site.is_some() {
            self.stats.injected += 1;
        }
        xfer(&mut self.inner, site);
        site.is_none()
    }
}

impl<N: NextLevel, P: Probe> NextLevel for FaultyNextLevel<N, P> {
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]) {
        let mut tries = 0;
        loop {
            let clean = self.attempt(buf.len(), |inner, site| {
                inner.fetch_line(addr, buf);
                if let Some((byte, bit)) = site {
                    buf[byte] ^= 1 << bit;
                }
            });
            if clean {
                return;
            }
            let retried = tries < self.retry_limit;
            self.emit(Event::TransitFault {
                addr,
                bytes: buf.len() as u32,
                retried,
            });
            if !retried {
                self.stats.delivered_corrupt += 1;
                return;
            }
            tries += 1;
            self.stats.retries += 1;
        }
    }

    fn write_back(&mut self, addr: u64, data: &[u8]) {
        self.store(addr, data, true)
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) {
        self.store(addr, data, false)
    }
}

impl<N: NextLevel, P: Probe> FaultyNextLevel<N, P> {
    /// Shared retry loop for the two store-side transfer classes. A faulty
    /// attempt writes the corrupted bytes (the inner level really sees
    /// them); a successful retry overwrites them with the clean data.
    fn store(&mut self, addr: u64, data: &[u8], back: bool) {
        let mut corrupted;
        let mut tries = 0;
        loop {
            let mut scratch = None;
            let clean = self.attempt(data.len(), |inner, site| {
                if let Some((byte, bit)) = site {
                    let mut copy = data.to_vec();
                    copy[byte] ^= 1 << bit;
                    if back {
                        inner.write_back(addr, &copy);
                    } else {
                        inner.write_through(addr, &copy);
                    }
                    scratch = Some(copy);
                } else if back {
                    inner.write_back(addr, data);
                } else {
                    inner.write_through(addr, data);
                }
            });
            corrupted = scratch.is_some();
            if clean {
                return;
            }
            let retried = tries < self.retry_limit;
            self.emit(Event::TransitFault {
                addr,
                bytes: data.len() as u32,
                retried,
            });
            if !retried {
                break;
            }
            tries += 1;
            self.stats.retries += 1;
        }
        if corrupted {
            self.stats.delivered_corrupt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MainMemory;

    fn always_faulty(retry_limit: u32, seed: u64) -> FaultyNextLevel<MainMemory> {
        FaultyNextLevel::new(MainMemory::new(), 1_000_000, seed, retry_limit)
    }

    fn half_faulty(retry_limit: u32, seed: u64) -> FaultyNextLevel<MainMemory> {
        FaultyNextLevel::new(MainMemory::new(), 500_000, seed, retry_limit)
    }

    #[test]
    fn zero_rate_is_transparent() {
        let mut level = FaultyNextLevel::new(MainMemory::new(), 0, 1, 3);
        level.write_through(0x100, &[1, 2, 3, 4]);
        level.write_back(0x104, &[5, 6]);
        let mut buf = [0u8; 6];
        level.fetch_line(0x100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        assert_eq!(level.transit_stats().injected, 0);
        assert_eq!(level.transit_stats().attempts, 3);
    }

    #[test]
    fn retries_recover_heavy_fault_rate() {
        // 50% of attempts fault; 20 retries make the residual failure
        // probability per transfer ~5e-7, and the fixed seed makes the
        // outcome exact: every transfer recovers.
        let mut level = half_faulty(20, 0xfee1);
        for i in 0..64u64 {
            level.write_through(i * 4, &[i as u8; 4]);
        }
        let mut buf = [0u8; 4];
        for i in 0..64u64 {
            level.fetch_line(i * 4, &mut buf);
            assert_eq!(buf, [i as u8; 4], "transfer {i} not recovered");
        }
        let stats = level.transit_stats();
        assert!(
            stats.injected >= 32,
            "roughly half the transfers should fault"
        );
        assert_eq!(stats.delivered_corrupt, 0);
        assert_eq!(stats.recovered(), stats.injected);
        assert_eq!(
            stats.retries, stats.injected,
            "one retry per detected fault"
        );
    }

    #[test]
    fn exhausted_retries_deliver_corrupt_and_count() {
        // retry_limit 0: the first faulty attempt is final.
        let mut level = always_faulty(0, 0x2);
        level.write_through(0x40, &[0xff; 8]);
        let stats = *level.transit_stats();
        assert_eq!(stats.injected, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.delivered_corrupt, 1);
        // The inner memory really holds a single-bit-corrupted copy.
        let mut buf = [0u8; 8];
        level.inner_mut().fetch_line(0x40, &mut buf);
        let flipped: u32 = buf.iter().map(|b| (b ^ 0xff).count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit should differ");
    }

    #[test]
    fn probe_events_mirror_transit_stats() {
        use cwp_obs::RecordingProbe;
        let mut level = FaultyNextLevel::with_probe(
            MainMemory::new(),
            400_000,
            0xcafe,
            3,
            RecordingProbe::default(),
        );
        for i in 0..200u64 {
            level.write_through(i * 8, &[i as u8; 8]);
        }
        let mut buf = [0u8; 8];
        for i in 0..200u64 {
            level.fetch_line(i * 8, &mut buf);
        }
        let stats = *level.transit_stats();
        let (_, probe) = level.into_parts();
        let mut faults = 0u64;
        let mut retried = 0u64;
        let mut delivered = 0u64;
        for e in &probe.events {
            match *e {
                Event::TransitFault { retried: r, .. } => {
                    faults += 1;
                    if r {
                        retried += 1;
                    } else {
                        delivered += 1;
                    }
                }
                _ => panic!("unexpected event {e:?}"),
            }
        }
        assert!(stats.injected > 0, "injector must fire at this rate");
        assert_eq!(faults, stats.injected);
        assert_eq!(retried, stats.retries);
        assert_eq!(delivered, stats.delivered_corrupt);
    }

    #[test]
    fn fault_sites_are_deterministic() {
        let run = |seed| {
            let mut level = FaultyNextLevel::new(MainMemory::new(), 250_000, seed, 2);
            for i in 0..256u64 {
                level.write_through(i * 8, &[0xab; 8]);
            }
            let mut buf = [0u8; 8];
            for i in 0..256u64 {
                level.fetch_line(i * 8, &mut buf);
            }
            *level.transit_stats()
        };
        assert_eq!(run(0x1993), run(0x1993));
        assert_ne!(run(0x1993), run(0x1994), "different seeds should differ");
    }
}
