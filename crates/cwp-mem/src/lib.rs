//! Backing memory and the next-level interface for the `cwp` simulator.
//!
//! The cache simulator in `cwp-cache` is *data-carrying*: cache lines hold
//! real bytes, and this crate supplies the flat memory those bytes
//! ultimately live in. Carrying data lets the test suite assert *functional
//! transparency* — that every cache/policy combination returns exactly the
//! bytes a flat memory would — which pins down the trickier write-miss
//! semantics (write-validate's sub-block valid bits, write-around's
//! bypassing, write-invalidate's corruption rule).
//!
//! The [`NextLevel`] trait is the seam between hierarchy levels: a cache
//! drives its next level through it, [`MainMemory`] terminates the stack,
//! and [`TrafficRecorder`] wraps any level to count the transactions and
//! bytes the paper's Section 5 measures.
//!
//! # Examples
//!
//! ```
//! use cwp_mem::{MainMemory, NextLevel, TrafficRecorder};
//!
//! let mut mem = TrafficRecorder::new(MainMemory::new());
//! mem.write_through(0x100, &[1, 2, 3, 4]);
//! let mut buf = [0u8; 4];
//! mem.fetch_line(0x100, &mut buf);
//! assert_eq!(buf, [1, 2, 3, 4]);
//! assert_eq!(mem.traffic().write_through.transactions, 1);
//! assert_eq!(mem.traffic().fetch.bytes, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod error;
pub mod faulty;
pub mod memory;
pub mod next;
pub mod rng;
pub mod traffic;

pub use error::CwpError;
pub use faulty::{FaultyNextLevel, TransitFaultStats};
pub use memory::{MainMemory, VoidMemory};
pub use next::NextLevel;
pub use rng::SplitMix64;
pub use traffic::{Traffic, TrafficClass, TrafficRecorder};
