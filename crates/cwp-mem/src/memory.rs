//! A sparse, data-carrying flat memory.

use std::collections::HashMap;

use crate::next::NextLevel;

/// Bytes per allocation page.
const PAGE: u64 = 4096;

/// Sparse byte-addressable main memory.
///
/// Pages materialize on first touch and untouched bytes read as zero, so
/// the 2^64 address space costs only what the workload touches. This is
/// the golden model for the transparency property tests: any hierarchy of
/// caches must return the same bytes a bare `MainMemory` would.
///
/// # Examples
///
/// ```
/// use cwp_mem::MainMemory;
///
/// let mut mem = MainMemory::new();
/// mem.write(0xffff_0000, &[0xab; 8]);
/// assert_eq!(mem.read_byte(0xffff_0003), 0xab);
/// assert_eq!(mem.read_byte(0x0), 0, "untouched memory reads as zero");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one byte.
    pub fn read_byte(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE)) {
            Some(page) => page[(addr % PAGE) as usize],
            None => 0,
        }
    }

    /// Fills `buf` from `addr..addr + buf.len()`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_byte(addr + i as u64);
        }
    }

    /// Writes `data` at `addr`, materializing pages as needed.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            let page = self
                .pages
                .entry(a / PAGE)
                .or_insert_with(|| vec![0u8; PAGE as usize].into_boxed_slice());
            page[(a % PAGE) as usize] = b;
        }
    }

    /// Number of 4KB pages materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

impl NextLevel for MainMemory {
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]) {
        self.read(addr, buf);
    }

    fn write_back(&mut self, addr: u64, data: &[u8]) {
        self.write(addr, data);
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) {
        self.write(addr, data);
    }
}

/// A data-less next level: writes are discarded and every fetch reads
/// zeros — a [`MainMemory`] that never materializes a page.
///
/// Cache statistics and back-side traffic are functions of the address
/// stream and the configuration alone, so measurement passes that
/// observe nothing data-dependent (no fault injection, no probe looking
/// at bytes) can back a cache with `VoidMemory` and skip `MainMemory`'s
/// per-byte page bookkeeping entirely. The multi-configuration fan-out
/// in `cwp-core::sim::simulate_many` is the intended consumer; anything
/// that checks transparency or injects faults must keep a real memory.
///
/// # Examples
///
/// ```
/// use cwp_mem::{NextLevel, VoidMemory};
///
/// let mut void = VoidMemory;
/// void.write_through(0x40, &[0xab; 8]);
/// let mut buf = [0xffu8; 8];
/// void.fetch_line(0x40, &mut buf);
/// assert_eq!(buf, [0; 8], "writes vanish; fetches read zero");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoidMemory;

impl NextLevel for VoidMemory {
    fn fetch_line(&mut self, _addr: u64, buf: &mut [u8]) {
        buf.fill(0);
    }

    fn write_back(&mut self, _addr: u64, _data: &[u8]) {}

    fn write_through(&mut self, _addr: u64, _data: &[u8]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_is_zero_and_costs_nothing() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_byte(123_456_789), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn writes_persist_and_cross_page_boundaries() {
        let mut mem = MainMemory::new();
        let addr = PAGE - 2;
        mem.write(addr, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        mem.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(mem.resident_pages(), 2, "the write spans two pages");
    }

    #[test]
    fn next_level_methods_alias_the_same_store() {
        let mut mem = MainMemory::new();
        mem.write_through(0x40, &[5]);
        mem.write_back(0x41, &[6]);
        let mut buf = [0u8; 2];
        mem.fetch_line(0x40, &mut buf);
        assert_eq!(buf, [5, 6]);
    }

    #[test]
    fn void_memory_reads_like_untouched_main_memory() {
        let mut void = VoidMemory;
        let mut main = MainMemory::new();
        void.write_back(0x1000, &[7; 16]);
        let mut a = [0xaau8; 16];
        let mut b = [0x55u8; 16];
        void.fetch_line(0x1000, &mut a);
        main.fetch_line(0x1000, &mut b);
        assert_eq!(a, b, "a void fetch matches a never-written MainMemory");
    }

    #[test]
    fn overlapping_writes_last_writer_wins() {
        let mut mem = MainMemory::new();
        mem.write(0x100, &[1, 1, 1, 1]);
        mem.write(0x102, &[9, 9]);
        let mut buf = [0u8; 4];
        mem.read(0x100, &mut buf);
        assert_eq!(buf, [1, 1, 9, 9]);
    }
}
