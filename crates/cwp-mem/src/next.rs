//! The [`NextLevel`] trait: how one memory-hierarchy level drives the next.

/// Interface a cache uses to talk to the next-lower level of the memory
/// hierarchy.
///
/// The three methods move the same kind of bytes but mean different things
/// to traffic accounting, mirroring the paper's Section 5 transaction
/// classes: line *fetches* (read misses and fetch-on-write), dirty-victim
/// *write-backs*, and *write-throughs* of store data.
///
/// Implementations must be functionally flat: a `fetch_line` must observe
/// every byte previously stored by `write_back` or `write_through` at the
/// same address, regardless of interleaving.
pub trait NextLevel {
    /// Fills `buf` with the bytes at `addr..addr + buf.len()`.
    ///
    /// Callers fetch whole cache lines, so `addr` is line-aligned and
    /// `buf.len()` is the line size; implementations may rely on neither.
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes back a (whole or partial) dirty victim line.
    fn write_back(&mut self, addr: u64, data: &[u8]);

    /// Passes store data through from a write-through cache or a
    /// no-write-allocate write miss.
    fn write_through(&mut self, addr: u64, data: &[u8]);
}

impl<N: NextLevel + ?Sized> NextLevel for &mut N {
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]) {
        (**self).fetch_line(addr, buf)
    }

    fn write_back(&mut self, addr: u64, data: &[u8]) {
        (**self).write_back(addr, data)
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) {
        (**self).write_through(addr, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MainMemory;

    #[test]
    fn mutable_references_forward() {
        let mut mem = MainMemory::new();
        {
            let level: &mut MainMemory = &mut mem;
            level.write_through(0x10, &[9, 9]);
            level.write_back(0x12, &[7]);
        }
        let mut buf = [0u8; 3];
        mem.fetch_line(0x10, &mut buf);
        assert_eq!(buf, [9, 9, 7]);
    }
}
