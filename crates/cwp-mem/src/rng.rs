//! A deterministic in-tree PRNG: SplitMix64.
//!
//! The workspace must build and test with no network access, so nothing
//! here may depend on crates.io. This module replaces the external `rand`
//! dependency for every consumer in the workspace: the `cwp-trace`
//! workload generators, the fault injectors in `cwp-cache` and this
//! crate's [`FaultyNextLevel`], and the randomized property tests.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is a tiny counter-based
//! generator: 64 bits of state, one add and two xor-multiply mixes per
//! output, full 2^64 period, and — crucially for reproducible experiments —
//! the same sequence for the same seed on every platform, forever.
//!
//! [`FaultyNextLevel`]: crate::faulty::FaultyNextLevel

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use cwp_mem::rng::SplitMix64;
///
/// let mut a = SplitMix64::seed_from_u64(42);
/// let mut b = SplitMix64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same sequence");
/// let roll = a.gen_range(1..=6u64);
/// assert!((1..=6).contains(&roll));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (Lemire's multiply-shift reduction;
    /// the bias is below 2^-64 and irrelevant for simulation).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` (an empty range has no value to draw).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value from `range` (see [`RandRange`] for supported
    /// range types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: RandRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        self.below(u64::from(den)) < u64::from(num)
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample from.
pub trait RandRange<T> {
    /// Draws a uniform value from `self`.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

impl RandRange<u64> for Range<u64> {
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below(self.end - self.start)
    }
}

impl RandRange<u64> for RangeInclusive<u64> {
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        match hi.checked_sub(lo).and_then(|s| s.checked_add(1)) {
            Some(span) => lo + rng.below(span),
            None => rng.next_u64(), // the full u64 domain
        }
    }
}

impl RandRange<i64> for Range<i64> {
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        assert!(self.start < self.end, "empty range {self:?}");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl RandRange<i64> for RangeInclusive<i64> {
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        let span = hi.wrapping_sub(lo) as u64;
        match span.checked_add(1) {
            Some(span) => lo.wrapping_add(rng.below(span) as i64),
            None => rng.next_u64() as i64, // the full i64 domain
        }
    }
}

impl RandRange<u32> for Range<u32> {
    fn sample(self, rng: &mut SplitMix64) -> u32 {
        rng.gen_range(u64::from(self.start)..u64::from(self.end)) as u32
    }
}

impl RandRange<usize> for Range<usize> {
    fn sample(self, rng: &mut SplitMix64) -> usize {
        rng.gen_range(self.start as u64..self.end as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sequence_is_stable() {
        // Reference values for seed 0 from the published SplitMix64
        // algorithm; pinning them guards against accidental edits.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::seed_from_u64(0xdead_beef);
        let mut b = SplitMix64::seed_from_u64(0xdead_beef);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            assert!((0..10u64).contains(&rng.gen_range(0..10u64)));
            assert!((5..=5u64).contains(&rng.gen_range(5..=5u64)));
            assert!((-8..8i64).contains(&rng.gen_range(-8..8i64)));
            assert!((-3..=3i64).contains(&rng.gen_range(-3..=3i64)));
            assert!(rng.gen_range(0..7usize) < 7);
            assert!(rng.gen_range(0..9u32) < 9);
        }
    }

    #[test]
    fn ratio_is_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}/10000");
        let f = rng.gen_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = rng.gen_range(5..5u64);
    }
}
