//! Back-side traffic accounting: the measurements behind Section 5.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::next::NextLevel;

/// Transactions and bytes for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TrafficClass {
    /// Number of transactions (one per `NextLevel` call).
    pub transactions: u64,
    /// Bytes moved by those transactions.
    pub bytes: u64,
}

impl TrafficClass {
    fn tally(&mut self, bytes: usize) {
        self.transactions += 1;
        self.bytes += bytes as u64;
    }
}

impl Add for TrafficClass {
    type Output = TrafficClass;

    fn add(self, rhs: TrafficClass) -> TrafficClass {
        TrafficClass {
            transactions: self.transactions + rhs.transactions,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for TrafficClass {
    fn add_assign(&mut self, rhs: TrafficClass) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} txns / {} B", self.transactions, self.bytes)
    }
}

/// Traffic at the back side of a cache, split into the paper's three
/// transaction classes (Section 5.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Traffic {
    /// Line fetches: read misses plus fetch-on-write misses.
    pub fetch: TrafficClass,
    /// Dirty-victim write-backs.
    pub write_back: TrafficClass,
    /// Write-through store traffic (including write-around and
    /// write-invalidate stores, which also bypass to the next level).
    pub write_through: TrafficClass,
}

impl Traffic {
    /// Total transactions across all classes.
    pub fn total_transactions(&self) -> u64 {
        self.fetch.transactions + self.write_back.transactions + self.write_through.transactions
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.fetch.bytes + self.write_back.bytes + self.write_through.bytes
    }
}

impl Add for Traffic {
    type Output = Traffic;

    fn add(self, rhs: Traffic) -> Traffic {
        Traffic {
            fetch: self.fetch + rhs.fetch,
            write_back: self.write_back + rhs.write_back,
            write_through: self.write_through + rhs.write_through,
        }
    }
}

impl AddAssign for Traffic {
    fn add_assign(&mut self, rhs: Traffic) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetch {}, write-back {}, write-through {}",
            self.fetch, self.write_back, self.write_through
        )
    }
}

/// Wraps any [`NextLevel`], counting every transaction that crosses it.
///
/// Insert a recorder between a cache and its next level to measure the
/// cache's back-side traffic, exactly where the paper's Section 5 probes.
#[derive(Debug, Clone, Default)]
pub struct TrafficRecorder<N> {
    inner: N,
    traffic: Traffic,
}

impl<N: NextLevel> TrafficRecorder<N> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: N) -> Self {
        TrafficRecorder {
            inner,
            traffic: Traffic::default(),
        }
    }

    /// The counts so far.
    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    /// Resets the counters to zero (e.g. after a cache warm-up phase).
    pub fn reset(&mut self) {
        self.traffic = Traffic::default();
    }

    /// Shared access to the wrapped level.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Mutable access to the wrapped level.
    pub fn inner_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// Unwraps the recorder, returning the wrapped level.
    pub fn into_inner(self) -> N {
        self.inner
    }
}

impl<N: NextLevel> NextLevel for TrafficRecorder<N> {
    fn fetch_line(&mut self, addr: u64, buf: &mut [u8]) {
        self.traffic.fetch.tally(buf.len());
        self.inner.fetch_line(addr, buf);
    }

    fn write_back(&mut self, addr: u64, data: &[u8]) {
        self.traffic.write_back.tally(data.len());
        self.inner.write_back(addr, data);
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) {
        self.traffic.write_through.tally(data.len());
        self.inner.write_through(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MainMemory;

    #[test]
    fn recorder_counts_by_class() {
        let mut rec = TrafficRecorder::new(MainMemory::new());
        rec.write_through(0, &[0; 4]);
        rec.write_through(4, &[0; 8]);
        rec.write_back(16, &[0; 16]);
        let mut buf = [0u8; 16];
        rec.fetch_line(0, &mut buf);
        let t = rec.traffic();
        assert_eq!(
            t.write_through,
            TrafficClass {
                transactions: 2,
                bytes: 12
            }
        );
        assert_eq!(
            t.write_back,
            TrafficClass {
                transactions: 1,
                bytes: 16
            }
        );
        assert_eq!(
            t.fetch,
            TrafficClass {
                transactions: 1,
                bytes: 16
            }
        );
        assert_eq!(t.total_transactions(), 4);
        assert_eq!(t.total_bytes(), 44);
    }

    #[test]
    fn reset_zeroes_counters_but_keeps_data() {
        let mut rec = TrafficRecorder::new(MainMemory::new());
        rec.write_through(0x20, &[7; 4]);
        rec.reset();
        assert_eq!(rec.traffic(), Traffic::default());
        assert_eq!(rec.inner().read_byte(0x20), 7);
    }

    #[test]
    fn traffic_sums() {
        let a = Traffic {
            fetch: TrafficClass {
                transactions: 1,
                bytes: 16,
            },
            ..Traffic::default()
        };
        let b = Traffic {
            write_back: TrafficClass {
                transactions: 2,
                bytes: 32,
            },
            ..Traffic::default()
        };
        let mut c = a + b;
        c += a;
        assert_eq!(c.fetch.transactions, 2);
        assert_eq!(c.write_back.bytes, 32);
        assert_eq!(c.total_bytes(), 64);
    }

    #[test]
    fn into_inner_round_trips() {
        let mut rec = TrafficRecorder::new(MainMemory::new());
        rec.write_back(8, &[1]);
        let mem = rec.into_inner();
        assert_eq!(mem.read_byte(8), 1);
    }
}
