//! Validates exported trace directories against the event schema.
//!
//! Usage: `validate_trace <trace-dir>...`
//!
//! Each argument is walked for run directories (those containing a
//! `manifest.json`); every run's `events.jsonl`, `windows.csv`, and
//! manifest are checked for schema conformance and mutual consistency.
//! Exits nonzero with a diagnostic on the first failure — this is the
//! offline check `scripts/verify.sh` and CI run after a traced
//! experiment.

use std::path::Path;
use std::process::ExitCode;

use cwp_obs::schema::validate_trace_dir;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: validate_trace <trace-dir>...");
        return ExitCode::from(2);
    }
    let mut runs = 0usize;
    for arg in &args {
        match validate_trace_dir(Path::new(arg)) {
            Ok(reports) => {
                for r in &reports {
                    let tail = if r.truncated {
                        "; WARNING: torn final line tolerated"
                    } else {
                        ""
                    };
                    println!(
                        "ok: {} ({} events, {} windows, {} refs{tail})",
                        r.dir.display(),
                        r.events,
                        r.windows,
                        r.total_refs
                    );
                }
                runs += reports.len();
            }
            Err(e) => {
                eprintln!("validate_trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("validate_trace: {runs} run(s) valid");
    ExitCode::SUCCESS
}
