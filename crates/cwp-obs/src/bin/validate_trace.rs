//! Validates exported trace directories against the event schema.
//!
//! Usage: `validate_trace [--strict] <trace-dir>...`
//!
//! Each argument is walked for run directories (those containing a
//! `manifest.json`); every run's `events.jsonl`, `windows.csv`, and
//! manifest are checked for schema conformance and mutual consistency.
//! Exits nonzero with a diagnostic on the first failure — this is the
//! offline check `scripts/verify.sh` and CI run after a traced
//! experiment.
//!
//! A torn final line (a crash mid-append) is tolerated by default and
//! reported as a warning: the lenient reading is what crash-recovery
//! paths (the runner's `--resume`, the serve memo journal) rely on.
//! `--strict` turns the warning into a failure — use it where a
//! truncated stream means the producer misbehaved, e.g. validating the
//! output of a run that is known to have exited cleanly.

use std::path::Path;
use std::process::ExitCode;

use cwp_obs::schema::validate_trace_dir;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    args.retain(|a| a != "--strict");
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: validate_trace [--strict] <trace-dir>...");
        return ExitCode::from(2);
    }
    let mut runs = 0usize;
    let mut truncated = 0usize;
    for arg in &args {
        match validate_trace_dir(Path::new(arg)) {
            Ok(reports) => {
                for r in &reports {
                    let tail = if r.truncated {
                        truncated += 1;
                        "; WARNING: torn final line tolerated"
                    } else {
                        ""
                    };
                    println!(
                        "ok: {} ({} events, {} windows, {} refs{tail})",
                        r.dir.display(),
                        r.events,
                        r.windows,
                        r.total_refs
                    );
                }
                runs += reports.len();
            }
            Err(e) => {
                eprintln!("validate_trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if strict && truncated > 0 {
        eprintln!("validate_trace: --strict: {truncated} run(s) end in a partially-written line");
        return ExitCode::FAILURE;
    }
    println!("validate_trace: {runs} run(s) valid");
    ExitCode::SUCCESS
}
