//! The typed event stream and the [`Probe`] trait that receives it.
//!
//! Every instrumented component (`cwp-cache`, `cwp-buffers`, `cwp-mem`)
//! carries a probe as a generic parameter defaulting to [`NullProbe`].
//! Call sites are guarded by [`Probe::ENABLED`], a compile-time constant,
//! so the disabled configuration compiles to exactly the uninstrumented
//! code — the overhead contract the `cwp-bench` probe benchmark checks.

/// Whether an access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Why a line was fetched from the next level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchCause {
    /// A demand miss (read miss, partial-validity refill, or
    /// fetch-on-write). These are the fetches `CacheStats::fetches`
    /// counts.
    Demand,
    /// A refetch recovering a faulty clean parity-protected line.
    Recovery,
}

/// The decision a cache took on a write miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMissAction {
    /// Fetch-on-write: the line was fetched before the store.
    Fetch,
    /// Write-validate: allocated without a fetch, sub-block valid bits.
    Validate,
    /// Write-around: bypassed to the next level, old line kept.
    Around,
    /// Write-invalidate: indexed line invalidated, data bypassed.
    Invalidate,
}

/// How a detected at-rest fault was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// ECC corrected the flip in place.
    Corrected,
    /// Parity on a clean line: recovered by refetching.
    Refetched,
    /// Parity on a clean victim being discarded: nothing lost.
    DiscardedClean,
    /// Parity on a dirty line: the dirty bytes are gone.
    DataLoss,
}

/// The filesystem operation an injected I/O fault landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// A whole-file read.
    Read,
    /// A whole-file create-or-truncate write.
    Write,
    /// An atomic rename (the commit step of write-then-rename).
    Rename,
    /// A directory creation.
    CreateDir,
    /// A file removal.
    Remove,
}

/// The kind of fault the chaos I/O layer injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// A write failed after persisting only a prefix of its bytes.
    Torn,
    /// A read returned only a prefix of the file.
    ShortRead,
    /// The device reported out of space (`ENOSPC`).
    NoSpace,
    /// The call was interrupted (`EINTR`); a retry may succeed.
    Interrupted,
    /// The rename step of an atomic replace failed, leaving the
    /// temporary file behind.
    RenameFailed,
    /// The write reported success but its bytes never reached the
    /// device — the signature of a lost fsync.
    FsyncLost,
}

/// One observable simulator event.
///
/// Variants mirror the counters in `CacheStats`, `Traffic`,
/// `WriteBufferStats`, and `TransitFaultStats` one-to-one: each counter
/// increment emits exactly one event, which is what lets the windowed
/// sampler's per-window sums reconcile exactly with end-of-run totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A front-side sub-access presented to a cache (one per line-sized
    /// piece of a split access).
    Access {
        /// Read or write.
        kind: AccessKind,
        /// Byte address of this piece.
        addr: u64,
        /// Bytes accessed by this piece.
        bytes: u32,
    },
    /// A read whose tag matched with all accessed bytes valid.
    ReadHit {
        /// Byte address.
        addr: u64,
    },
    /// A read that required a line fetch.
    ReadMiss {
        /// Byte address.
        addr: u64,
        /// `true` if the tag matched but some accessed bytes were invalid
        /// (possible only after write-validate allocations).
        partial: bool,
    },
    /// A write whose tag matched a resident line.
    WriteHit {
        /// Byte address.
        addr: u64,
    },
    /// A write with no matching tag, and what the policy did about it.
    WriteMiss {
        /// Byte address.
        addr: u64,
        /// The configured write-miss policy's decision.
        action: WriteMissAction,
    },
    /// A back-side line fetch (one per `NextLevel::fetch_line` call).
    Fetch {
        /// Demand miss or fault-recovery refetch.
        cause: FetchCause,
        /// Line-aligned address fetched.
        addr: u64,
        /// Bytes transferred.
        bytes: u32,
    },
    /// A back-side write-back transaction (one per `NextLevel::write_back`
    /// call; a partial write-back emits one event per dirty run).
    WriteBack {
        /// Starting address of the transaction.
        addr: u64,
        /// Bytes transferred.
        bytes: u32,
    },
    /// A back-side write-through transaction.
    WriteThrough {
        /// Starting address of the transaction.
        addr: u64,
        /// Bytes transferred.
        bytes: u32,
    },
    /// A valid line left the cache (replacement victim or flush).
    Eviction {
        /// Line-aligned address of the departing line.
        line_addr: u64,
        /// Dirty bytes on the line (0 for a clean victim).
        dirty_bytes: u32,
        /// `true` if this was an end-of-run flush ("flush stop") rather
        /// than a replacement.
        flush: bool,
    },
    /// A line invalidated by a write-invalidate miss.
    Invalidation {
        /// Line-aligned address of the invalidated line.
        line_addr: u64,
    },
    /// A clean line became dirty (write-back caches only). Together with
    /// dirty [`Event::Eviction`]s and [`FaultOutcome::DataLoss`], this
    /// lets a sampler integrate an exact dirty-line gauge.
    LineDirtied {
        /// Line-aligned address of the newly dirty line.
        line_addr: u64,
    },
    /// A write hit a line that already had a dirty byte (the Figure 1/2
    /// metric).
    WriteToDirty {
        /// Line-aligned address of the dirty line.
        line_addr: u64,
    },
    /// A cache-line allocation instruction claimed a line without
    /// fetching it.
    LineAllocated {
        /// Line-aligned address of the claimed line.
        line_addr: u64,
    },
    /// A write entered a new write-buffer entry.
    BufferEnqueue {
        /// Line address of the new entry.
        line_addr: u64,
        /// Buffer occupancy after the enqueue.
        occupancy: u32,
    },
    /// A write merged into an already-pending write-buffer entry.
    BufferMerge {
        /// Line address of the entry merged into.
        line_addr: u64,
    },
    /// The processor stalled on a full write buffer.
    BufferStall {
        /// Cycles stalled.
        cycles: u64,
    },
    /// A write-buffer entry retired to the next level.
    BufferRetire {
        /// Buffer occupancy after the retirement.
        occupancy: u32,
    },
    /// The fault injector flipped a bit in a cache data array.
    FaultInjected {
        /// Line-aligned address of the affected line.
        line_addr: u64,
        /// Byte offset of the flip within the line.
        byte: u32,
        /// Bit position within that byte.
        bit: u8,
        /// `true` when the cache has no check bits and will never detect
        /// the flip.
        silent: bool,
    },
    /// A detected at-rest fault was resolved.
    FaultResolved {
        /// How it was resolved.
        outcome: FaultOutcome,
        /// Line-aligned address of the affected line.
        line_addr: u64,
        /// Dirty bytes lost (nonzero only for [`FaultOutcome::DataLoss`]).
        dirty_bytes: u32,
    },
    /// A transfer between hierarchy levels was corrupted in flight.
    TransitFault {
        /// Address of the faulty transfer.
        addr: u64,
        /// Bytes in the transfer.
        bytes: u32,
        /// `true` if the transfer will be retried; `false` if the retry
        /// bound ran out and the corrupted bytes were delivered.
        retried: bool,
    },
    /// The experiment runner dispatched a job attempt to a worker.
    JobStart {
        /// Index of the job in the run's job list.
        job: u32,
        /// Attempt number, starting at 1.
        attempt: u32,
    },
    /// The experiment runner scheduled a retry after a failed attempt.
    JobRetry {
        /// Index of the job in the run's job list.
        job: u32,
        /// The attempt that failed.
        attempt: u32,
        /// Backoff delay before the next attempt, in milliseconds.
        delay_ms: u64,
    },
    /// A job settled: its final attempt finished, failed for good, or
    /// exceeded its deadline.
    JobEnd {
        /// Index of the job in the run's job list.
        job: u32,
        /// The final attempt number.
        attempt: u32,
        /// `true` when the job produced its tables.
        ok: bool,
        /// Wall-clock time of the final attempt, in milliseconds.
        wall_ms: u64,
        /// Time the final attempt spent in the ready queue before a
        /// worker picked it up, in milliseconds (0 for timeouts, where
        /// the abandoned worker never reported back).
        wait_ms: u64,
    },
    /// The serve front end admitted a request into its bounded queue.
    RequestAdmitted {
        /// The request id (client-assigned, unique per connection).
        request: u64,
        /// Queue depth after admission.
        depth: u32,
    },
    /// The serve front end shed a request (queue full or the client's
    /// in-flight cap was reached).
    RequestShed {
        /// The request id.
        request: u64,
        /// Suggested delay before the client retries, in milliseconds.
        retry_after_ms: u64,
    },
    /// A request's deadline passed before its simulation finished; the
    /// work was cancelled.
    RequestDeadline {
        /// The request id.
        request: u64,
        /// The deadline the request carried, in milliseconds.
        deadline_ms: u64,
    },
    /// A request was served degraded: the trace budget was exhausted,
    /// so the simulation ran from live generation instead of a
    /// recording.
    RequestDegraded {
        /// The request id.
        request: u64,
    },
    /// A batch of compatible queued requests coalesced into one banked
    /// simulation pass.
    RequestCoalesced {
        /// The id of the request leading the batch.
        request: u64,
        /// Requests served by the single pass (including the leader).
        batch: u32,
    },
    /// The chaos I/O layer injected a storage fault.
    IoFault {
        /// The filesystem operation the fault landed on.
        op: IoOp,
        /// The kind of fault injected.
        fault: IoFaultKind,
        /// Bytes the operation carried (bytes actually persisted for a
        /// torn write, bytes returned for a short read, 0 otherwise).
        bytes: u64,
    },
    /// The serve front end began a graceful drain: admission stopped
    /// and queued work is being shed.
    DrainBegin {
        /// Entries waiting in the queue when the drain began.
        queued: u32,
    },
    /// A graceful drain finished: in-flight work settled, the memo
    /// journal and a final metrics snapshot were flushed.
    DrainDone {
        /// Queued entries shed with a retry hint during the drain.
        shed: u32,
        /// In-flight entries that completed normally during the drain.
        completed: u32,
    },
}

/// A receiver for the typed event stream.
///
/// Implementations must be cheap: probes run inside simulation hot loops.
/// The [`Probe::ENABLED`] constant lets instrumented code skip event
/// construction entirely for no-op probes — call sites are written as
/// `if P::ENABLED { probe.on_event(&...) }`, which the compiler removes
/// when `ENABLED` is `false`.
pub trait Probe {
    /// Whether this probe observes anything. Defaults to `true`;
    /// [`NullProbe`] overrides it to `false`.
    const ENABLED: bool = true;

    /// Receives one event.
    fn on_event(&mut self, event: &Event);
}

/// The default probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _event: &Event) {}
}

/// Fans one event stream out to two probes (compose for more).
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B> {
    /// The first receiver.
    pub a: A,
    /// The second receiver.
    pub b: B,
}

impl<A: Probe, B: Probe> Tee<A, B> {
    /// Combines two probes.
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }
}

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn on_event(&mut self, event: &Event) {
        if A::ENABLED {
            self.a.on_event(event);
        }
        if B::ENABLED {
            self.b.on_event(event);
        }
    }
}

/// A probe that tallies events by category — the cheapest useful probe,
/// used by tests and the overhead benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// All events received.
    pub events: u64,
    /// [`Event::Access`] events.
    pub accesses: u64,
    /// Hit events (read or write).
    pub hits: u64,
    /// Miss events (read or write).
    pub misses: u64,
    /// Back-side transactions (fetch, write-back, write-through).
    pub backside: u64,
    /// Eviction events (victims and flushes).
    pub evictions: u64,
    /// Write-buffer events.
    pub buffer: u64,
    /// Fault events (injected, resolved, transit).
    pub faults: u64,
}

impl Probe for CountingProbe {
    #[inline]
    fn on_event(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::Access { .. } => self.accesses += 1,
            Event::ReadHit { .. } | Event::WriteHit { .. } => self.hits += 1,
            Event::ReadMiss { .. } | Event::WriteMiss { .. } => self.misses += 1,
            Event::Fetch { .. } | Event::WriteBack { .. } | Event::WriteThrough { .. } => {
                self.backside += 1
            }
            Event::Eviction { .. } => self.evictions += 1,
            Event::BufferEnqueue { .. }
            | Event::BufferMerge { .. }
            | Event::BufferStall { .. }
            | Event::BufferRetire { .. } => self.buffer += 1,
            Event::FaultInjected { .. }
            | Event::FaultResolved { .. }
            | Event::TransitFault { .. } => self.faults += 1,
            _ => {}
        }
    }
}

/// A probe that stores every event (tests and small traces only).
#[derive(Debug, Clone, Default)]
pub struct RecordingProbe {
    /// The events, in emission order.
    pub events: Vec<Event>,
}

impl Probe for RecordingProbe {
    #[inline]
    fn on_event(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

impl<P: Probe> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    #[inline]
    fn on_event(&mut self, event: &Event) {
        (**self).on_event(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_probe_is_disabled_at_compile_time() {
        assert!(!NullProbe::ENABLED);
        assert!(CountingProbe::ENABLED);
        assert!(!<Tee<NullProbe, NullProbe> as Probe>::ENABLED);
        assert!(<Tee<NullProbe, CountingProbe> as Probe>::ENABLED);
    }

    #[test]
    fn counting_probe_buckets_events() {
        let mut c = CountingProbe::default();
        c.on_event(&Event::Access {
            kind: AccessKind::Read,
            addr: 0,
            bytes: 4,
        });
        c.on_event(&Event::ReadHit { addr: 0 });
        c.on_event(&Event::WriteMiss {
            addr: 4,
            action: WriteMissAction::Validate,
        });
        c.on_event(&Event::Fetch {
            cause: FetchCause::Demand,
            addr: 0,
            bytes: 16,
        });
        c.on_event(&Event::Eviction {
            line_addr: 0,
            dirty_bytes: 8,
            flush: false,
        });
        c.on_event(&Event::BufferMerge { line_addr: 0 });
        c.on_event(&Event::TransitFault {
            addr: 0,
            bytes: 16,
            retried: true,
        });
        c.on_event(&Event::LineDirtied { line_addr: 0 });
        assert_eq!(c.events, 8);
        assert_eq!(c.accesses, 1);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.backside, 1);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.buffer, 1);
        assert_eq!(c.faults, 1);
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = Tee::new(CountingProbe::default(), RecordingProbe::default());
        tee.on_event(&Event::ReadHit { addr: 8 });
        assert_eq!(tee.a.events, 1);
        assert_eq!(tee.b.events, vec![Event::ReadHit { addr: 8 }]);
    }

    #[test]
    fn mutable_reference_probes_forward() {
        let mut c = CountingProbe::default();
        {
            let r = &mut c;
            r.on_event(&Event::WriteHit { addr: 0 });
        }
        assert_eq!(c.events, 1);
    }
}
