//! A minimal JSON value, writer, and parser.
//!
//! The workspace is hermetic (no external crates), so the observability
//! exporters carry their own JSON support. Only what the trace format
//! needs is implemented: objects preserve insertion order, integers up to
//! `u64::MAX` round-trip exactly, and parsing accepts any well-formed
//! JSON document.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, written without a decimal point. Kept apart
    /// from [`Json::Num`] so 64-bit addresses and counters round-trip
    /// exactly.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting [`Json::UInt`] and integral
    /// [`Json::Num`]s.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*v, &mut buf));
            }
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    // JSON has no NaN/Inf; emit null, as serde_json does.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset of the first
    /// malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Formats a u64 without allocating.
fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits.
    std::str::from_utf8(&buf[i..]).unwrap_or("0")
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX low half.
                    self.eat(b'\\', "expected low surrogate")?;
                    self.eat(b'u', "expected low surrogate")?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Num(-1.5),
            Json::Num(1e300),
            Json::Str("he\"ll\\o\n\tworld".to_string()),
            Json::Str("unicode: ünïcode 漢字 🎉".to_string()),
        ] {
            assert_eq!(round_trip(&v), v, "{v}");
        }
    }

    #[test]
    fn u64_max_is_exact() {
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        let back = Json::parse("18446744073709551615").unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::obj([
            ("ev", Json::Str("access".into())),
            ("addr", Json::UInt(0x1234)),
            ("list", Json::Arr(vec![Json::UInt(1), Json::Null])),
            ("nested", Json::obj([("ok", Json::Bool(true))])),
        ]);
        assert_eq!(round_trip(&v), v);
        assert_eq!(v.get("addr").and_then(Json::as_u64), Some(0x1234));
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("access"));
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("ok"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            v.get("list").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\ud83c\\udf89\" ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("A🎉"));
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in ["", "{", "[1,", "\"abc", "01x", "{\"a\":}", "nul", "1 2"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.to_string().contains("json error"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integral_f64_as_u64() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(42.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("x".into()).as_u64(), None);
    }
}
