//! JSONL serialization of the event stream.
//!
//! Each [`Event`] maps to one JSON object tagged by an `"ev"` field; a
//! [`JsonlWriter`] probe streams them one per line, and [`read_events`]
//! parses them back, which the round-trip tests and the offline trace
//! validator rely on.

use std::io::{self, BufRead, Write};

use crate::event::{
    AccessKind, Event, FaultOutcome, FetchCause, IoFaultKind, IoOp, Probe, WriteMissAction,
};
use crate::json::Json;

impl AccessKind {
    /// The stable string tag used in exported traces.
    pub fn tag(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "read" => Some(AccessKind::Read),
            "write" => Some(AccessKind::Write),
            _ => None,
        }
    }
}

impl FetchCause {
    /// The stable string tag used in exported traces.
    pub fn tag(self) -> &'static str {
        match self {
            FetchCause::Demand => "demand",
            FetchCause::Recovery => "recovery",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "demand" => Some(FetchCause::Demand),
            "recovery" => Some(FetchCause::Recovery),
            _ => None,
        }
    }
}

impl WriteMissAction {
    /// The stable string tag used in exported traces.
    pub fn tag(self) -> &'static str {
        match self {
            WriteMissAction::Fetch => "fetch",
            WriteMissAction::Validate => "validate",
            WriteMissAction::Around => "around",
            WriteMissAction::Invalidate => "invalidate",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "fetch" => Some(WriteMissAction::Fetch),
            "validate" => Some(WriteMissAction::Validate),
            "around" => Some(WriteMissAction::Around),
            "invalidate" => Some(WriteMissAction::Invalidate),
            _ => None,
        }
    }
}

impl FaultOutcome {
    /// The stable string tag used in exported traces.
    pub fn tag(self) -> &'static str {
        match self {
            FaultOutcome::Corrected => "corrected",
            FaultOutcome::Refetched => "refetched",
            FaultOutcome::DiscardedClean => "discarded_clean",
            FaultOutcome::DataLoss => "data_loss",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "corrected" => Some(FaultOutcome::Corrected),
            "refetched" => Some(FaultOutcome::Refetched),
            "discarded_clean" => Some(FaultOutcome::DiscardedClean),
            "data_loss" => Some(FaultOutcome::DataLoss),
            _ => None,
        }
    }
}

impl IoOp {
    /// The stable string tag used in exported traces.
    pub fn tag(self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Rename => "rename",
            IoOp::CreateDir => "create_dir",
            IoOp::Remove => "remove",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "read" => Some(IoOp::Read),
            "write" => Some(IoOp::Write),
            "rename" => Some(IoOp::Rename),
            "create_dir" => Some(IoOp::CreateDir),
            "remove" => Some(IoOp::Remove),
            _ => None,
        }
    }
}

impl IoFaultKind {
    /// The stable string tag used in exported traces.
    pub fn tag(self) -> &'static str {
        match self {
            IoFaultKind::Torn => "torn",
            IoFaultKind::ShortRead => "short_read",
            IoFaultKind::NoSpace => "no_space",
            IoFaultKind::Interrupted => "interrupted",
            IoFaultKind::RenameFailed => "rename_failed",
            IoFaultKind::FsyncLost => "fsync_lost",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "torn" => Some(IoFaultKind::Torn),
            "short_read" => Some(IoFaultKind::ShortRead),
            "no_space" => Some(IoFaultKind::NoSpace),
            "interrupted" => Some(IoFaultKind::Interrupted),
            "rename_failed" => Some(IoFaultKind::RenameFailed),
            "fsync_lost" => Some(IoFaultKind::FsyncLost),
            _ => None,
        }
    }
}

impl Event {
    /// The `"ev"` tag identifying this variant in exported traces.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::Access { .. } => "access",
            Event::ReadHit { .. } => "read_hit",
            Event::ReadMiss { .. } => "read_miss",
            Event::WriteHit { .. } => "write_hit",
            Event::WriteMiss { .. } => "write_miss",
            Event::Fetch { .. } => "fetch",
            Event::WriteBack { .. } => "write_back",
            Event::WriteThrough { .. } => "write_through",
            Event::Eviction { .. } => "eviction",
            Event::Invalidation { .. } => "invalidation",
            Event::LineDirtied { .. } => "line_dirtied",
            Event::WriteToDirty { .. } => "write_to_dirty",
            Event::LineAllocated { .. } => "line_allocated",
            Event::BufferEnqueue { .. } => "buf_enqueue",
            Event::BufferMerge { .. } => "buf_merge",
            Event::BufferStall { .. } => "buf_stall",
            Event::BufferRetire { .. } => "buf_retire",
            Event::FaultInjected { .. } => "fault_injected",
            Event::FaultResolved { .. } => "fault_resolved",
            Event::TransitFault { .. } => "transit_fault",
            Event::JobStart { .. } => "job_start",
            Event::JobRetry { .. } => "job_retry",
            Event::JobEnd { .. } => "job_end",
            Event::RequestAdmitted { .. } => "req_admitted",
            Event::RequestShed { .. } => "req_shed",
            Event::RequestDeadline { .. } => "req_deadline",
            Event::RequestDegraded { .. } => "req_degraded",
            Event::RequestCoalesced { .. } => "req_coalesced",
            Event::IoFault { .. } => "io_fault",
            Event::DrainBegin { .. } => "drain_begin",
            Event::DrainDone { .. } => "drain_done",
        }
    }

    /// All `"ev"` tags, in declaration order — the schema the offline
    /// validator checks traces against.
    pub const TAGS: [&'static str; 31] = [
        "access",
        "read_hit",
        "read_miss",
        "write_hit",
        "write_miss",
        "fetch",
        "write_back",
        "write_through",
        "eviction",
        "invalidation",
        "line_dirtied",
        "write_to_dirty",
        "line_allocated",
        "buf_enqueue",
        "buf_merge",
        "buf_stall",
        "buf_retire",
        "fault_injected",
        "fault_resolved",
        "transit_fault",
        "job_start",
        "job_retry",
        "job_end",
        "req_admitted",
        "req_shed",
        "req_deadline",
        "req_degraded",
        "req_coalesced",
        "io_fault",
        "drain_begin",
        "drain_done",
    ];

    /// Converts the event to its JSON object form (without a `seq`).
    pub fn to_json(&self) -> Json {
        let ev = ("ev", Json::Str(self.tag().to_string()));
        match *self {
            Event::Access { kind, addr, bytes } => Json::obj([
                ev,
                ("kind", Json::Str(kind.tag().to_string())),
                ("addr", Json::UInt(addr)),
                ("bytes", Json::UInt(u64::from(bytes))),
            ]),
            Event::ReadHit { addr } | Event::WriteHit { addr } => {
                Json::obj([ev, ("addr", Json::UInt(addr))])
            }
            Event::ReadMiss { addr, partial } => Json::obj([
                ev,
                ("addr", Json::UInt(addr)),
                ("partial", Json::Bool(partial)),
            ]),
            Event::WriteMiss { addr, action } => Json::obj([
                ev,
                ("addr", Json::UInt(addr)),
                ("action", Json::Str(action.tag().to_string())),
            ]),
            Event::Fetch { cause, addr, bytes } => Json::obj([
                ev,
                ("cause", Json::Str(cause.tag().to_string())),
                ("addr", Json::UInt(addr)),
                ("bytes", Json::UInt(u64::from(bytes))),
            ]),
            Event::WriteBack { addr, bytes } | Event::WriteThrough { addr, bytes } => Json::obj([
                ev,
                ("addr", Json::UInt(addr)),
                ("bytes", Json::UInt(u64::from(bytes))),
            ]),
            Event::Eviction {
                line_addr,
                dirty_bytes,
                flush,
            } => Json::obj([
                ev,
                ("line_addr", Json::UInt(line_addr)),
                ("dirty_bytes", Json::UInt(u64::from(dirty_bytes))),
                ("flush", Json::Bool(flush)),
            ]),
            Event::Invalidation { line_addr }
            | Event::LineDirtied { line_addr }
            | Event::WriteToDirty { line_addr }
            | Event::LineAllocated { line_addr }
            | Event::BufferMerge { line_addr } => {
                Json::obj([ev, ("line_addr", Json::UInt(line_addr))])
            }
            Event::BufferEnqueue {
                line_addr,
                occupancy,
            } => Json::obj([
                ev,
                ("line_addr", Json::UInt(line_addr)),
                ("occupancy", Json::UInt(u64::from(occupancy))),
            ]),
            Event::BufferStall { cycles } => Json::obj([ev, ("cycles", Json::UInt(cycles))]),
            Event::BufferRetire { occupancy } => {
                Json::obj([ev, ("occupancy", Json::UInt(u64::from(occupancy)))])
            }
            Event::FaultInjected {
                line_addr,
                byte,
                bit,
                silent,
            } => Json::obj([
                ev,
                ("line_addr", Json::UInt(line_addr)),
                ("byte", Json::UInt(u64::from(byte))),
                ("bit", Json::UInt(u64::from(bit))),
                ("silent", Json::Bool(silent)),
            ]),
            Event::FaultResolved {
                outcome,
                line_addr,
                dirty_bytes,
            } => Json::obj([
                ev,
                ("outcome", Json::Str(outcome.tag().to_string())),
                ("line_addr", Json::UInt(line_addr)),
                ("dirty_bytes", Json::UInt(u64::from(dirty_bytes))),
            ]),
            Event::TransitFault {
                addr,
                bytes,
                retried,
            } => Json::obj([
                ev,
                ("addr", Json::UInt(addr)),
                ("bytes", Json::UInt(u64::from(bytes))),
                ("retried", Json::Bool(retried)),
            ]),
            Event::JobStart { job, attempt } => Json::obj([
                ev,
                ("job", Json::UInt(u64::from(job))),
                ("attempt", Json::UInt(u64::from(attempt))),
            ]),
            Event::JobRetry {
                job,
                attempt,
                delay_ms,
            } => Json::obj([
                ev,
                ("job", Json::UInt(u64::from(job))),
                ("attempt", Json::UInt(u64::from(attempt))),
                ("delay_ms", Json::UInt(delay_ms)),
            ]),
            Event::JobEnd {
                job,
                attempt,
                ok,
                wall_ms,
                wait_ms,
            } => Json::obj([
                ev,
                ("job", Json::UInt(u64::from(job))),
                ("attempt", Json::UInt(u64::from(attempt))),
                ("ok", Json::Bool(ok)),
                ("wall_ms", Json::UInt(wall_ms)),
                ("wait_ms", Json::UInt(wait_ms)),
            ]),
            Event::RequestAdmitted { request, depth } => Json::obj([
                ev,
                ("request", Json::UInt(request)),
                ("depth", Json::UInt(u64::from(depth))),
            ]),
            Event::RequestShed {
                request,
                retry_after_ms,
            } => Json::obj([
                ev,
                ("request", Json::UInt(request)),
                ("retry_after_ms", Json::UInt(retry_after_ms)),
            ]),
            Event::RequestDeadline {
                request,
                deadline_ms,
            } => Json::obj([
                ev,
                ("request", Json::UInt(request)),
                ("deadline_ms", Json::UInt(deadline_ms)),
            ]),
            Event::RequestDegraded { request } => Json::obj([ev, ("request", Json::UInt(request))]),
            Event::RequestCoalesced { request, batch } => Json::obj([
                ev,
                ("request", Json::UInt(request)),
                ("batch", Json::UInt(u64::from(batch))),
            ]),
            Event::IoFault { op, fault, bytes } => Json::obj([
                ev,
                ("op", Json::Str(op.tag().to_string())),
                ("fault", Json::Str(fault.tag().to_string())),
                ("bytes", Json::UInt(bytes)),
            ]),
            Event::DrainBegin { queued } => {
                Json::obj([ev, ("queued", Json::UInt(u64::from(queued)))])
            }
            Event::DrainDone { shed, completed } => Json::obj([
                ev,
                ("shed", Json::UInt(u64::from(shed))),
                ("completed", Json::UInt(u64::from(completed))),
            ]),
        }
    }

    /// Reconstructs an event from its JSON object form.
    ///
    /// Returns `None` if the tag is unknown or a required field is
    /// missing or mistyped.
    pub fn from_json(json: &Json) -> Option<Event> {
        let u64_of = |key: &str| json.get(key).and_then(Json::as_u64);
        let u32_of = |key: &str| u64_of(key).and_then(|v| u32::try_from(v).ok());
        let bool_of = |key: &str| json.get(key).and_then(Json::as_bool);
        let str_of = |key: &str| json.get(key).and_then(Json::as_str);
        Some(match str_of("ev")? {
            "access" => Event::Access {
                kind: AccessKind::from_tag(str_of("kind")?)?,
                addr: u64_of("addr")?,
                bytes: u32_of("bytes")?,
            },
            "read_hit" => Event::ReadHit {
                addr: u64_of("addr")?,
            },
            "read_miss" => Event::ReadMiss {
                addr: u64_of("addr")?,
                partial: bool_of("partial")?,
            },
            "write_hit" => Event::WriteHit {
                addr: u64_of("addr")?,
            },
            "write_miss" => Event::WriteMiss {
                addr: u64_of("addr")?,
                action: WriteMissAction::from_tag(str_of("action")?)?,
            },
            "fetch" => Event::Fetch {
                cause: FetchCause::from_tag(str_of("cause")?)?,
                addr: u64_of("addr")?,
                bytes: u32_of("bytes")?,
            },
            "write_back" => Event::WriteBack {
                addr: u64_of("addr")?,
                bytes: u32_of("bytes")?,
            },
            "write_through" => Event::WriteThrough {
                addr: u64_of("addr")?,
                bytes: u32_of("bytes")?,
            },
            "eviction" => Event::Eviction {
                line_addr: u64_of("line_addr")?,
                dirty_bytes: u32_of("dirty_bytes")?,
                flush: bool_of("flush")?,
            },
            "invalidation" => Event::Invalidation {
                line_addr: u64_of("line_addr")?,
            },
            "line_dirtied" => Event::LineDirtied {
                line_addr: u64_of("line_addr")?,
            },
            "write_to_dirty" => Event::WriteToDirty {
                line_addr: u64_of("line_addr")?,
            },
            "line_allocated" => Event::LineAllocated {
                line_addr: u64_of("line_addr")?,
            },
            "buf_enqueue" => Event::BufferEnqueue {
                line_addr: u64_of("line_addr")?,
                occupancy: u32_of("occupancy")?,
            },
            "buf_merge" => Event::BufferMerge {
                line_addr: u64_of("line_addr")?,
            },
            "buf_stall" => Event::BufferStall {
                cycles: u64_of("cycles")?,
            },
            "buf_retire" => Event::BufferRetire {
                occupancy: u32_of("occupancy")?,
            },
            "fault_injected" => Event::FaultInjected {
                line_addr: u64_of("line_addr")?,
                byte: u32_of("byte")?,
                bit: u64_of("bit").and_then(|v| u8::try_from(v).ok())?,
                silent: bool_of("silent")?,
            },
            "fault_resolved" => Event::FaultResolved {
                outcome: FaultOutcome::from_tag(str_of("outcome")?)?,
                line_addr: u64_of("line_addr")?,
                dirty_bytes: u32_of("dirty_bytes")?,
            },
            "transit_fault" => Event::TransitFault {
                addr: u64_of("addr")?,
                bytes: u32_of("bytes")?,
                retried: bool_of("retried")?,
            },
            "job_start" => Event::JobStart {
                job: u32_of("job")?,
                attempt: u32_of("attempt")?,
            },
            "job_retry" => Event::JobRetry {
                job: u32_of("job")?,
                attempt: u32_of("attempt")?,
                delay_ms: u64_of("delay_ms")?,
            },
            "job_end" => Event::JobEnd {
                job: u32_of("job")?,
                attempt: u32_of("attempt")?,
                ok: bool_of("ok")?,
                wall_ms: u64_of("wall_ms")?,
                // Absent in streams written before queue-wait tracking.
                wait_ms: u64_of("wait_ms").unwrap_or(0),
            },
            "req_admitted" => Event::RequestAdmitted {
                request: u64_of("request")?,
                depth: u32_of("depth")?,
            },
            "req_shed" => Event::RequestShed {
                request: u64_of("request")?,
                retry_after_ms: u64_of("retry_after_ms")?,
            },
            "req_deadline" => Event::RequestDeadline {
                request: u64_of("request")?,
                deadline_ms: u64_of("deadline_ms")?,
            },
            "req_degraded" => Event::RequestDegraded {
                request: u64_of("request")?,
            },
            "req_coalesced" => Event::RequestCoalesced {
                request: u64_of("request")?,
                batch: u32_of("batch")?,
            },
            "io_fault" => Event::IoFault {
                op: IoOp::from_tag(str_of("op")?)?,
                fault: IoFaultKind::from_tag(str_of("fault")?)?,
                bytes: u64_of("bytes")?,
            },
            "drain_begin" => Event::DrainBegin {
                queued: u32_of("queued")?,
            },
            "drain_done" => Event::DrainDone {
                shed: u32_of("shed")?,
                completed: u32_of("completed")?,
            },
            _ => return None,
        })
    }
}

/// A probe that streams events as JSONL, one object per line, each
/// stamped with a monotonic `"seq"` number.
///
/// Long sweeps can emit hundreds of millions of events, so the writer
/// takes an optional cap: once `max_events` lines are written the rest
/// are counted in [`JsonlWriter::dropped`] instead of written. The
/// windowed sampler is never capped, so reconciliation is unaffected.
pub struct JsonlWriter<W: Write> {
    out: W,
    /// Next sequence number (equals lines written so far).
    seq: u64,
    /// Stop writing after this many events (`None` = unbounded).
    max_events: Option<u64>,
    /// Events discarded after the cap was hit.
    dropped: u64,
    /// Reusable line buffer.
    buf: String,
    /// First I/O error encountered, if any.
    error: Option<io::Error>,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a writer. `max_events = None` writes every event.
    pub fn new(out: W, max_events: Option<u64>) -> Self {
        JsonlWriter {
            out,
            seq: 0,
            max_events,
            dropped: 0,
            buf: String::with_capacity(128),
            error: None,
        }
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.seq
    }

    /// Events discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flushes and returns the inner writer, or the first I/O error hit
    /// while streaming.
    ///
    /// # Errors
    ///
    /// Propagates the deferred write error (probes can't return errors
    /// from hot loops, so failures are surfaced here).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Probe for JsonlWriter<W> {
    #[inline]
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        if let Some(cap) = self.max_events {
            if self.seq >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.buf.clear();
        self.buf.push_str("{\"seq\":");
        Json::UInt(self.seq).write(&mut self.buf);
        self.buf.push(',');
        // Splice the event object's fields into the seq-bearing object.
        let mut body = String::with_capacity(96);
        event.to_json().write(&mut body);
        self.buf.push_str(&body[1..]);
        self.buf.push('\n');
        if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.seq += 1;
    }
}

/// A JSONL document read back tolerantly: the valid-prefix lines, plus
/// whether the file lost its final line to a crash mid-write.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonlDocument {
    /// The parsed lines, in file order.
    pub lines: Vec<Json>,
    /// `true` when the last line of the file failed to parse — the
    /// signature of a process killed mid-write. The valid prefix is
    /// still returned in `lines`.
    pub truncated: bool,
}

/// Reads a JSONL file, tolerating a partially-written final line.
///
/// Crash-safe consumers (the experiment runner's checkpoint journal,
/// `validate_trace`) must survive a SIGKILL landing mid-write: the only
/// damage an append-style writer can leave is an incomplete last line,
/// which is reported via [`JsonlDocument::truncated`] instead of an
/// error. A parse failure on any *earlier* line is real corruption and
/// still fails.
///
/// # Errors
///
/// Fails on I/O errors or malformed JSON before the final line; the
/// error message names the offending line number.
pub fn read_jsonl_tolerant(path: &std::path::Path) -> io::Result<JsonlDocument> {
    let text = std::fs::read_to_string(path)?;
    parse_jsonl_tolerant(&text, &path.display().to_string())
}

/// The pure parsing half of [`read_jsonl_tolerant`]: same torn-final-line
/// tolerance, but over text already in memory. `origin` names the source
/// in error messages (usually a path). This is the seam the chaos I/O
/// layer threads alternative storage backends through.
///
/// # Errors
///
/// Fails on malformed JSON before the final line.
pub fn parse_jsonl_tolerant(text: &str, origin: &str) -> io::Result<JsonlDocument> {
    let numbered: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut lines = Vec::with_capacity(numbered.len());
    let last = numbered.len().saturating_sub(1);
    for (i, (lineno, line)) in numbered.iter().enumerate() {
        match Json::parse(line) {
            Ok(json) => lines.push(json),
            Err(_) if i == last => {
                return Ok(JsonlDocument {
                    lines,
                    truncated: true,
                });
            }
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{origin}: line {}: {e}", lineno + 1),
                ));
            }
        }
    }
    Ok(JsonlDocument {
        lines,
        truncated: false,
    })
}

/// Renders JSONL lines to the exact text [`write_jsonl_atomic`] persists
/// — one compact JSON object per line, each newline-terminated.
pub fn render_jsonl(lines: &[Json]) -> String {
    let mut text = String::new();
    for line in lines {
        line.write(&mut text);
        text.push('\n');
    }
    text
}

/// Writes a JSONL file atomically: the lines go to a `.tmp` sibling
/// first, which is then renamed over `path`, so readers (and crashed
/// writers) only ever observe the old complete file or the new one.
///
/// # Errors
///
/// Fails on I/O errors creating, writing, or renaming the file.
pub fn write_jsonl_atomic(path: &std::path::Path, lines: &[Json]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, render_jsonl(lines))?;
    std::fs::rename(&tmp, path)
}

/// Reads a JSONL event stream back, in order.
///
/// # Errors
///
/// Fails on I/O errors, malformed JSON, or lines that don't decode to a
/// known event; the error message names the offending line number.
pub fn read_events<R: BufRead>(reader: R) -> io::Result<Vec<Event>> {
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", idx + 1))
        })?;
        let event = Event::from_json(&json).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: not a valid event object", idx + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Event> {
        vec![
            Event::Access {
                kind: AccessKind::Write,
                addr: 0xdead_beef_0000,
                bytes: 4,
            },
            Event::ReadHit { addr: 16 },
            Event::ReadMiss {
                addr: 32,
                partial: true,
            },
            Event::WriteHit { addr: 48 },
            Event::WriteMiss {
                addr: 64,
                action: WriteMissAction::Around,
            },
            Event::Fetch {
                cause: FetchCause::Recovery,
                addr: 64,
                bytes: 16,
            },
            Event::WriteBack { addr: 80, bytes: 8 },
            Event::WriteThrough { addr: 96, bytes: 4 },
            Event::Eviction {
                line_addr: 112,
                dirty_bytes: 16,
                flush: true,
            },
            Event::Invalidation { line_addr: 128 },
            Event::LineDirtied { line_addr: 144 },
            Event::WriteToDirty { line_addr: 160 },
            Event::LineAllocated { line_addr: 176 },
            Event::BufferEnqueue {
                line_addr: 192,
                occupancy: 3,
            },
            Event::BufferMerge { line_addr: 192 },
            Event::BufferStall { cycles: 7 },
            Event::BufferRetire { occupancy: 2 },
            Event::FaultInjected {
                line_addr: 208,
                byte: 5,
                bit: 3,
                silent: false,
            },
            Event::FaultResolved {
                outcome: FaultOutcome::DataLoss,
                line_addr: 208,
                dirty_bytes: 12,
            },
            Event::TransitFault {
                addr: 224,
                bytes: 16,
                retried: false,
            },
            Event::JobStart { job: 3, attempt: 1 },
            Event::JobRetry {
                job: 3,
                attempt: 1,
                delay_ms: 250,
            },
            Event::JobEnd {
                job: 3,
                attempt: 2,
                ok: true,
                wall_ms: 1234,
                wait_ms: 7,
            },
            Event::RequestAdmitted {
                request: 7,
                depth: 4,
            },
            Event::RequestShed {
                request: 8,
                retry_after_ms: 50,
            },
            Event::RequestDeadline {
                request: 9,
                deadline_ms: 500,
            },
            Event::RequestDegraded { request: 10 },
            Event::RequestCoalesced {
                request: 11,
                batch: 6,
            },
            Event::IoFault {
                op: IoOp::Write,
                fault: IoFaultKind::Torn,
                bytes: 37,
            },
            Event::DrainBegin { queued: 5 },
            Event::DrainDone {
                shed: 5,
                completed: 2,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in all_variants() {
            let json = event.to_json();
            assert_eq!(Event::from_json(&json), Some(event), "{event:?}");
        }
    }

    #[test]
    fn tags_match_the_schema_list() {
        let variants = all_variants();
        assert_eq!(variants.len(), Event::TAGS.len());
        for (event, tag) in variants.iter().zip(Event::TAGS) {
            assert_eq!(event.tag(), tag);
        }
    }

    #[test]
    fn jsonl_round_trips_with_sequence_numbers() {
        let events = all_variants();
        let mut writer = JsonlWriter::new(Vec::new(), None);
        for event in &events {
            writer.on_event(event);
        }
        assert_eq!(writer.written(), events.len() as u64);
        assert_eq!(writer.dropped(), 0);
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // Every line carries its seq in order.
        for (i, line) in text.lines().enumerate() {
            let json = Json::parse(line).unwrap();
            assert_eq!(json.get("seq").and_then(Json::as_u64), Some(i as u64));
        }
        let back = read_events(text.as_bytes()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn cap_drops_overflow_events() {
        let mut writer = JsonlWriter::new(Vec::new(), Some(3));
        for event in all_variants() {
            writer.on_event(&event);
        }
        assert_eq!(writer.written(), 3);
        assert_eq!(writer.dropped(), all_variants().len() as u64 - 3);
        let bytes = writer.finish().unwrap();
        let back = read_events(&bytes[..]).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn tolerant_reader_accepts_a_torn_final_line() {
        let dir = std::env::temp_dir().join(format!("cwp-jsonl-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");

        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"c\":3}").unwrap();
        let doc = read_jsonl_tolerant(&path).unwrap();
        assert_eq!(doc.lines.len(), 3, "an unterminated but valid line is kept");
        assert!(!doc.truncated);

        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"c\":").unwrap();
        let doc = read_jsonl_tolerant(&path).unwrap();
        assert_eq!(doc.lines.len(), 2, "the torn line is dropped");
        assert!(doc.truncated);
        assert_eq!(doc.lines[1].get("b").and_then(Json::as_u64), Some(2));

        std::fs::write(&path, "{\"a\":}\n{\"b\":2}\n").unwrap();
        let err = read_jsonl_tolerant(&path).unwrap_err();
        assert!(
            err.to_string().contains("line 1"),
            "mid-file corruption is a real error: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_writer_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("cwp-jsonl-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let first = vec![Json::obj([("job", Json::Str("fig01".into()))])];
        write_jsonl_atomic(&path, &first).unwrap();
        let second = vec![
            first[0].clone(),
            Json::obj([("job", Json::Str("fig02".into()))]),
        ];
        write_jsonl_atomic(&path, &second).unwrap();
        let doc = read_jsonl_tolerant(&path).unwrap();
        assert_eq!(doc.lines, second);
        assert!(!doc.truncated);
        assert!(
            !path.with_file_name("journal.jsonl.tmp").exists(),
            "the tmp file is renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_rejects_malformed_lines() {
        assert!(read_events("not json\n".as_bytes()).is_err());
        assert!(read_events("{\"ev\":\"martian\"}\n".as_bytes()).is_err());
        assert!(
            read_events("{\"ev\":\"read_hit\"}\n".as_bytes()).is_err(),
            "missing addr"
        );
        // Blank lines are tolerated.
        let ok = read_events("\n{\"ev\":\"read_hit\",\"addr\":4}\n\n".as_bytes()).unwrap();
        assert_eq!(ok, vec![Event::ReadHit { addr: 4 }]);
    }
}
