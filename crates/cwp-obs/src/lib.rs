//! Observability for the write-policy simulator.
//!
//! Every figure in the paper is an end-of-run aggregate, but the
//! phenomena behind them — write-buffer stall bursts, dirty-line
//! accumulation before flush-stop, the miss-rate spread across
//! write-miss policies — are time-local. This crate provides the
//! interval-resolved view:
//!
//! - [`Probe`] + [`Event`]: a typed event stream emitted by the
//!   instrumented crates (`cwp-cache`, `cwp-buffers`, `cwp-mem`). The
//!   default [`NullProbe`] has `ENABLED = false`, so uninstrumented
//!   builds compile to exactly the pre-instrumentation code — the
//!   zero-cost contract checked by the `cwp-bench` probe benchmark.
//! - [`WindowSampler`]: per-N-accesses [`WindowRow`] snapshots (miss
//!   rate, back-side transactions/bytes, buffer occupancy, dirty
//!   fraction) with a CSV exporter. Window sums reconcile exactly with
//!   end-of-run `CacheStats` totals.
//! - [`JsonlWriter`] / [`read_events`]: JSONL export of the raw event
//!   stream and the reader that round-trips it.
//! - [`RunManifest`]: provenance (config, workload, seed, git rev,
//!   wall time, totals) written next to every exported trace.
//! - [`log`]: the `CWP_LOG` / `--quiet` logging convention shared by
//!   the figure and experiment binaries.
//! - [`metrics`]: live telemetry — lock-free sharded [`Counter`]s,
//!   [`Gauge`]s, log2-bucketed latency [`Histogram`]s with quantile
//!   estimation, per-request [`Span`] stage timing, and a [`Registry`]
//!   that renders one coherent JSON snapshot for the `metrics` wire
//!   request and the periodic snapshot file.
//!
//! The crate depends on nothing (not even other workspace crates), so
//! every layer of the simulator can emit events into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod jsonl;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod sampler;
pub mod schema;

pub use event::{
    AccessKind, CountingProbe, Event, FaultOutcome, FetchCause, IoFaultKind, IoOp, NullProbe,
    Probe, RecordingProbe, Tee, WriteMissAction,
};
pub use json::{Json, JsonError};
pub use jsonl::{
    parse_jsonl_tolerant, read_events, read_jsonl_tolerant, render_jsonl, write_jsonl_atomic,
    JsonlDocument, JsonlWriter,
};
pub use log::{enabled, level, set_level, Level};
pub use manifest::{git_revision, RunManifest, MANIFEST_OUTCOMES};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Span};
pub use sampler::{WindowRow, WindowSampler, CSV_COLUMNS};
