//! One logging convention for the figure and experiment binaries.
//!
//! The level comes from the `CWP_LOG` environment variable
//! (`quiet`/`error`/`warn`/`info`/`debug`, default `info`), or from
//! [`set_level`] when a binary takes a `--quiet` flag. Messages go to
//! stderr via the [`obs_error!`](crate::obs_error),
//! [`obs_warn!`](crate::obs_warn), [`obs_info!`](crate::obs_info), and
//! [`obs_debug!`](crate::obs_debug) macros, keeping stdout clean for
//! the actual figure output.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered from silent to chatty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing at all (the `--quiet` flag).
    Quiet = 0,
    /// Only errors.
    Error = 1,
    /// Errors and warnings.
    Warn = 2,
    /// Progress messages (the default).
    Info = 3,
    /// Everything.
    Debug = 4,
}

impl Level {
    /// Parses a `CWP_LOG` value; unknown strings yield `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "quiet" | "off" | "none" | "0" => Some(Level::Quiet),
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "trace" | "4" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 0 = uninitialized; otherwise `Level as u8 + 1`.
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn decode(raw: u8) -> Option<Level> {
    match raw {
        1 => Some(Level::Quiet),
        2 => Some(Level::Error),
        3 => Some(Level::Warn),
        4 => Some(Level::Info),
        5 => Some(Level::Debug),
        _ => None,
    }
}

/// The active log level, initializing from `CWP_LOG` on first use.
pub fn level() -> Level {
    if let Some(l) = decode(LEVEL.load(Ordering::Relaxed)) {
        return l;
    }
    let from_env = std::env::var("CWP_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    // A racing set_level wins; that is fine — both stores are valid.
    let _ = LEVEL.compare_exchange(0, from_env as u8 + 1, Ordering::Relaxed, Ordering::Relaxed);
    decode(LEVEL.load(Ordering::Relaxed)).unwrap_or(Level::Info)
}

/// Overrides the level (e.g. a `--quiet` flag beats `CWP_LOG`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8 + 1, Ordering::Relaxed);
}

/// Whether messages at `at` are currently emitted.
pub fn enabled(at: Level) -> bool {
    at != Level::Quiet && at <= level()
}

/// Logs at error level (stderr).
#[macro_export]
macro_rules! obs_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            eprintln!("error: {}", format_args!($($arg)*));
        }
    };
}

/// Logs at warn level (stderr).
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            eprintln!("warn: {}", format_args!($($arg)*));
        }
    };
}

/// Logs at info level (stderr) — per-experiment progress.
#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Logs at debug level (stderr).
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            eprintln!("debug: {}", format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("quiet"), Some(Level::Quiet));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("2"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Quiet < Level::Error);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_gates_enabled() {
        // Tests share the process-wide level; exercise transitions
        // explicitly rather than relying on the environment.
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Quiet);
        assert!(!enabled(Level::Error));
        // Quiet messages themselves are never "emitted".
        set_level(Level::Debug);
        assert!(!enabled(Level::Quiet));
        assert!(enabled(Level::Debug));
        set_level(Level::Info);
    }

    #[test]
    fn macros_compile_at_all_levels() {
        set_level(Level::Quiet);
        crate::obs_error!("e {}", 1);
        crate::obs_warn!("w");
        crate::obs_info!("i");
        crate::obs_debug!("d");
        set_level(Level::Info);
    }
}
