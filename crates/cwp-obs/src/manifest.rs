//! Run provenance: the manifest written next to every exported trace.
//!
//! A figure is only as trustworthy as the run that produced it. The
//! manifest records enough to re-derive or re-run the experiment — the
//! cache configuration, workload, scale, seed, git revision, wall time,
//! and the end-of-run counter totals — and a `reconciled` flag asserting
//! that the windowed sampler's per-window sums matched those totals.

use std::fs;
use std::path::Path;

use crate::json::Json;

/// Provenance for one traced simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Experiment id (e.g. `fig13`) the run belongs to.
    pub experiment: String,
    /// Workload name (e.g. `ccom`).
    pub workload: String,
    /// Scale label (e.g. `test`, `quick`, `paper`).
    pub scale: String,
    /// The cache configuration, in its `Display` form.
    pub config: String,
    /// Fault-injection seed (0 when injection is off).
    pub seed: u64,
    /// Git revision of the working tree, if resolvable.
    pub git_rev: Option<String>,
    /// Wall-clock duration of the simulation, in milliseconds.
    pub wall_ms: u64,
    /// Sampler window size, in accesses.
    pub window: u64,
    /// Windows written to the CSV.
    pub windows: u64,
    /// JSONL events written.
    pub events_written: u64,
    /// JSONL events dropped by the `max_events` cap.
    pub events_dropped: u64,
    /// Selected end-of-run totals, as (name, value) pairs.
    pub totals: Vec<(String, u64)>,
    /// `true` when the sampler's window sums matched the run's
    /// `CacheStats`/`Traffic` totals exactly.
    pub reconciled: bool,
    /// How the run ended, when written by a supervised runner: one of
    /// [`MANIFEST_OUTCOMES`]. `None` on manifests from before the
    /// runner existed.
    pub outcome: Option<String>,
}

/// The outcome tags a manifest's `outcome` field may carry.
pub const MANIFEST_OUTCOMES: [&str; 4] = ["ok", "failed", "timed_out", "skipped"];

impl RunManifest {
    /// Serializes the manifest as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("experiment", Json::Str(self.experiment.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("scale", Json::Str(self.scale.clone())),
            ("config", Json::Str(self.config.clone())),
            ("seed", Json::UInt(self.seed)),
            (
                "git_rev",
                match &self.git_rev {
                    Some(rev) => Json::Str(rev.clone()),
                    None => Json::Null,
                },
            ),
            ("wall_ms", Json::UInt(self.wall_ms)),
            ("window", Json::UInt(self.window)),
            ("windows", Json::UInt(self.windows)),
            ("events_written", Json::UInt(self.events_written)),
            ("events_dropped", Json::UInt(self.events_dropped)),
            (
                "totals",
                Json::Obj(
                    self.totals
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            ("reconciled", Json::Bool(self.reconciled)),
            (
                "outcome",
                match &self.outcome {
                    Some(tag) => Json::Str(tag.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Reconstructs a manifest from its JSON form.
    pub fn from_json(json: &Json) -> Option<RunManifest> {
        let str_of = |key: &str| json.get(key).and_then(Json::as_str).map(str::to_string);
        let u64_of = |key: &str| json.get(key).and_then(Json::as_u64);
        let totals = match json.get("totals")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(RunManifest {
            experiment: str_of("experiment")?,
            workload: str_of("workload")?,
            scale: str_of("scale")?,
            config: str_of("config")?,
            seed: u64_of("seed")?,
            git_rev: str_of("git_rev"),
            wall_ms: u64_of("wall_ms")?,
            window: u64_of("window")?,
            windows: u64_of("windows")?,
            events_written: u64_of("events_written")?,
            events_dropped: u64_of("events_dropped")?,
            totals,
            reconciled: json.get("reconciled").and_then(Json::as_bool)?,
            outcome: str_of("outcome"),
        })
    }
}

/// Resolves the current git revision by reading `.git/HEAD` directly
/// (no subprocess — traced runs must work in minimal environments).
///
/// Walks up from `start` to the first directory containing `.git`,
/// then follows one level of `ref:` indirection. Returns `None` when
/// not in a git checkout or the ref is unreadable.
pub fn git_revision(start: &Path) -> Option<String> {
    let mut dir = Some(start);
    let git = loop {
        let d = dir?;
        let candidate = d.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        dir = d.parent();
    };
    let head = fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref: ") {
        if let Ok(rev) = fs::read_to_string(git.join(reference)) {
            return Some(rev.trim().to_string());
        }
        // The ref may be packed.
        let packed = fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(rev) = line.strip_suffix(reference) {
                return Some(rev.trim().to_string());
            }
        }
        None
    } else if head.len() >= 40 {
        // Detached HEAD holds the revision itself.
        Some(head.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            experiment: "fig13".to_string(),
            workload: "ccom".to_string(),
            scale: "test".to_string(),
            config: "8KB/16B/1-way write-back fetch-on-write".to_string(),
            seed: 42,
            git_rev: Some("abc123".to_string()),
            wall_ms: 17,
            window: 1000,
            windows: 12,
            events_written: 34567,
            events_dropped: 0,
            totals: vec![("reads".to_string(), 8000), ("writes".to_string(), 2000)],
            reconciled: true,
            outcome: Some("ok".to_string()),
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let text = m.to_json().to_string();
        let back = RunManifest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn absent_git_rev_round_trips_as_null() {
        let mut m = sample();
        m.git_rev = None;
        let json = m.to_json();
        assert_eq!(json.get("git_rev"), Some(&Json::Null));
        assert_eq!(RunManifest::from_json(&json).unwrap().git_rev, None);
    }

    #[test]
    fn outcome_is_optional_for_pre_runner_manifests() {
        let mut m = sample();
        m.outcome = None;
        let json = m.to_json();
        assert_eq!(json.get("outcome"), Some(&Json::Null));
        assert_eq!(RunManifest::from_json(&json).unwrap().outcome, None);
        // A manifest written before the field existed parses too.
        let Json::Obj(mut pairs) = json else {
            panic!("manifest json is an object")
        };
        pairs.retain(|(k, _)| k != "outcome");
        let old = RunManifest::from_json(&Json::Obj(pairs)).unwrap();
        assert_eq!(old.outcome, None);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let json = Json::obj([("experiment", Json::Str("fig1".into()))]);
        assert!(RunManifest::from_json(&json).is_none());
    }

    #[test]
    fn git_revision_resolves_this_repository() {
        // The test runs inside the repo checkout; the revision must be a
        // 40-hex-digit sha (or None in exotic environments, but the repo
        // guarantees a .git directory).
        let cwd = std::env::current_dir().unwrap();
        if let Some(rev) = git_revision(&cwd) {
            assert!(rev.len() >= 40, "unexpected revision {rev:?}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn git_revision_outside_a_repo_is_none() {
        assert_eq!(git_revision(Path::new("/")), None);
    }
}
