//! Live telemetry primitives: counters, gauges, histograms, spans.
//!
//! Everything here is std-only and lock-free on the hot path:
//!
//! - [`Counter`]: a monotonically increasing sum, sharded across
//!   cache-line-padded atomics so concurrent writers on different
//!   threads do not bounce one cache line.
//! - [`Gauge`]: a signed instantaneous level (queue depth, in-flight
//!   count). Levels are read-modify-write from many threads, so a
//!   single atomic is used — gauges are updated far less often than
//!   counters and need coherent `add`/`sub`.
//! - [`Histogram`]: a fixed 64-bucket log2-bucketed latency histogram
//!   with exact `count`/`sum`/`min`/`max` and estimated quantiles.
//!   Recording is a handful of relaxed atomic ops; snapshots are cheap
//!   copies that merge associatively across threads, shards, or
//!   processes.
//! - [`Span`]: a per-request causal timer that accumulates named stage
//!   durations (admit → queue → coalesce → simulate → memo → respond)
//!   so a response can carry its own timing breakdown.
//! - [`Registry`]: named instrument directory rendering one atomic
//!   JSON snapshot of every registered instrument.
//!
//! The registry renders to [`Json`] so the snapshot can ride the JSONL
//! wire protocol or be written atomically to disk and re-parsed by
//! `cwp-top` without any external dependency.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Number of buckets in a [`Histogram`] (one per power of two of a
/// `u64`, plus a dedicated zero bucket; the top bucket saturates).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Counter shard count. Eight single-writer-ish cache lines is enough
/// to keep a worker pool from serializing on one line while staying
/// cheap to sum at snapshot time.
const COUNTER_SHARDS: usize = 8;

/// One cache-line-padded atomic cell.
#[derive(Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Picks a stable per-thread shard index. Threads are assigned shards
/// round-robin on first use, so a fixed worker pool spreads evenly.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|shard| *shard)
}

/// A monotonically increasing counter, sharded to avoid write
/// contention. Reads sum the shards; with relaxed ordering the sum is
/// a consistent point-in-time lower bound (each shard's value is
/// exact, so totals reconcile once writers quiesce).
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous level (stored as a `u64` two's-complement
/// image so the whole module stays on `AtomicU64`).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v as u64, Ordering::Relaxed);
    }

    /// Moves the gauge up by `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Moves the gauge down by `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n as u64, Ordering::Relaxed);
    }

    /// The current level.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed) as i64
    }
}

/// The bucket a value lands in: bucket 0 holds zero, bucket `i >= 1`
/// holds `[2^(i-1), 2^i - 1]`, and the top bucket saturates (every
/// value at or above `2^62` lands in bucket 63).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive `[low, high]` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        i if i >= HISTOGRAM_BUCKETS - 1 => (1u64 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A log2-bucketed histogram with exact count/sum/min/max. Values are
/// whatever unit the caller picks (the service records microseconds).
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in integer microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values (saturating).
    pub sum: u64,
    /// Exact minimum observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn new() -> Self {
        HistogramSnapshot::default()
    }

    /// Records one observation into the owned snapshot (used by
    /// single-threaded collectors like `cwp-load`).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Merging is associative and
    /// commutative, with [`HistogramSnapshot::new`] as the identity.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by rank-walking the
    /// buckets and interpolating linearly inside the landing bucket,
    /// clamped to the exact observed `[min, max]`. Estimates are
    /// monotone in `q`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            if seen + bucket >= rank {
                let (low, high) = bucket_bounds(index);
                let position = (rank - seen) as f64 / bucket as f64;
                let estimate = low as f64 + (high - low) as f64 * position;
                // Clamp to the bucket first (f64 rounding can land one
                // past `high` for huge buckets), then to the exact
                // observed range.
                return (estimate as u64).clamp(low, high).clamp(self.min, self.max);
            }
            seen += bucket;
        }
        self.max
    }

    /// Convenience quartet: `(p50, p90, p99, p99.9)`.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Renders the snapshot as JSON. Buckets are written sparsely as
    /// `[index, count]` pairs to keep wire lines small; `min` is
    /// omitted-as-null when the histogram is empty.
    pub fn to_json(&self) -> Json {
        let (p50, p90, p99, p999) = self.percentiles();
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(index, count)| Json::Arr(vec![Json::UInt(index as u64), Json::UInt(*count)]))
            .collect();
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            (
                "min",
                if self.count == 0 {
                    Json::Null
                } else {
                    Json::UInt(self.min)
                },
            ),
            ("max", Json::UInt(self.max)),
            ("p50", Json::UInt(p50)),
            ("p90", Json::UInt(p90)),
            ("p99", Json::UInt(p99)),
            ("p999", Json::UInt(p999)),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Parses a snapshot previously written by
    /// [`HistogramSnapshot::to_json`]. The derived percentile fields
    /// are ignored (they are recomputed from the buckets on demand).
    pub fn from_json(json: &Json) -> Option<HistogramSnapshot> {
        let mut snapshot = HistogramSnapshot {
            count: json.get("count")?.as_u64()?,
            sum: json.get("sum")?.as_u64()?,
            min: match json.get("min")? {
                Json::Null => u64::MAX,
                value => value.as_u64()?,
            },
            max: json.get("max")?.as_u64()?,
            ..HistogramSnapshot::default()
        };
        for pair in json.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let index = pair[0].as_u64()? as usize;
            if index >= HISTOGRAM_BUCKETS {
                return None;
            }
            snapshot.buckets[index] = pair[1].as_u64()?;
        }
        Some(snapshot)
    }
}

/// A per-request causal timer. A span is created when a request enters
/// the system and carries the server-wide request id; `mark` closes
/// the current stage and opens the next, accumulating repeated stages
/// (a retried request passes through `queue` more than once).
#[derive(Debug, Clone)]
pub struct Span {
    id: u64,
    start: Instant,
    last: Instant,
    stages: Vec<(&'static str, Duration)>,
}

impl Span {
    /// Starts a span for request `id`; the first stage begins now.
    pub fn begin(id: u64) -> Span {
        let now = Instant::now();
        Span {
            id,
            start: now,
            last: now,
            stages: Vec::with_capacity(4),
        }
    }

    /// The causal request id this span follows.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the stage that began at the previous mark (or at
    /// [`Span::begin`]) under `stage`, and returns its duration.
    /// Repeated stage names accumulate.
    pub fn mark(&mut self, stage: &'static str) -> Duration {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last);
        self.last = now;
        match self.stages.iter_mut().find(|(name, _)| *name == stage) {
            Some((_, total)) => *total += elapsed,
            None => self.stages.push((stage, elapsed)),
        }
        elapsed
    }

    /// Total wall time since [`Span::begin`].
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }

    /// The accumulated `(stage, duration)` pairs, in first-marked order.
    pub fn stages(&self) -> &[(&'static str, Duration)] {
        &self.stages
    }

    /// The stage breakdown in integer microseconds, in first-marked
    /// order — the shape carried on wire responses.
    pub fn breakdown_us(&self) -> Vec<(String, u64)> {
        self.stages
            .iter()
            .map(|(name, duration)| {
                (
                    (*name).to_string(),
                    duration.as_micros().min(u128::from(u64::MAX)) as u64,
                )
            })
            .collect()
    }
}

/// A named directory of instruments. Registration takes a lock;
/// recording through the returned `Arc` handles never does. Snapshot
/// output is sorted by name so it is stable across registration order.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn len<T>(m: &Mutex<Vec<T>>) -> usize {
            m.lock().map(|v| v.len()).unwrap_or(0)
        }
        f.debug_struct("Registry")
            .field("counters", &len(&self.counters))
            .field("gauges", &len(&self.gauges))
            .field("histograms", &len(&self.histograms))
            .finish()
    }
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut list = list.lock().expect("registry lock");
    if let Some((_, existing)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(existing);
    }
    let made = Arc::new(T::default());
    list.push((name.to_string(), Arc::clone(&made)));
    made
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// One coherent JSON snapshot of every registered instrument:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn snapshot(&self) -> Json {
        fn sorted<T, F: Fn(&T) -> Json>(list: &Mutex<Vec<(String, Arc<T>)>>, render: F) -> Json {
            let list = list.lock().expect("registry lock");
            let mut pairs: Vec<(String, Json)> = list
                .iter()
                .map(|(name, instrument)| (name.clone(), render(instrument)))
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(pairs)
        }
        Json::obj([
            (
                "counters",
                sorted(&self.counters, |c: &Counter| Json::UInt(c.value())),
            ),
            (
                "gauges",
                sorted(&self.gauges, |g: &Gauge| {
                    let v = g.value();
                    if v >= 0 {
                        Json::UInt(v as u64)
                    } else {
                        Json::Num(v as f64)
                    }
                }),
            ),
            (
                "histograms",
                sorted(&self.histograms, |h: &Histogram| h.snapshot().to_json()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards_and_threads() {
        let counter = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.value(), 4000);
    }

    #[test]
    fn gauge_tracks_signed_levels() {
        let gauge = Gauge::new();
        gauge.add(5);
        gauge.sub(8);
        assert_eq!(gauge.value(), -3);
        gauge.set(42);
        assert_eq!(gauge.value(), 42);
    }

    #[test]
    fn bucket_index_covers_the_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's bounds map back to the bucket itself.
        for index in 0..HISTOGRAM_BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(bucket_index(low), index, "low bound of bucket {index}");
            assert_eq!(bucket_index(high), index, "high bound of bucket {index}");
        }
    }

    #[test]
    fn histogram_tracks_exact_count_sum_min_max() {
        let hist = Histogram::new();
        for value in [3u64, 100, 7, 0, 250_000] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 250_110);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 250_000);
    }

    #[test]
    fn quantiles_land_inside_the_observed_range() {
        let mut snap = HistogramSnapshot::new();
        for value in 1..=1000u64 {
            snap.record(value);
        }
        let (p50, p90, p99, p999) = snap.percentiles();
        assert!(p50 >= snap.min && p50 <= snap.max);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= snap.max);
        // p50 of 1..=1000 lands in bucket [512,1023]; the estimate is
        // coarse but must be within a bucket of the true median.
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut snap = HistogramSnapshot::new();
        for value in [0u64, 1, 17, 900, u64::MAX] {
            snap.record(value);
        }
        let back = HistogramSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // An empty snapshot round-trips too (min is null on the wire).
        let empty = HistogramSnapshot::new();
        assert_eq!(
            HistogramSnapshot::from_json(&empty.to_json()).unwrap(),
            empty
        );
    }

    #[test]
    fn span_accumulates_repeated_stages() {
        let mut span = Span::begin(7);
        span.mark("queue");
        span.mark("sim");
        span.mark("queue"); // a retry waits in the queue again
        assert_eq!(span.id(), 7);
        let stages = span.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "queue");
        assert_eq!(stages[1].0, "sim");
        let breakdown = span.breakdown_us();
        assert_eq!(breakdown.len(), 2);
        assert!(span.total() >= stages[0].1 + stages[1].1);
    }

    #[test]
    fn registry_returns_the_same_instrument_for_a_name() {
        let registry = Registry::new();
        registry.counter("served").add(3);
        registry.counter("served").add(4);
        assert_eq!(registry.counter("served").value(), 7);
        registry.gauge("depth").set(9);
        registry.histogram("lat").record(128);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("counters").unwrap().get("served").unwrap(),
            &Json::UInt(7)
        );
        assert_eq!(
            snap.get("gauges").unwrap().get("depth").unwrap(),
            &Json::UInt(9)
        );
        let hist = snap.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(hist.get("count").unwrap(), &Json::UInt(1));
    }
}
