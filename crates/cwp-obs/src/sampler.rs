//! The windowed time-series sampler.
//!
//! A [`WindowSampler`] is a [`Probe`] that buckets the event stream into
//! consecutive windows of N front-side accesses and keeps one
//! [`WindowRow`] of counters per window — the interval-resolved view
//! (stall bursts, dirty-line accumulation, policy divergence over time)
//! that end-of-run `CacheStats` aggregates cannot show.
//!
//! Window semantics: window *k* covers accesses `[k*N, (k+1)*N)`. The
//! boundary check happens when the *next* access arrives, so the events a
//! given access triggers (its hit/miss, fetch, eviction, write-backs)
//! land in the same window as the access itself. Events after the last
//! access — the end-of-run flush — land in the final window, which
//! [`WindowSampler::finish`] closes.

use crate::event::{Event, FaultOutcome, FetchCause, Probe};

/// Counters for one window of N accesses, plus gauges sampled at the
/// window's close.
///
/// Every field except the gauges (`dirty_lines`, `buf_occupancy`) is a
/// within-window delta; summing a field over all rows reproduces the
/// run's end-of-run total, which the reconciliation tests check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowRow {
    /// Window number, from 0.
    pub index: u64,
    /// Global index of the first access in this window.
    pub start_ref: u64,
    /// Accesses in this window (the window size, except possibly the
    /// final partial window — or 0 for a flush-only trailing window).
    pub refs: u64,
    /// Read sub-accesses.
    pub reads: u64,
    /// Write sub-accesses.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Read misses (including partial-validity misses).
    pub read_misses: u64,
    /// Subset of `read_misses` with a matching tag but invalid bytes.
    pub partial_read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Write hits to already-dirty lines.
    pub writes_to_dirty: u64,
    /// Demand fetches (the fetches `CacheStats::fetches` counts).
    pub demand_fetches: u64,
    /// Fault-recovery refetches (counted in back-side traffic only).
    pub recovery_fetches: u64,
    /// Lines invalidated by write-invalidate misses.
    pub invalidations: u64,
    /// Lines claimed by allocation instructions.
    pub line_allocations: u64,
    /// Back-side fetch transactions (demand + recovery).
    pub fetch_txns: u64,
    /// Bytes moved by fetch transactions.
    pub fetch_bytes: u64,
    /// Back-side write-back transactions.
    pub write_back_txns: u64,
    /// Bytes moved by write-back transactions.
    pub write_back_bytes: u64,
    /// Back-side write-through transactions.
    pub write_through_txns: u64,
    /// Bytes moved by write-through transactions.
    pub write_through_bytes: u64,
    /// Replacement victims (valid lines evicted during execution).
    pub victims: u64,
    /// Replacement victims with dirty bytes.
    pub victims_dirty: u64,
    /// Dirty bytes over all replacement victims.
    pub victim_dirty_bytes: u64,
    /// Lines written out / discarded by the end-of-run flush.
    pub flush_victims: u64,
    /// Flushed lines with dirty bytes.
    pub flush_dirty: u64,
    /// Dirty bytes over all flushed lines.
    pub flush_dirty_bytes: u64,
    /// Write-buffer enqueues (new entries).
    pub buf_enqueues: u64,
    /// Write-buffer merges.
    pub buf_merges: u64,
    /// Write-buffer retirements.
    pub buf_retires: u64,
    /// Cycles stalled on a full write buffer.
    pub buf_stall_cycles: u64,
    /// Faults injected into the data array.
    pub faults_injected: u64,
    /// Injected faults with no check bits to detect them.
    pub silent_corruptions: u64,
    /// Faults corrected in place by ECC.
    pub corrected_in_place: u64,
    /// Faults recovered by refetching a clean line.
    pub refetch_recoveries: u64,
    /// Unrecoverable faults (parity on a dirty line).
    pub data_loss_events: u64,
    /// Dirty bytes destroyed by data-loss events.
    pub data_loss_dirty_bytes: u64,
    /// Faulty clean lines discarded unread at eviction/flush.
    pub discarded_clean: u64,
    /// In-flight transfer corruptions.
    pub transit_faults: u64,
    /// Subset of `transit_faults` that will be retried.
    pub transit_retried: u64,
    /// Gauge: dirty lines resident at the window's close.
    pub dirty_lines: u64,
    /// Gauge: write-buffer occupancy at the window's close.
    pub buf_occupancy: u64,
}

impl WindowRow {
    /// Misses (read + write) in this window.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate within this window, if it saw any accesses.
    pub fn miss_rate(&self) -> Option<f64> {
        (self.refs > 0).then(|| self.misses() as f64 / self.refs as f64)
    }

    /// Back-side transactions (all classes) in this window.
    pub fn backside_txns(&self) -> u64 {
        self.fetch_txns + self.write_back_txns + self.write_through_txns
    }

    /// Back-side bytes (all classes) in this window.
    pub fn backside_bytes(&self) -> u64 {
        self.fetch_bytes + self.write_back_bytes + self.write_through_bytes
    }

    /// Fraction of the cache's lines dirty at the window's close.
    pub fn dirty_fraction(&self, total_lines: u64) -> Option<f64> {
        (total_lines > 0).then(|| self.dirty_lines as f64 / total_lines as f64)
    }

    /// Adds another row's deltas into this one; gauges take the later
    /// row's value. Folding every row of a run this way yields the run's
    /// totals.
    pub fn absorb(&mut self, other: &WindowRow) {
        self.refs += other.refs;
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.partial_read_misses += other.partial_read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.writes_to_dirty += other.writes_to_dirty;
        self.demand_fetches += other.demand_fetches;
        self.recovery_fetches += other.recovery_fetches;
        self.invalidations += other.invalidations;
        self.line_allocations += other.line_allocations;
        self.fetch_txns += other.fetch_txns;
        self.fetch_bytes += other.fetch_bytes;
        self.write_back_txns += other.write_back_txns;
        self.write_back_bytes += other.write_back_bytes;
        self.write_through_txns += other.write_through_txns;
        self.write_through_bytes += other.write_through_bytes;
        self.victims += other.victims;
        self.victims_dirty += other.victims_dirty;
        self.victim_dirty_bytes += other.victim_dirty_bytes;
        self.flush_victims += other.flush_victims;
        self.flush_dirty += other.flush_dirty;
        self.flush_dirty_bytes += other.flush_dirty_bytes;
        self.buf_enqueues += other.buf_enqueues;
        self.buf_merges += other.buf_merges;
        self.buf_retires += other.buf_retires;
        self.buf_stall_cycles += other.buf_stall_cycles;
        self.faults_injected += other.faults_injected;
        self.silent_corruptions += other.silent_corruptions;
        self.corrected_in_place += other.corrected_in_place;
        self.refetch_recoveries += other.refetch_recoveries;
        self.data_loss_events += other.data_loss_events;
        self.data_loss_dirty_bytes += other.data_loss_dirty_bytes;
        self.discarded_clean += other.discarded_clean;
        self.transit_faults += other.transit_faults;
        self.transit_retried += other.transit_retried;
        self.dirty_lines = other.dirty_lines;
        self.buf_occupancy = other.buf_occupancy;
    }
}

/// Column names for [`WindowSampler::to_csv`], in order. The first
/// columns are the raw [`WindowRow`] counters; the last three are
/// derived (`miss_rate`, `dirty_frac`, `backside_bytes`).
pub const CSV_COLUMNS: [&str; 44] = [
    "window",
    "start_ref",
    "refs",
    "reads",
    "writes",
    "read_hits",
    "read_misses",
    "partial_read_misses",
    "write_hits",
    "write_misses",
    "writes_to_dirty",
    "demand_fetches",
    "recovery_fetches",
    "invalidations",
    "line_allocations",
    "fetch_txns",
    "fetch_bytes",
    "write_back_txns",
    "write_back_bytes",
    "write_through_txns",
    "write_through_bytes",
    "victims",
    "victims_dirty",
    "victim_dirty_bytes",
    "flush_victims",
    "flush_dirty",
    "flush_dirty_bytes",
    "buf_enqueues",
    "buf_merges",
    "buf_retires",
    "buf_stall_cycles",
    "faults_injected",
    "silent_corruptions",
    "corrected_in_place",
    "refetch_recoveries",
    "data_loss_events",
    "data_loss_dirty_bytes",
    "discarded_clean",
    "transit_faults",
    "transit_retried",
    "dirty_lines",
    "buf_occupancy",
    "miss_rate",
    "dirty_frac",
];

/// A probe that accumulates [`WindowRow`]s per N accesses.
#[derive(Debug, Clone)]
pub struct WindowSampler {
    window: u64,
    /// Total lines in the observed cache (for the dirty-fraction gauge);
    /// 0 disables the derived column.
    total_lines: u64,
    rows: Vec<WindowRow>,
    cur: WindowRow,
    /// Global access counter.
    refs: u64,
    /// Running dirty-line gauge.
    dirty_lines: u64,
    /// Running buffer-occupancy gauge.
    buf_occupancy: u64,
    /// Whether the current row received any event.
    touched: bool,
    finished: bool,
}

impl WindowSampler {
    /// Creates a sampler closing a row every `window` accesses, for a
    /// cache of `total_lines` lines (used only for the dirty-fraction
    /// column; pass 0 if unknown).
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0.
    pub fn new(window: u64, total_lines: u64) -> Self {
        assert!(window > 0, "window size must be positive");
        WindowSampler {
            window,
            total_lines,
            rows: Vec::new(),
            cur: WindowRow::default(),
            refs: 0,
            dirty_lines: 0,
            buf_occupancy: 0,
            touched: false,
            finished: false,
        }
    }

    /// The configured window size, in accesses.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Total lines configured for the dirty-fraction gauge.
    pub fn total_lines(&self) -> u64 {
        self.total_lines
    }

    fn close_window(&mut self) {
        self.cur.dirty_lines = self.dirty_lines;
        self.cur.buf_occupancy = self.buf_occupancy;
        let index = self.rows.len() as u64;
        self.cur.index = index;
        self.rows.push(self.cur);
        self.cur = WindowRow {
            start_ref: self.refs,
            ..WindowRow::default()
        };
        self.touched = false;
    }

    /// Closes the trailing (possibly partial, possibly flush-only)
    /// window. Idempotent; call after the run ends and before reading
    /// rows.
    pub fn finish(&mut self) {
        if !self.finished {
            if self.touched {
                self.close_window();
            }
            self.finished = true;
        }
    }

    /// The closed rows. Call [`WindowSampler::finish`] first or the
    /// trailing window is missing.
    pub fn rows(&self) -> &[WindowRow] {
        &self.rows
    }

    /// Folds every row into run totals (gauges take the last window's
    /// value). This goes through the rows — not separate counters — so
    /// reconciling it against `CacheStats` proves the windows partition
    /// the run exactly.
    pub fn totals(&self) -> WindowRow {
        let mut total = WindowRow::default();
        for row in &self.rows {
            total.absorb(row);
        }
        total
    }

    /// Renders all rows as CSV with a [`CSV_COLUMNS`] header.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.rows.len() + 1));
        out.push_str(&CSV_COLUMNS.join(","));
        out.push('\n');
        for row in &self.rows {
            let raw = [
                row.index,
                row.start_ref,
                row.refs,
                row.reads,
                row.writes,
                row.read_hits,
                row.read_misses,
                row.partial_read_misses,
                row.write_hits,
                row.write_misses,
                row.writes_to_dirty,
                row.demand_fetches,
                row.recovery_fetches,
                row.invalidations,
                row.line_allocations,
                row.fetch_txns,
                row.fetch_bytes,
                row.write_back_txns,
                row.write_back_bytes,
                row.write_through_txns,
                row.write_through_bytes,
                row.victims,
                row.victims_dirty,
                row.victim_dirty_bytes,
                row.flush_victims,
                row.flush_dirty,
                row.flush_dirty_bytes,
                row.buf_enqueues,
                row.buf_merges,
                row.buf_retires,
                row.buf_stall_cycles,
                row.faults_injected,
                row.silent_corruptions,
                row.corrected_in_place,
                row.refetch_recoveries,
                row.data_loss_events,
                row.data_loss_dirty_bytes,
                row.discarded_clean,
                row.transit_faults,
                row.transit_retried,
                row.dirty_lines,
                row.buf_occupancy,
            ];
            for (i, v) in raw.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            match row.miss_rate() {
                Some(r) => out.push_str(&format!(",{r:.6}")),
                None => out.push_str(",n/a"),
            }
            match row.dirty_fraction(self.total_lines) {
                Some(f) => out.push_str(&format!(",{f:.6}")),
                None => out.push_str(",n/a"),
            }
            out.push('\n');
        }
        out
    }
}

impl Probe for WindowSampler {
    fn on_event(&mut self, event: &Event) {
        let cur = &mut self.cur;
        match *event {
            Event::Access { kind, .. } => {
                // Boundary check happens *before* counting the arriving
                // access, so the events it triggers stay in its window.
                if self.cur.refs == self.window {
                    self.close_window();
                }
                let cur = &mut self.cur;
                cur.refs += 1;
                self.refs += 1;
                match kind {
                    crate::event::AccessKind::Read => cur.reads += 1,
                    crate::event::AccessKind::Write => cur.writes += 1,
                }
            }
            Event::ReadHit { .. } => cur.read_hits += 1,
            Event::ReadMiss { partial, .. } => {
                cur.read_misses += 1;
                if partial {
                    cur.partial_read_misses += 1;
                }
            }
            Event::WriteHit { .. } => cur.write_hits += 1,
            Event::WriteMiss { .. } => cur.write_misses += 1,
            Event::WriteToDirty { .. } => cur.writes_to_dirty += 1,
            Event::Fetch { cause, bytes, .. } => {
                match cause {
                    FetchCause::Demand => cur.demand_fetches += 1,
                    FetchCause::Recovery => cur.recovery_fetches += 1,
                }
                cur.fetch_txns += 1;
                cur.fetch_bytes += u64::from(bytes);
            }
            Event::WriteBack { bytes, .. } => {
                cur.write_back_txns += 1;
                cur.write_back_bytes += u64::from(bytes);
            }
            Event::WriteThrough { bytes, .. } => {
                cur.write_through_txns += 1;
                cur.write_through_bytes += u64::from(bytes);
            }
            Event::Eviction {
                dirty_bytes, flush, ..
            } => {
                if flush {
                    cur.flush_victims += 1;
                    if dirty_bytes > 0 {
                        cur.flush_dirty += 1;
                        cur.flush_dirty_bytes += u64::from(dirty_bytes);
                    }
                } else {
                    cur.victims += 1;
                    if dirty_bytes > 0 {
                        cur.victims_dirty += 1;
                        cur.victim_dirty_bytes += u64::from(dirty_bytes);
                    }
                }
                if dirty_bytes > 0 {
                    self.dirty_lines = self.dirty_lines.saturating_sub(1);
                }
            }
            Event::Invalidation { .. } => cur.invalidations += 1,
            Event::LineDirtied { .. } => self.dirty_lines += 1,
            Event::LineAllocated { .. } => cur.line_allocations += 1,
            Event::BufferEnqueue { occupancy, .. } => {
                cur.buf_enqueues += 1;
                self.buf_occupancy = u64::from(occupancy);
            }
            Event::BufferMerge { .. } => cur.buf_merges += 1,
            Event::BufferStall { cycles } => cur.buf_stall_cycles += cycles,
            Event::BufferRetire { occupancy } => {
                cur.buf_retires += 1;
                self.buf_occupancy = u64::from(occupancy);
            }
            Event::FaultInjected { silent, .. } => {
                cur.faults_injected += 1;
                if silent {
                    cur.silent_corruptions += 1;
                }
            }
            Event::FaultResolved {
                outcome,
                dirty_bytes,
                ..
            } => match outcome {
                FaultOutcome::Corrected => cur.corrected_in_place += 1,
                FaultOutcome::Refetched => cur.refetch_recoveries += 1,
                FaultOutcome::DiscardedClean => cur.discarded_clean += 1,
                FaultOutcome::DataLoss => {
                    cur.data_loss_events += 1;
                    cur.data_loss_dirty_bytes += u64::from(dirty_bytes);
                    self.dirty_lines = self.dirty_lines.saturating_sub(1);
                }
            },
            Event::TransitFault { retried, .. } => {
                cur.transit_faults += 1;
                if retried {
                    cur.transit_retried += 1;
                }
            }
            // Runner job, serve request lifecycle, and storage chaos
            // events are not per-access; they carry no window-summable
            // counter.
            Event::JobStart { .. }
            | Event::JobRetry { .. }
            | Event::JobEnd { .. }
            | Event::RequestAdmitted { .. }
            | Event::RequestShed { .. }
            | Event::RequestDeadline { .. }
            | Event::RequestDegraded { .. }
            | Event::RequestCoalesced { .. }
            | Event::IoFault { .. }
            | Event::DrainBegin { .. }
            | Event::DrainDone { .. } => {}
        }
        self.touched = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessKind;

    fn access(kind: AccessKind) -> Event {
        Event::Access {
            kind,
            addr: 0,
            bytes: 4,
        }
    }

    #[test]
    fn windows_are_exact_with_no_double_count() {
        let mut s = WindowSampler::new(4, 64);
        // 10 accesses: windows of 4, 4, and a partial 2.
        for i in 0..10 {
            s.on_event(&access(AccessKind::Read));
            // A miss right at what will become a boundary must stay with
            // its access.
            if i == 3 {
                s.on_event(&Event::ReadMiss {
                    addr: 0,
                    partial: false,
                });
            }
        }
        s.finish();
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].refs, 4);
        assert_eq!(rows[1].refs, 4);
        assert_eq!(rows[2].refs, 2);
        assert_eq!(rows[0].start_ref, 0);
        assert_eq!(rows[1].start_ref, 4);
        assert_eq!(rows[2].start_ref, 8);
        // The miss on access #3 (0-based) is in window 0, not window 1.
        assert_eq!(rows[0].read_misses, 1);
        assert_eq!(rows[1].read_misses, 0);
        assert_eq!(s.totals().refs, 10);
    }

    #[test]
    fn finish_is_idempotent_and_captures_flush_events() {
        let mut s = WindowSampler::new(2, 64);
        s.on_event(&access(AccessKind::Write));
        s.on_event(&access(AccessKind::Write));
        // Post-run flush: no further accesses, events must still land.
        s.on_event(&Event::Eviction {
            line_addr: 0,
            dirty_bytes: 8,
            flush: true,
        });
        s.finish();
        s.finish();
        let rows = s.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].flush_victims, 1);
        assert_eq!(rows[0].flush_dirty_bytes, 8);
    }

    #[test]
    fn flush_after_a_full_window_gets_its_own_row() {
        let mut s = WindowSampler::new(2, 64);
        s.on_event(&access(AccessKind::Read));
        s.on_event(&access(AccessKind::Read));
        s.on_event(&access(AccessKind::Read)); // opens window 1
        s.finish();
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.rows()[1].refs, 1);
    }

    #[test]
    fn dirty_gauge_integrates_events() {
        let mut s = WindowSampler::new(2, 4);
        s.on_event(&access(AccessKind::Write));
        s.on_event(&Event::LineDirtied { line_addr: 0 });
        s.on_event(&Event::LineDirtied { line_addr: 16 });
        s.on_event(&access(AccessKind::Write));
        // Window 0 closes on the next access with 2 dirty lines.
        s.on_event(&access(AccessKind::Write));
        s.on_event(&Event::Eviction {
            line_addr: 0,
            dirty_bytes: 16,
            flush: false,
        });
        s.finish();
        let rows = s.rows();
        assert_eq!(rows[0].dirty_lines, 2);
        assert_eq!(rows[0].dirty_fraction(4), Some(0.5));
        assert_eq!(rows[1].dirty_lines, 1);
    }

    #[test]
    fn totals_fold_matches_manual_sums() {
        let mut s = WindowSampler::new(3, 0);
        for i in 0..7u64 {
            s.on_event(&access(if i % 2 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            }));
            s.on_event(&Event::WriteBack { addr: i, bytes: 16 });
        }
        s.on_event(&Event::BufferStall { cycles: 5 });
        s.finish();
        let t = s.totals();
        assert_eq!(t.refs, 7);
        assert_eq!(t.reads, 4);
        assert_eq!(t.writes, 3);
        assert_eq!(t.write_back_txns, 7);
        assert_eq!(t.write_back_bytes, 112);
        assert_eq!(t.buf_stall_cycles, 5);
    }

    #[test]
    fn csv_has_header_and_derived_columns() {
        let mut s = WindowSampler::new(2, 8);
        s.on_event(&access(AccessKind::Read));
        s.on_event(&Event::ReadMiss {
            addr: 0,
            partial: false,
        });
        s.on_event(&access(AccessKind::Read));
        s.finish();
        let csv = s.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), CSV_COLUMNS.len());
        assert!(header.starts_with("window,start_ref,refs,"));
        assert!(header.ends_with("miss_rate,dirty_frac"));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), CSV_COLUMNS.len());
        assert!(row.contains("0.500000"), "miss rate 1/2: {row}");
    }

    #[test]
    fn empty_windows_render_na_rates() {
        let mut s = WindowSampler::new(2, 0);
        // Flush-only trailing window with zero accesses.
        s.on_event(&Event::Eviction {
            line_addr: 0,
            dirty_bytes: 0,
            flush: true,
        });
        s.finish();
        let csv = s.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(row.ends_with("n/a,n/a"), "{row}");
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_rejected() {
        let _ = WindowSampler::new(0, 0);
    }
}
