//! Offline validation of exported traces against the event schema.
//!
//! `scripts/verify.sh` runs a traced experiment and then checks the
//! emitted artifacts with the `validate_trace` binary, which is a thin
//! wrapper around [`validate_trace_dir`]. Validation is structural and
//! self-consistent — no network, no external schema files:
//!
//! - `events.jsonl`: every line parses, carries a monotonically
//!   increasing `seq` from 0, and decodes to a known [`Event`] variant
//!   with all required fields.
//! - `windows.csv`: the header is exactly [`CSV_COLUMNS`] and every row
//!   parses (counters as integers, derived rates as numbers or `n/a`).
//! - `manifest.json`: parses into a [`RunManifest`] whose `reconciled`
//!   flag is set, and whose counts match the other two files.

use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use crate::event::Event;
use crate::json::Json;
use crate::manifest::RunManifest;
use crate::sampler::CSV_COLUMNS;

/// What was checked for one run directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The run directory.
    pub dir: PathBuf,
    /// JSONL events that validated.
    pub events: u64,
    /// CSV window rows that validated.
    pub windows: u64,
    /// Sum of the `refs` column over all windows.
    pub total_refs: u64,
    /// `true` when `events.jsonl` ended in a partially-written line —
    /// the signature of a crash mid-write. The `events` count is the
    /// valid prefix; the torn tail is reported as a warning, not an
    /// error.
    pub truncated: bool,
}

/// The outcome of validating an `events.jsonl` stream: the valid-prefix
/// event count, and whether the final line was torn by a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventsReport {
    /// Events that validated (the valid prefix when `truncated`).
    pub events: u64,
    /// `true` when the last line failed validation — tolerated as a
    /// crash mid-write rather than reported as corruption.
    pub truncated: bool,
}

/// Validates `events.jsonl` content: parse, schema, and `seq` order.
///
/// A validation failure on the *final* line is tolerated as truncation
/// (a process killed mid-write can only tear the last line) and
/// reported via [`EventsReport::truncated`] with the valid-prefix
/// count. A failure on any earlier line is real corruption.
///
/// # Errors
///
/// Returns a message naming the first offending non-final line.
pub fn validate_events(text: &str) -> Result<EventsReport, String> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let last = lines.len().saturating_sub(1);
    let mut expected_seq = 0u64;
    for (i, (idx, line)) in lines.iter().enumerate() {
        let lineno = idx + 1;
        match validate_event_line(line, expected_seq, lineno) {
            Ok(()) => expected_seq += 1,
            Err(_) if i == last => {
                return Ok(EventsReport {
                    events: expected_seq,
                    truncated: true,
                })
            }
            Err(e) => return Err(e),
        }
    }
    Ok(EventsReport {
        events: expected_seq,
        truncated: false,
    })
}

/// Checks one JSONL line: parse, `seq` order, known tag, full fields.
fn validate_event_line(line: &str, expected_seq: u64, lineno: usize) -> Result<(), String> {
    let json = Json::parse(line).map_err(|e| format!("events.jsonl line {lineno}: {e}"))?;
    let seq = json
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("events.jsonl line {lineno}: missing seq"))?;
    if seq != expected_seq {
        return Err(format!(
            "events.jsonl line {lineno}: seq {seq}, expected {expected_seq}"
        ));
    }
    let tag = json
        .get("ev")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("events.jsonl line {lineno}: missing ev tag"))?;
    if !Event::TAGS.contains(&tag) {
        return Err(format!(
            "events.jsonl line {lineno}: unknown event tag {tag:?}"
        ));
    }
    if Event::from_json(&json).is_none() {
        return Err(format!(
            "events.jsonl line {lineno}: event {tag:?} has missing or mistyped fields"
        ));
    }
    Ok(())
}

/// Validates `windows.csv` content and returns (rows, sum of `refs`).
///
/// # Errors
///
/// Returns a message naming the first offending row or column.
pub fn validate_windows_csv(text: &str) -> Result<(u64, u64), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("windows.csv: empty file")?;
    let expected = CSV_COLUMNS.join(",");
    if header != expected {
        return Err(format!(
            "windows.csv: header mismatch\n  got      {header}\n  expected {expected}"
        ));
    }
    let refs_col = CSV_COLUMNS
        .iter()
        .position(|&c| c == "refs")
        .expect("refs is a schema column");
    let derived_from = CSV_COLUMNS
        .iter()
        .position(|&c| c == "miss_rate")
        .expect("miss_rate is a schema column");
    let mut rows = 0u64;
    let mut total_refs = 0u64;
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != CSV_COLUMNS.len() {
            return Err(format!(
                "windows.csv line {lineno}: {} fields, expected {}",
                fields.len(),
                CSV_COLUMNS.len()
            ));
        }
        for (col, field) in fields.iter().enumerate() {
            if col < derived_from {
                field.parse::<u64>().map_err(|_| {
                    format!(
                        "windows.csv line {lineno}: column {} is not an integer: {field:?}",
                        CSV_COLUMNS[col]
                    )
                })?;
            } else if *field != "n/a" {
                field.parse::<f64>().map_err(|_| {
                    format!(
                        "windows.csv line {lineno}: column {} is not a number or n/a: {field:?}",
                        CSV_COLUMNS[col]
                    )
                })?;
            }
        }
        total_refs += fields[refs_col]
            .parse::<u64>()
            .expect("checked integral above");
        rows += 1;
    }
    Ok((rows, total_refs))
}

/// Validates one run directory (`events.jsonl` + `windows.csv` +
/// `manifest.json`) and cross-checks their counts.
///
/// # Errors
///
/// Returns a message naming the file and the first inconsistency.
pub fn validate_run_dir(dir: &Path) -> Result<RunReport, String> {
    let read = |name: &str| {
        fs::read_to_string(dir.join(name))
            .map_err(|e| format!("{}: cannot read {name}: {e}", dir.display()))
    };
    let manifest_text = read("manifest.json")?;
    let manifest_json = Json::parse(&manifest_text)
        .map_err(|e| format!("{}: manifest.json: {e}", dir.display()))?;
    let manifest = RunManifest::from_json(&manifest_json)
        .ok_or_else(|| format!("{}: manifest.json: not a valid run manifest", dir.display()))?;
    if !manifest.reconciled {
        return Err(format!(
            "{}: manifest says window sums did NOT reconcile with run totals",
            dir.display()
        ));
    }

    if let Some(outcome) = &manifest.outcome {
        if !crate::manifest::MANIFEST_OUTCOMES.contains(&outcome.as_str()) {
            return Err(format!(
                "{}: manifest outcome {outcome:?} is not one of {:?}",
                dir.display(),
                crate::manifest::MANIFEST_OUTCOMES
            ));
        }
    }

    let EventsReport { events, truncated } =
        validate_events(&read("events.jsonl")?).map_err(|e| format!("{}: {e}", dir.display()))?;
    if truncated {
        // A torn final line means the writer was killed mid-append; the
        // valid prefix is still usable, so warn instead of failing. The
        // manifest (written after the event stream) may then record more
        // events than survived.
        crate::obs_warn!(
            "{}: events.jsonl ends in a partially-written line; {} valid events kept",
            dir.display(),
            events
        );
        if events > manifest.events_written {
            return Err(format!(
                "{}: truncated events.jsonl has {events} events but manifest says only {}",
                dir.display(),
                manifest.events_written
            ));
        }
    } else if events != manifest.events_written {
        return Err(format!(
            "{}: events.jsonl has {events} events but manifest says {}",
            dir.display(),
            manifest.events_written
        ));
    }

    let (windows, total_refs) = validate_windows_csv(&read("windows.csv")?)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    if windows != manifest.windows {
        return Err(format!(
            "{}: windows.csv has {windows} rows but manifest says {}",
            dir.display(),
            manifest.windows
        ));
    }
    let accesses = manifest
        .totals
        .iter()
        .find(|(k, _)| k == "accesses")
        .map(|(_, v)| *v);
    if let Some(accesses) = accesses {
        if total_refs != accesses {
            return Err(format!(
                "{}: windows.csv refs sum to {total_refs} but manifest totals say {accesses} accesses",
                dir.display()
            ));
        }
    }

    Ok(RunReport {
        dir: dir.to_path_buf(),
        events,
        windows,
        total_refs,
        truncated,
    })
}

/// Walks `root` for run directories (those containing `manifest.json`)
/// and validates each.
///
/// # Errors
///
/// Fails if `root` is unreadable, contains no runs, or any run fails
/// validation.
pub fn validate_trace_dir(root: &Path) -> Result<Vec<RunReport>, String> {
    let mut reports = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.join("manifest.json").is_file() {
            reports.push(validate_run_dir(&dir)?);
            continue;
        }
        let entries = fs::read_dir(&dir)
            .map_err(|e| format!("{}: cannot read directory: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            if entry.path().is_dir() {
                stack.push(entry.path());
            }
        }
    }
    if reports.is_empty() {
        return Err(format!(
            "{}: no run directories (manifest.json) found",
            root.display()
        ));
    }
    reports.sort_by(|a, b| a.dir.cmp(&b.dir));
    Ok(reports)
}

/// Convenience: validate a JSONL file through a buffered reader (used
/// by tests that stream rather than slurp).
///
/// # Errors
///
/// As [`validate_events`], plus I/O errors.
pub fn validate_events_file(path: &Path) -> Result<EventsReport, String> {
    let file = fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut text = String::new();
    use std::io::Read;
    BufReader::new(file)
        .read_to_string(&mut text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    validate_events(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, Probe};
    use crate::jsonl::JsonlWriter;
    use crate::sampler::WindowSampler;

    fn sample_jsonl() -> String {
        let mut w = JsonlWriter::new(Vec::new(), None);
        w.on_event(&Event::Access {
            kind: AccessKind::Read,
            addr: 0,
            bytes: 4,
        });
        w.on_event(&Event::ReadMiss {
            addr: 0,
            partial: false,
        });
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    #[test]
    fn valid_jsonl_passes() {
        assert_eq!(
            validate_events(&sample_jsonl()),
            Ok(EventsReport {
                events: 2,
                truncated: false
            })
        );
    }

    #[test]
    fn seq_gaps_fail_when_not_on_the_last_line() {
        let mut text = sample_jsonl().replace("\"seq\":1", "\"seq\":5");
        text.push_str("{\"seq\":2,\"ev\":\"read_hit\",\"addr\":0}\n");
        let err = validate_events(&text).unwrap_err();
        assert!(err.contains("seq 5, expected 1"), "{err}");
    }

    #[test]
    fn unknown_tag_mid_stream_fails() {
        let text = "{\"seq\":0,\"ev\":\"martian\"}\n{\"seq\":1,\"ev\":\"read_hit\",\"addr\":0}\n";
        let err = validate_events(text).unwrap_err();
        assert!(err.contains("unknown event tag"), "{err}");
    }

    #[test]
    fn missing_fields_mid_stream_fail() {
        let text = "{\"seq\":0,\"ev\":\"read_hit\"}\n{\"seq\":1,\"ev\":\"read_hit\",\"addr\":0}\n";
        let err = validate_events(text).unwrap_err();
        assert!(err.contains("missing or mistyped"), "{err}");
    }

    #[test]
    fn torn_final_line_reports_truncation_with_valid_prefix() {
        let mut text = sample_jsonl();
        text.push_str("{\"seq\":2,\"ev\":\"read_m"); // killed mid-write
        assert_eq!(
            validate_events(&text),
            Ok(EventsReport {
                events: 2,
                truncated: true
            })
        );
    }

    #[test]
    fn a_single_torn_line_is_an_empty_truncated_stream() {
        assert_eq!(
            validate_events("{\"seq\":0,\"ev\":\"acc"),
            Ok(EventsReport {
                events: 0,
                truncated: true
            })
        );
    }

    #[test]
    fn all_request_lifecycle_variants_validate() {
        // The serve front end emits these five variants; the offline
        // validator must accept a stream containing every one of them,
        // and reject any with a missing required field.
        let mut w = JsonlWriter::new(Vec::new(), None);
        for event in [
            Event::RequestAdmitted {
                request: 1,
                depth: 3,
            },
            Event::RequestShed {
                request: 2,
                retry_after_ms: 40,
            },
            Event::RequestDeadline {
                request: 3,
                deadline_ms: 15,
            },
            Event::RequestDegraded { request: 4 },
            Event::RequestCoalesced {
                request: 5,
                batch: 4,
            },
        ] {
            w.on_event(&event);
        }
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(
            validate_events(&text),
            Ok(EventsReport {
                events: 5,
                truncated: false
            })
        );
        // Dropping a required field from any lifecycle line is caught.
        for (broken, tag) in [
            ("{\"seq\":0,\"ev\":\"req_admitted\",\"request\":1}", "depth"),
            ("{\"seq\":0,\"ev\":\"req_shed\",\"request\":2}", "retry"),
            (
                "{\"seq\":0,\"ev\":\"req_deadline\",\"request\":3}",
                "deadline",
            ),
            ("{\"seq\":0,\"ev\":\"req_degraded\"}", "request"),
            (
                "{\"seq\":0,\"ev\":\"req_coalesced\",\"request\":5}",
                "batch",
            ),
        ] {
            let text = format!(
                "{broken}\n{}",
                sample_jsonl().replace("\"seq\":0", "\"seq\":1")
            );
            let err = validate_events(&text)
                .expect_err(&format!("stream missing {tag} must fail validation"));
            assert!(err.contains("missing or mistyped"), "{err}");
        }
    }

    #[test]
    fn sampler_csv_validates() {
        let mut s = WindowSampler::new(2, 16);
        for _ in 0..5 {
            s.on_event(&Event::Access {
                kind: AccessKind::Write,
                addr: 0,
                bytes: 4,
            });
        }
        s.finish();
        let (rows, refs) = validate_windows_csv(&s.to_csv()).unwrap();
        assert_eq!(rows, 3);
        assert_eq!(refs, 5);
    }

    #[test]
    fn header_mismatch_fails() {
        let err = validate_windows_csv("bogus,header\n1,2\n").unwrap_err();
        assert!(err.contains("header mismatch"), "{err}");
    }
}
