//! Property tests for the metrics histogram (seeded in-tree driver).
//!
//! The workspace is hermetic (no proptest), so randomness comes from
//! an inline SplitMix64 with fixed seeds: failures reproduce exactly.
//! The properties under test are the ones the telemetry contract
//! leans on: merges are associative/commutative with an identity,
//! quantile estimates are monotone in `q` and land in the same log2
//! bucket as the exact order statistic, bucket boundaries have no
//! off-by-ones, and the top bucket saturates instead of overflowing.

use cwp_obs::metrics::{bucket_bounds, bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};

/// The same generator the simulator uses, inlined because `cwp-obs`
/// depends on no other workspace crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A random snapshot whose values span many orders of magnitude (the
/// shift spreads values across buckets instead of clustering high).
fn random_snapshot(rng: &mut SplitMix64, len: usize) -> (HistogramSnapshot, Vec<u64>) {
    let mut snapshot = HistogramSnapshot::new();
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        let shift = rng.below(64) as u32;
        let value = rng.next() >> shift;
        snapshot.record(value);
        values.push(value);
    }
    (snapshot, values)
}

#[test]
fn merge_is_associative_commutative_and_has_an_identity() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..50 {
        let (len_a, len_b, len_c) = (
            1 + rng.below(40) as usize,
            1 + rng.below(40) as usize,
            1 + rng.below(40) as usize,
        );
        let (a, _) = random_snapshot(&mut rng, len_a);
        let (b, _) = random_snapshot(&mut rng, len_b);
        let (c, _) = random_snapshot(&mut rng, len_c);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        // a ⊕ 0 == a
        let mut with_identity = a.clone();
        with_identity.merge(&HistogramSnapshot::new());
        assert_eq!(with_identity, a, "empty snapshot must be the identity");
    }
}

#[test]
fn merged_snapshot_equals_recording_everything_into_one() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..30 {
        let (len_a, len_b) = (rng.below(60) as usize, rng.below(60) as usize);
        let (a, values_a) = random_snapshot(&mut rng, len_a);
        let (b, values_b) = random_snapshot(&mut rng, len_b);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = HistogramSnapshot::new();
        for value in values_a.iter().chain(values_b.iter()) {
            direct.record(*value);
        }
        assert_eq!(merged, direct, "merge must equal single-stream recording");
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..40 {
        let len = 1 + rng.below(200) as usize;
        let (snapshot, _) = random_snapshot(&mut rng, len);
        let mut previous = 0u64;
        for step in 0..=100 {
            let q = f64::from(step) / 100.0;
            let estimate = snapshot.quantile(q);
            assert!(
                estimate >= previous,
                "quantile({q}) = {estimate} dropped below {previous}"
            );
            previous = estimate;
        }
        assert!(snapshot.quantile(0.0) >= snapshot.min);
        assert_eq!(snapshot.quantile(1.0), snapshot.max);
    }
}

#[test]
fn quantile_estimates_land_in_the_exact_order_statistics_bucket() {
    let mut rng = SplitMix64::new(0xD00D);
    for _ in 0..40 {
        let len = 1 + rng.below(150) as usize;
        let (snapshot, mut values) = random_snapshot(&mut rng, len);
        values.sort_unstable();
        for &q in &[0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            // The same rank the estimator walks to.
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let (low, high) = bucket_bounds(bucket_index(exact));
            let estimate = snapshot.quantile(q);
            assert!(
                (low..=high).contains(&estimate),
                "quantile({q}) = {estimate} outside bucket [{low}, {high}] of exact {exact}"
            );
        }
    }
}

#[test]
fn bucket_boundaries_have_no_off_by_ones() {
    // Around every power of two, 2^i - 1 closes bucket i and 2^i opens
    // bucket i + 1 (until the top bucket absorbs everything).
    for i in 1..63u32 {
        let boundary = 1u64 << i;
        assert_eq!(
            bucket_index(boundary - 1),
            i as usize,
            "2^{i} - 1 must land in bucket {i}"
        );
        let expected = (i as usize + 1).min(HISTOGRAM_BUCKETS - 1);
        assert_eq!(
            bucket_index(boundary),
            expected,
            "2^{i} must open bucket {expected}"
        );
    }
    // The recorded counts agree with the index function at boundaries.
    let mut snapshot = HistogramSnapshot::new();
    for i in 1..63u32 {
        snapshot.record((1u64 << i) - 1);
        snapshot.record(1u64 << i);
    }
    let total: u64 = snapshot.buckets.iter().sum();
    assert_eq!(total, snapshot.count);
    for (index, &count) in snapshot.buckets.iter().enumerate() {
        if count > 0 {
            let (low, high) = bucket_bounds(index);
            assert!(low <= high);
            assert_eq!(bucket_index(low), index);
            assert_eq!(bucket_index(high), index);
        }
    }
}

#[test]
fn the_top_bucket_saturates() {
    let mut snapshot = HistogramSnapshot::new();
    let giants = [1u64 << 62, (1 << 62) + 1, u64::MAX - 1, u64::MAX];
    for &value in &giants {
        assert_eq!(bucket_index(value), HISTOGRAM_BUCKETS - 1);
        snapshot.record(value);
    }
    assert_eq!(snapshot.buckets[HISTOGRAM_BUCKETS - 1], giants.len() as u64);
    assert_eq!(snapshot.max, u64::MAX);
    assert_eq!(snapshot.min, 1 << 62);
    // Quantiles stay clamped to the observed range even though the
    // top bucket's nominal upper bound is u64::MAX.
    for &q in &[0.01, 0.5, 0.999] {
        let estimate = snapshot.quantile(q);
        assert!((snapshot.min..=snapshot.max).contains(&estimate));
    }
    // The sum saturates instead of wrapping.
    assert_eq!(snapshot.sum, u64::MAX);
}

#[test]
fn json_round_trip_preserves_random_snapshots() {
    let mut rng = SplitMix64::new(0xFACADE);
    for _ in 0..30 {
        let len = rng.below(100) as usize;
        let (snapshot, _) = random_snapshot(&mut rng, len);
        let back = HistogramSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back, snapshot);
    }
}
