//! The five-stage pipeline store-timing model (Figure 3, Table 2).
//!
//! The paper's sixth dimension of write-hit comparison is how stores fit
//! the machine pipeline (IF RF ALU MEM WB):
//!
//! * A **direct-mapped write-through** cache writes data and probes the tag
//!   in the same cycle — every store costs one cycle.
//! * A **write-back (or set-associative) cache** must probe before writing:
//!   two cycles of cache occupancy, interlocking when a load or store
//!   follows immediately.
//! * The **delayed-write method** (Figure 4) recovers one-cycle stores by
//!   writing the previous store's data during the current store's probe.
//!
//! [`StorePipeline`] consumes a workload trace (it is a
//! [`cwp_trace::TraceSink`]), runs an embedded cache to learn which probes
//! hit, and charges interlock cycles per the selected [`StoreTiming`].
//! Cache-miss service itself is excluded, as in the paper's write-buffer
//! analysis — the model isolates the *store bandwidth* question.
//!
//! # Examples
//!
//! ```
//! use cwp_pipeline::{StorePipeline, StoreTiming};
//! use cwp_trace::{workloads, Scale, Workload};
//!
//! let mut pipe = StorePipeline::for_timing(StoreTiming::ProbeThenWrite);
//! workloads::yacc().run(Scale::Test, &mut pipe);
//! assert!(pipe.stats().cpi() > 1.0, "probe-then-write costs interlocks");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use cwp_buffers::{DelayedWriteRegister, StoreCycles};
use cwp_cache::{Cache, CacheConfig, MemoryCache, WriteHitPolicy, WriteMissPolicy};
use cwp_trace::{AccessKind, MemRef, TraceSink};

/// How stores are timed at the first-level cache interface (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreTiming {
    /// Direct-mapped write-through: data write and tag probe share the MEM
    /// cycle. One cycle per store, no interlocks.
    WriteThroughDirectMapped,
    /// Straightforward write-back or set-associative write-through: probe
    /// in MEM, write in WB. A memory reference in the very next
    /// instruction interlocks for one cycle.
    ProbeThenWrite,
    /// The delayed-write register (Figure 4): one cycle per store while
    /// the previous probe hit and no read miss intervened.
    DelayedWrite,
}

impl StoreTiming {
    /// All three timings.
    pub const ALL: [StoreTiming; 3] = [
        StoreTiming::WriteThroughDirectMapped,
        StoreTiming::ProbeThenWrite,
        StoreTiming::DelayedWrite,
    ];
}

impl fmt::Display for StoreTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreTiming::WriteThroughDirectMapped => f.write_str("write-through direct-mapped"),
            StoreTiming::ProbeThenWrite => f.write_str("probe-then-write"),
            StoreTiming::DelayedWrite => f.write_str("delayed-write"),
        }
    }
}

/// Cycle accounting from a [`StorePipeline`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Dynamic instructions.
    pub instructions: u64,
    /// Loads processed.
    pub loads: u64,
    /// Stores processed.
    pub stores: u64,
    /// Extra cycles charged to store/reference structural interlocks.
    pub interlock_cycles: u64,
    /// Stores that needed a second cache cycle.
    pub two_cycle_stores: u64,
}

impl PipelineStats {
    /// Total cycles: one per instruction plus interlocks (miss service
    /// excluded by construction).
    pub fn cycles(&self) -> u64 {
        self.instructions + self.interlock_cycles
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles() as f64 / self.instructions as f64
    }

    /// Fraction of stores needing two cache cycles.
    pub fn two_cycle_store_fraction(&self) -> Option<f64> {
        (self.stores > 0).then(|| self.two_cycle_stores as f64 / self.stores as f64)
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts, {} cycles (CPI {:.3})",
            self.instructions,
            self.cycles(),
            self.cpi()
        )
    }
}

/// A trace-driven store-timing simulator. See the crate documentation.
#[derive(Debug)]
pub struct StorePipeline {
    timing: StoreTiming,
    cache: MemoryCache,
    register: DelayedWriteRegister,
    /// The previous store still occupies the cache for one more cycle.
    blocking: bool,
    stats: PipelineStats,
    scratch: Vec<u8>,
}

impl StorePipeline {
    /// Creates a pipeline over a cache with the given configuration.
    pub fn new(timing: StoreTiming, config: CacheConfig) -> Self {
        StorePipeline {
            timing,
            cache: Cache::with_memory(config),
            register: DelayedWriteRegister::new(),
            blocking: false,
            stats: PipelineStats::default(),
            scratch: vec![0u8; 8],
        }
    }

    /// Creates a pipeline over the natural cache for each timing: an 8KB
    /// direct-mapped cache, write-through for
    /// [`StoreTiming::WriteThroughDirectMapped`] and write-back otherwise.
    pub fn for_timing(timing: StoreTiming) -> Self {
        let hit = match timing {
            StoreTiming::WriteThroughDirectMapped => WriteHitPolicy::WriteThrough,
            _ => WriteHitPolicy::WriteBack,
        };
        let config = CacheConfig::builder()
            .write_hit(hit)
            .write_miss(WriteMissPolicy::FetchOnWrite)
            .build()
            .expect("default geometry is valid");
        Self::new(timing, config)
    }

    /// The timing model in effect.
    pub fn timing(&self) -> StoreTiming {
        self.timing
    }

    /// Cycle accounting so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// The embedded cache (for inspecting hit/miss counts).
    pub fn cache(&self) -> &MemoryCache {
        &self.cache
    }
}

impl TraceSink for StorePipeline {
    fn record(&mut self, r: MemRef) {
        self.stats.instructions += u64::from(r.before_insts);

        // A store occupying the cache interlocks a reference issued in the
        // immediately following instruction.
        if self.blocking && r.before_insts == 1 {
            self.stats.interlock_cycles += 1;
        }
        self.blocking = false;

        let len = r.size as usize;
        match r.kind {
            AccessKind::Read => {
                self.stats.loads += 1;
                let misses_before = self.cache.stats().read_misses;
                let forwarded = self.register.read(r.addr);
                let mut scratch = std::mem::take(&mut self.scratch);
                self.cache.read(r.addr, &mut scratch[..len]);
                self.scratch = scratch;
                if self.cache.stats().read_misses > misses_before && !forwarded {
                    self.register.read_miss();
                }
            }
            AccessKind::Write => {
                self.stats.stores += 1;
                let probe_hit = self.cache.is_resident(r.addr, len);
                let scratch = std::mem::take(&mut self.scratch);
                self.cache.write(r.addr, &scratch[..len]);
                self.scratch = scratch;
                let slow = match self.timing {
                    StoreTiming::WriteThroughDirectMapped => false,
                    StoreTiming::ProbeThenWrite => true,
                    StoreTiming::DelayedWrite => {
                        self.register.store(r.addr, probe_hit) == StoreCycles::Two
                    }
                };
                if slow {
                    self.stats.two_cycle_stores += 1;
                    self.blocking = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwp_trace::{workloads, Scale};

    fn run(timing: StoreTiming) -> PipelineStats {
        let mut pipe = StorePipeline::for_timing(timing);
        workloads::ccom().run(Scale::Test, &mut pipe);
        pipe.stats()
    }

    #[test]
    fn write_through_direct_mapped_has_no_interlocks() {
        let s = run(StoreTiming::WriteThroughDirectMapped);
        assert_eq!(s.interlock_cycles, 0);
        assert_eq!(s.cpi(), 1.0);
        assert_eq!(s.two_cycle_store_fraction(), Some(0.0));
    }

    #[test]
    fn probe_then_write_pays_interlocks() {
        let s = run(StoreTiming::ProbeThenWrite);
        assert!(s.interlock_cycles > 0);
        assert!(s.cpi() > 1.0);
        assert_eq!(s.two_cycle_stores, s.stores);
    }

    #[test]
    fn delayed_write_recovers_most_of_the_gap() {
        let plain = run(StoreTiming::ProbeThenWrite);
        let delayed = run(StoreTiming::DelayedWrite);
        let fast = run(StoreTiming::WriteThroughDirectMapped);
        assert!(delayed.cpi() < plain.cpi());
        assert!(delayed.cpi() >= fast.cpi());
        // Most probes hit, so most stores should be single-cycle.
        assert!(delayed.two_cycle_store_fraction().unwrap() < 0.5);
    }

    #[test]
    fn instruction_counts_match_the_trace() {
        let mut pipe = StorePipeline::for_timing(StoreTiming::DelayedWrite);
        let summary = workloads::liver().run(Scale::Test, &mut pipe);
        assert_eq!(pipe.stats().instructions, summary.instructions);
        assert_eq!(pipe.stats().loads, summary.reads);
        assert_eq!(pipe.stats().stores, summary.writes);
    }

    #[test]
    fn timing_display_names() {
        assert_eq!(StoreTiming::DelayedWrite.to_string(), "delayed-write");
        assert_eq!(StoreTiming::ALL.len(), 3);
    }
}
