//! A small blocking client for the JSONL protocol.
//!
//! Supports pipelining: send any number of requests, then collect
//! responses as they arrive (the server may answer out of order when
//! different workers finish at different times). The client is the
//! building block for the load generator and the chaos harness.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{metrics_request_line, shutdown_request_line, Request, Response};
use cwp_obs::json::Json;

/// A blocking JSONL protocol client over TCP.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sets a read timeout for [`Client::recv`] (`None` blocks forever).
    pub fn set_recv_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Sends a raw line verbatim (for protocol-robustness tests).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Receives the next response line.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closed the connection, or
    /// `InvalidData` when the line does not parse as a response.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_line(line.trim_end())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends a request and blocks for its response, matching on id.
    /// Out-of-order responses for other ids are not expected on a
    /// non-pipelined client and are returned as `InvalidData`.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Response> {
        self.send(request)?;
        let response = self.recv()?;
        let answered = match &response {
            Response::Ok { id, .. } | Response::Metrics { id, .. } | Response::Draining { id } => {
                Some(*id)
            }
            Response::Error { id, .. } => *id,
        };
        if answered.is_some() && answered != Some(request.id) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response for id {answered:?}, expected {}", request.id),
            ));
        }
        Ok(response)
    }

    /// Requests a live metrics snapshot and blocks for it, matching on
    /// `id`. Returns the snapshot object.
    pub fn fetch_metrics(&mut self, id: u64) -> std::io::Result<Json> {
        self.send_raw(&metrics_request_line(id))?;
        match self.recv()? {
            Response::Metrics {
                id: answered,
                snapshot,
            } if answered == id => Ok(snapshot),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected metrics snapshot for id {id}, got {other:?}"),
            )),
        }
    }

    /// Asks the server to begin a graceful drain and blocks for the
    /// `Draining` acknowledgement, matching on `id`.
    pub fn request_shutdown(&mut self, id: u64) -> std::io::Result<()> {
        self.send_raw(&shutdown_request_line(id))?;
        match self.recv()? {
            Response::Draining { id: answered } if answered == id => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected draining ack for id {id}, got {other:?}"),
            )),
        }
    }

    /// Pipelines `requests` and collects one response per unique id.
    /// Returns a map from request id to its response; stops early on a
    /// transport error after draining what arrived.
    pub fn pipeline(&mut self, requests: &[Request]) -> std::io::Result<HashMap<u64, Response>> {
        for request in requests {
            self.send(request)?;
        }
        let unique: std::collections::HashSet<u64> = requests.iter().map(|r| r.id).collect();
        let mut responses = HashMap::new();
        while responses.len() < unique.len() {
            let response = self.recv()?;
            let id = match &response {
                Response::Ok { id, .. }
                | Response::Metrics { id, .. }
                | Response::Draining { id } => Some(*id),
                Response::Error { id, .. } => *id,
            };
            match id {
                Some(id) => {
                    responses.insert(id, response);
                }
                None => {
                    // A rejection for an unparseable line has no id;
                    // surface it under a sentinel so callers see it.
                    responses.insert(u64::MAX, response);
                }
            }
        }
        Ok(responses)
    }
}
