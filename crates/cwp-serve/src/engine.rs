//! The serving engine: admission, scheduling, workers, and settlement.
//!
//! The engine owes exactly one response per admitted request, no matter
//! what happens in between — a worker panic, a deadline expiry, a
//! client disconnect, or a coalesced batch abort. The invariant is
//! enforced with the [`Supervisor`]'s register/complete handshake: a
//! request is registered before it is admitted, and whichever side
//! settles it first (worker result or deadline watchdog) wins the
//! `complete` race; the loser sees `None` and stays silent.
//!
//! Workers pull from the [`AdmissionQueue`] highest-priority-first and
//! coalesce compatible waiting requests (same workload, fault-free
//! config) into one banked [`simulate_many_cancellable`] pass. Results
//! are memoized in the crash-safe [`MemoStore`] keyed by
//! `(trace content hash, canonical config JSON)`.
//!
//! Graceful degradation: when the [`TraceStore`] cannot hold a
//! workload's trace even after LRU eviction, the engine falls back to
//! live generation and flags the response `degraded` — slower, but
//! still correct (replay is byte-identical to live generation by
//! construction).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cwp_chaos::{ChaosIo, IoHandle};
use cwp_core::sim::{simulate, simulate_many_cancellable};
use cwp_core::store::TraceStore;
use cwp_core::supervise::{backoff_delay, CancelToken, Supervisor};
use cwp_mem::SplitMix64;
use cwp_obs::event::{Event, Probe};
use cwp_obs::json::Json;
use cwp_obs::jsonl::JsonlWriter;
use cwp_obs::metrics::{Counter, Gauge, Histogram, Registry, Span};
use cwp_trace::{workloads, Scale};

use crate::memo::MemoStore;
use crate::protocol::{config_key, Incoming, Reject, Response, ResultSummary, Timing};
use crate::queue::{AdmissionQueue, Entry, PRIORITY_LEVELS};

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Workload scale served by this engine.
    pub scale: Scale,
    /// Worker thread count.
    pub workers: usize,
    /// Admission queue capacity; pushes past this are shed.
    pub queue_capacity: usize,
    /// Per-client in-flight cap.
    pub per_client_inflight: usize,
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Base delay for the exponential retry backoff.
    pub backoff_base: Duration,
    /// Seed for backoff jitter and fault injection.
    pub seed: u64,
    /// Advisory byte budget for the trace store (LRU-evicted).
    pub trace_budget_bytes: u64,
    /// Maximum requests coalesced into one banked pass.
    pub max_batch: usize,
    /// When nonzero, deterministically panic the first attempt of
    /// roughly one in this many requests (chaos testing).
    pub fault_one_in: u64,
    /// Directory for the crash-safe memo journal (`None` = in-memory).
    pub memo_dir: Option<std::path::PathBuf>,
    /// Request-lifecycle event log (`None` = no log).
    pub events_path: Option<std::path::PathBuf>,
    /// Periodic atomic metrics snapshot file (`None` = no snapshots).
    pub metrics_path: Option<std::path::PathBuf>,
    /// How often the snapshot file is rewritten.
    pub metrics_period: Duration,
    /// Storage backend for every durable artifact (memo journal,
    /// metrics snapshot). The default is the real filesystem; chaos
    /// tests substitute a fault-injecting backend.
    pub io: IoHandle,
}

impl EngineConfig {
    /// A sensible default configuration at the given scale.
    pub fn new(scale: Scale) -> Self {
        EngineConfig {
            scale,
            workers: 4,
            queue_capacity: 256,
            per_client_inflight: 64,
            max_attempts: 3,
            backoff_base: Duration::from_millis(5),
            seed: 0x5e12_c0de,
            trace_budget_bytes: 512 * 1024 * 1024,
            max_batch: 32,
            fault_one_in: 0,
            memo_dir: None,
            events_path: None,
            metrics_path: None,
            metrics_period: Duration::from_secs(1),
            io: IoHandle::real(),
        }
    }
}

/// A monotonic snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests shed with a typed `overloaded` rejection.
    pub shed: u64,
    /// Requests answered with a result.
    pub served: u64,
    /// Served requests answered from the memo store.
    pub memo_hits: u64,
    /// Served requests that rode a coalesced banked pass.
    pub coalesced: u64,
    /// Served requests computed via degraded live generation.
    pub degraded: u64,
    /// Requests answered `deadline_exceeded`.
    pub deadline_expired: u64,
    /// Worker panics caught (injected or real).
    pub panics: u64,
    /// Attempts re-queued after a backoff.
    pub retries: u64,
    /// Requests answered `failed` after exhausting attempts.
    pub failed: u64,
}

/// The engine's instrument set, registered by name in a
/// [`Registry`] so one `registry.snapshot()` renders them all. The
/// typed fields keep the hot paths free of name lookups.
struct ServeMetrics {
    registry: Registry,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    served: Arc<Counter>,
    memo_hits: Arc<Counter>,
    memo_misses: Arc<Counter>,
    coalesced: Arc<Counter>,
    degraded: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    panics: Arc<Counter>,
    retries: Arc<Counter>,
    failed: Arc<Counter>,
    memo_corrupt_lines: Arc<Counter>,
    inflight: Arc<Gauge>,
    queue_us: Arc<Histogram>,
    prep_us: Arc<Histogram>,
    sim_us: Arc<Histogram>,
    memo_us: Arc<Histogram>,
    total_us: Arc<Histogram>,
}

impl ServeMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        ServeMetrics {
            admitted: registry.counter("admitted"),
            shed: registry.counter("shed"),
            served: registry.counter("served"),
            memo_hits: registry.counter("memo_hits"),
            memo_misses: registry.counter("memo_misses"),
            coalesced: registry.counter("coalesced"),
            degraded: registry.counter("degraded"),
            deadline_expired: registry.counter("deadline_expired"),
            panics: registry.counter("panics"),
            retries: registry.counter("retries"),
            failed: registry.counter("failed"),
            memo_corrupt_lines: registry.counter("memo_corrupt_lines"),
            inflight: registry.gauge("inflight"),
            queue_us: registry.histogram("queue_us"),
            prep_us: registry.histogram("prep_us"),
            sim_us: registry.histogram("sim_us"),
            memo_us: registry.histogram("memo_us"),
            total_us: registry.histogram("total_us"),
            registry,
        }
    }
}

/// Supervisor payload: either a deadline armed for an admitted request
/// or a retry entry waiting out its backoff.
#[derive(Clone)]
enum SupMsg {
    Deadline {
        client: u64,
        id: u64,
        deadline_ms: u64,
        cancel: CancelToken,
    },
    Retry(Box<Entry>),
}

struct Shared {
    config: EngineConfig,
    queue: AdmissionQueue,
    store: TraceStore,
    memo: MemoStore,
    /// Workload name -> trace content hash, learned on first recording.
    hashes: Mutex<HashMap<String, u64>>,
    clients: Mutex<HashMap<u64, Sender<Response>>>,
    supervisor: OnceLock<Arc<Supervisor<SupMsg>>>,
    metrics: ServeMetrics,
    seq: AtomicU64,
    client_seq: AtomicU64,
    events: Option<Mutex<JsonlWriter<std::fs::File>>>,
    /// Set on shutdown; stops the snapshot thread.
    stopping: AtomicBool,
    /// Set when a graceful drain begins: new simulation requests are
    /// shed with a retry hint instead of admitted, and caught panics
    /// fail immediately instead of scheduling a backoff retry.
    draining: AtomicBool,
    /// Set by a `shutdown` control request; the process's supervision
    /// loop polls it and runs the drain.
    drain_requested: AtomicBool,
}

/// What a graceful [`Engine::drain`] did: how deep the queue was when
/// the drain began, how many waiting requests were shed with retry
/// hints, and how many in-flight requests completed during the drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Queue depth when the drain began.
    pub queued: u32,
    /// Waiting requests shed with `overloaded` + retry hint.
    pub shed: u32,
    /// Requests served to completion during the drain.
    pub completed: u32,
}

/// The serving engine. See the module docs for the design.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    snapshotter: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Builds the engine and starts its worker pool and watchdog.
    pub fn start(config: EngineConfig) -> std::io::Result<Engine> {
        let memo = match &config.memo_dir {
            Some(dir) => MemoStore::open_with_io(dir, config.io.arc())?,
            None => MemoStore::ephemeral(),
        };
        let events = match &config.events_path {
            Some(path) => {
                let file = std::fs::File::create(path)?;
                Some(Mutex::new(JsonlWriter::new(file, None)))
            }
            None => None,
        };
        let metrics = ServeMetrics::new();
        metrics.memo_corrupt_lines.add(memo.corrupt_lines());
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_capacity, config.per_client_inflight),
            store: TraceStore::with_budget(config.scale, config.trace_budget_bytes),
            memo,
            hashes: Mutex::new(HashMap::new()),
            clients: Mutex::new(HashMap::new()),
            supervisor: OnceLock::new(),
            metrics,
            seq: AtomicU64::new(1),
            client_seq: AtomicU64::new(1),
            events,
            stopping: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            config,
        });
        let expired = Arc::downgrade(&shared);
        let due = Arc::downgrade(&shared);
        let supervisor = Arc::new(Supervisor::spawn(
            "cwp-serve-watchdog",
            move |seq, msg| {
                if let Some(shared) = Weak::upgrade(&expired) {
                    shared.on_deadline(seq, msg);
                }
            },
            move |msg| {
                if let Some(shared) = Weak::upgrade(&due) {
                    shared.on_release(msg);
                }
            },
        ));
        shared
            .supervisor
            .set(supervisor)
            .map_err(|_| ())
            .expect("supervisor set once");
        let workers = (0..shared.config.workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cwp-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let snapshotter = shared.config.metrics_path.clone().map(|path| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cwp-serve-metrics".to_string())
                .spawn(move || snapshot_loop(&shared, &path))
                .expect("spawn snapshotter")
        });
        Ok(Engine {
            shared,
            workers: Mutex::new(workers),
            snapshotter: Mutex::new(snapshotter),
        })
    }

    /// Registers a new client; responses for it arrive on the returned
    /// channel. The id namespaces the client's request ids and its
    /// in-flight cap.
    pub fn attach_client(&self) -> (u64, Receiver<Response>) {
        let client = self.shared.client_seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        self.shared
            .clients
            .lock()
            .expect("clients lock")
            .insert(client, tx);
        (client, rx)
    }

    /// Unregisters a client. Responses still in flight for it are
    /// dropped (the connection is gone); its queue debt is still paid
    /// so the in-flight accounting stays balanced.
    pub fn detach_client(&self, client: u64) {
        self.shared
            .clients
            .lock()
            .expect("clients lock")
            .remove(&client);
    }

    /// Submits one raw request line on behalf of `client`. Every
    /// outcome — parse failure, shed, or admission — is reported
    /// through the client's response channel; this method never panics
    /// on malformed input.
    pub fn submit(&self, client: u64, line: &str) {
        self.shared.submit(client, line);
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        self.shared.stats()
    }

    /// Current admission queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// One coherent JSON snapshot of the live telemetry: registry
    /// counters/gauges/histograms plus queue, memo, and trace-store
    /// state read at snapshot time. This is the object served to
    /// `metrics` requests and written to the periodic snapshot file.
    pub fn metrics_snapshot(&self) -> Json {
        self.shared.metrics_snapshot()
    }

    /// `true` once a wire `shutdown` request has asked for a graceful
    /// drain. The process's supervision loop polls this and calls
    /// [`Engine::drain`].
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested.load(Ordering::SeqCst)
    }

    /// Gracefully drains the engine: stops admitting (new requests are
    /// shed with a retry hint), sheds every queued-but-unstarted
    /// request the same way, lets in-flight work complete, flushes the
    /// memo journal, writes the final metrics snapshot, and joins all
    /// threads. Idempotent; concurrent callers race on one flag and
    /// the loser returns immediately (the winner's join still
    /// completes the drain).
    ///
    /// Every response acknowledged before the drain stays durable: the
    /// memo flush rewrites the journal from the settled in-memory
    /// state, retrying around injected transient faults.
    pub fn drain(&self) -> DrainStats {
        let shared = &self.shared;
        if shared.draining.swap(true, Ordering::SeqCst) {
            return DrainStats::default();
        }
        let queued = shared.queue.depth();
        let served_before = shared.metrics.served.value();
        shared.emit(Event::DrainBegin {
            queued: queued.min(u32::MAX as usize) as u32,
        });

        // Shed everything still waiting in the queue. Entries whose
        // deadline already fired were answered by the watchdog; the
        // `complete` race keeps us silent for those.
        let waiting = shared.queue.drain_matching(usize::MAX, |_| true);
        let mut shed = 0u32;
        for entry in waiting {
            if shared.sup().complete(entry.seq).is_none() {
                continue;
            }
            shed += 1;
            let retry_after_ms = shared.queue.shed_hint();
            shared.metrics.shed.inc();
            shared.metrics.inflight.sub(1);
            shared.emit(Event::RequestShed {
                request: entry.seq,
                retry_after_ms,
            });
            shared.respond(
                entry.client,
                Response::Error {
                    id: Some(entry.request.id),
                    reject: Reject::Overloaded { retry_after_ms },
                },
            );
            shared.queue.done(entry.client);
        }

        // In-flight work: close the queue so workers exit after their
        // current batch, then wait for them.
        shared.queue.close();
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }

        // A backoff retry scheduled just before the drain began may
        // re-enter the queue after the workers exited; settle those now
        // rather than leaving their clients waiting forever.
        for entry in shared.queue.drain_matching(usize::MAX, |_| true) {
            shared.settle_failed(
                &entry,
                "server drained before a scheduled retry could run".to_string(),
            );
        }

        // Flush durable state. The journal is already consistent (every
        // put rewrote it atomically); the flush re-commits it and is
        // retried so a transient injected fault mid-drain cannot lose
        // acknowledged results.
        let mut flushed = Ok(());
        for _ in 0..3 {
            flushed = shared.memo.flush();
            if flushed.is_ok() {
                break;
            }
        }
        if let Err(e) = flushed {
            cwp_obs::obs_warn!("memo flush on drain failed: {e}");
        }

        let completed = shared
            .metrics
            .served
            .value()
            .saturating_sub(served_before)
            .min(u64::from(u32::MAX)) as u32;
        shared.emit(Event::DrainDone { shed, completed });

        // Final metrics snapshot (the snapshot thread writes one on
        // its way out), then the watchdog.
        shared.stopping.store(true, Ordering::Relaxed);
        if let Some(snapshotter) = self.snapshotter.lock().expect("snapshotter lock").take() {
            let _ = snapshotter.join();
        }
        if let Some(sup) = shared.supervisor.get() {
            sup.shutdown();
        }
        DrainStats {
            queued: queued.min(u32::MAX as usize) as u32,
            shed,
            completed,
        }
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::Relaxed);
        if let Some(snapshotter) = self.snapshotter.lock().expect("snapshotter lock").take() {
            let _ = snapshotter.join();
        }
        self.shared.queue.close();
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(sup) = self.shared.supervisor.get() {
            sup.shutdown();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Shared {
    fn sup(&self) -> &Arc<Supervisor<SupMsg>> {
        self.supervisor.get().expect("supervisor initialized")
    }

    fn emit(&self, event: Event) {
        if let Some(writer) = &self.events {
            writer.lock().expect("events lock").on_event(&event);
        }
    }

    fn respond(&self, client: u64, response: Response) {
        let sender = self
            .clients
            .lock()
            .expect("clients lock")
            .get(&client)
            .cloned();
        if let Some(sender) = sender {
            // A send error means the client detached between lookup and
            // send; the response is dropped on the floor by design.
            let _ = sender.send(response);
        }
    }

    fn submit(&self, client: u64, line: &str) {
        let request = match Incoming::from_line(line) {
            Err((id, reject)) => {
                self.respond(client, Response::Error { id, reject });
                return;
            }
            // Metrics requests are read-only and answered inline,
            // bypassing admission: telemetry must stay reachable
            // precisely when the queue is full.
            Ok(Incoming::Metrics { id }) => {
                self.respond(
                    client,
                    Response::Metrics {
                        id,
                        snapshot: self.metrics_snapshot(),
                    },
                );
                return;
            }
            // A shutdown request is acked immediately; the process's
            // supervision loop observes the flag and runs the drain.
            Ok(Incoming::Shutdown { id }) => {
                self.drain_requested.store(true, Ordering::SeqCst);
                self.respond(client, Response::Draining { id });
                return;
            }
            Ok(Incoming::Sim(request)) => request,
        };
        // A draining engine admits nothing: every new simulation
        // request is shed with a retry hint so clients fail over.
        if self.draining.load(Ordering::SeqCst) {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let retry_after_ms = self.queue.shed_hint();
            self.metrics.shed.inc();
            self.emit(Event::RequestShed {
                request: seq,
                retry_after_ms,
            });
            self.respond(
                client,
                Response::Error {
                    id: Some(request.id),
                    reject: Reject::Overloaded { retry_after_ms },
                },
            );
            return;
        }
        if workloads::by_name(&request.workload).is_none() {
            let detail = format!("unknown workload {:?}", request.workload);
            self.respond(
                client,
                Response::Error {
                    id: Some(request.id),
                    reject: Reject::BadRequest { detail },
                },
            );
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let deadline_ms = request.deadline_ms.unwrap_or(0);
        let deadline = request
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let id = request.id;
        let entry = Entry {
            seq,
            client,
            request,
            attempt: 1,
            span: Span::begin(seq),
            cancel: cancel.clone(),
        };
        // Register before admitting so a fast worker can never complete
        // an unregistered request (which would eat its response).
        self.sup().register(
            seq,
            deadline,
            SupMsg::Deadline {
                client,
                id,
                deadline_ms,
                cancel,
            },
        );
        match self.queue.admit(entry) {
            Ok(depth) => {
                self.metrics.admitted.inc();
                self.metrics.inflight.add(1);
                self.emit(Event::RequestAdmitted {
                    request: seq,
                    depth: depth.min(u32::MAX as usize) as u32,
                });
            }
            Err(shed) => {
                self.sup().complete(seq); // roll back the registration
                let retry_after_ms = shed.retry_after_ms();
                self.metrics.shed.inc();
                self.emit(Event::RequestShed {
                    request: seq,
                    retry_after_ms,
                });
                self.respond(
                    client,
                    Response::Error {
                        id: Some(id),
                        reject: Reject::Overloaded { retry_after_ms },
                    },
                );
            }
        }
    }

    /// Deadline watchdog callback: first settle wins. If the worker
    /// already completed the request this never fires (the supervisor
    /// dropped the registration); if it fires, the worker's eventual
    /// `complete` returns `None` and the worker stays silent.
    fn on_deadline(&self, seq: u64, msg: SupMsg) {
        let SupMsg::Deadline {
            client,
            id,
            deadline_ms,
            cancel,
        } = msg
        else {
            return; // retries are never registered with a deadline
        };
        cancel.cancel();
        self.metrics.deadline_expired.inc();
        self.metrics.inflight.sub(1);
        self.emit(Event::RequestDeadline {
            request: seq,
            deadline_ms,
        });
        self.respond(
            client,
            Response::Error {
                id: Some(id),
                reject: Reject::DeadlineExceeded { deadline_ms },
            },
        );
        self.queue.done(client);
    }

    /// Backoff-release callback: the retry waited out its delay.
    fn on_release(&self, msg: SupMsg) {
        if let SupMsg::Retry(entry) = msg {
            self.queue.requeue(*entry);
        }
    }

    /// Settles an entry with a successful result. Returns silently if
    /// the deadline watchdog got there first. `coalesced_batch` is the
    /// size of the banked pass that actually served the entry (0 or 1
    /// = served alone); the `req_coalesced` event is emitted here, at
    /// settlement, so the event stream and the `coalesced` counter
    /// agree exactly even when batch members peel off to memo hits or
    /// retries.
    fn settle_ok(
        &self,
        entry: &Entry,
        result: ResultSummary,
        memo_hit: bool,
        degraded: bool,
        coalesced_batch: usize,
    ) {
        if self.sup().complete(entry.seq).is_none() {
            return; // deadline already answered
        }
        let coalesced = coalesced_batch > 1;
        self.metrics.served.inc();
        self.metrics.inflight.sub(1);
        if memo_hit {
            self.metrics.memo_hits.inc();
        }
        if degraded {
            self.metrics.degraded.inc();
            self.emit(Event::RequestDegraded { request: entry.seq });
        }
        if coalesced {
            self.metrics.coalesced.inc();
            self.emit(Event::RequestCoalesced {
                request: entry.seq,
                batch: coalesced_batch.min(u32::MAX as usize) as u32,
            });
        }
        let total = entry.span.total();
        self.metrics.total_us.record_duration(total);
        let wall_ms = total.as_millis().min(u128::from(u64::MAX)) as u64;
        self.respond(
            entry.client,
            Response::Ok {
                id: entry.request.id,
                result,
                memo_hit,
                degraded,
                coalesced,
                wall_ms,
                timing: Timing {
                    trace: entry.seq,
                    stages: entry.span.breakdown_us(),
                },
            },
        );
        self.queue.done(entry.client);
    }

    /// Settles an entry with a terminal failure.
    fn settle_failed(&self, entry: &Entry, detail: String) {
        if self.sup().complete(entry.seq).is_none() {
            return;
        }
        self.metrics.failed.inc();
        self.metrics.inflight.sub(1);
        self.respond(
            entry.client,
            Response::Error {
                id: Some(entry.request.id),
                reject: Reject::Failed { detail },
            },
        );
        self.queue.done(entry.client);
    }

    /// True when this attempt should panic by fault injection.
    fn injected_fault(&self, entry: &Entry) -> bool {
        self.config.fault_one_in > 0
            && entry.attempt == 1
            && SplitMix64::seed_from_u64(self.config.seed ^ entry.seq)
                .below(self.config.fault_one_in)
                == 0
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            admitted: self.metrics.admitted.value(),
            shed: self.metrics.shed.value(),
            served: self.metrics.served.value(),
            memo_hits: self.metrics.memo_hits.value(),
            coalesced: self.metrics.coalesced.value(),
            degraded: self.metrics.degraded.value(),
            deadline_expired: self.metrics.deadline_expired.value(),
            panics: self.metrics.panics.value(),
            retries: self.metrics.retries.value(),
            failed: self.metrics.failed.value(),
        }
    }

    /// Renders the registry snapshot plus live queue / memo /
    /// trace-store state as one JSON object.
    fn metrics_snapshot(&self) -> Json {
        let mut snapshot = self.metrics.registry.snapshot();
        let depths = self.queue.depths();
        let (inflight_clients, inflight_total) = self.queue.inflight();
        let queue = {
            let mut pairs: Vec<(String, Json)> = (0..PRIORITY_LEVELS)
                .map(|level| (format!("depth_p{level}"), Json::UInt(depths[level] as u64)))
                .collect();
            pairs.push(("depth".to_string(), Json::UInt(self.queue.depth() as u64)));
            pairs.push((
                "inflight_clients".to_string(),
                Json::UInt(inflight_clients as u64),
            ));
            pairs.push((
                "inflight_total".to_string(),
                Json::UInt(inflight_total as u64),
            ));
            Json::Obj(pairs)
        };
        let memo = Json::obj([("entries", Json::UInt(self.memo.len() as u64))]);
        let store = Json::obj([
            ("bytes", Json::UInt(self.store.used_bytes())),
            ("recordings", Json::UInt(self.store.recordings())),
            ("evictions", Json::UInt(self.store.evictions())),
            ("hits", Json::UInt(self.store.hits())),
            ("misses", Json::UInt(self.store.misses())),
        ]);
        if let Json::Obj(pairs) = &mut snapshot {
            pairs.push(("queue".to_string(), queue));
            pairs.push(("memo".to_string(), memo));
            pairs.push(("store".to_string(), store));
        }
        snapshot
    }
}

/// Rewrites the snapshot file every `metrics_period` with a
/// write-then-rename so readers never observe a torn snapshot. A final
/// snapshot is written on shutdown.
fn snapshot_loop(shared: &Shared, path: &std::path::Path) {
    let tick = Duration::from_millis(25);
    let io = &shared.config.io;
    loop {
        let mut waited = Duration::ZERO;
        while waited < shared.config.metrics_period {
            if shared.stopping.load(Ordering::Relaxed) {
                // The final snapshot must survive injected faults: it
                // is what harnesses reconcile against, so retry a few
                // times before giving up.
                let mut wrote = Ok(());
                for _ in 0..3 {
                    wrote = write_snapshot_atomic(io, path, &shared.metrics_snapshot());
                    if wrote.is_ok() {
                        break;
                    }
                }
                if let Err(e) = wrote {
                    cwp_obs::obs_warn!("final metrics snapshot write failed: {e}");
                }
                return;
            }
            std::thread::sleep(tick);
            waited += tick;
        }
        if let Err(e) = write_snapshot_atomic(io, path, &shared.metrics_snapshot()) {
            cwp_obs::obs_warn!("metrics snapshot write failed: {e}");
        }
    }
}

/// Atomically replaces `path` with the rendered snapshot via the
/// write-then-rename helper, so readers (and crashes) never observe a
/// torn snapshot.
fn write_snapshot_atomic(
    io: &dyn ChaosIo,
    path: &std::path::Path,
    snapshot: &Json,
) -> std::io::Result<()> {
    let mut line = String::new();
    snapshot.write(&mut line);
    line.push('\n');
    cwp_chaos::write_atomic(io, path, line.as_bytes())
}

fn worker_loop(shared: &Shared) {
    while let Some(mut leader) = shared.queue.pop() {
        let waited = leader.span.mark("queue");
        shared.metrics.queue_us.record_duration(waited);
        if leader.cancel.is_cancelled() {
            // Deadline fired while queued; the watchdog already
            // responded and paid the queue debt.
            shared.sup().complete(leader.seq);
            continue;
        }
        serve_batch(shared, leader);
    }
}

/// Serves one popped entry, coalescing compatible queued requests into
/// the same banked pass when possible.
fn serve_batch(shared: &Shared, leader: Entry) {
    let name = leader.request.workload.clone();
    let mut batch = vec![leader];
    let fault_free = batch[0].request.config.fault_rate_ppm() == 0;
    if fault_free && shared.config.max_batch > 1 {
        let followers = shared
            .queue
            .drain_matching(shared.config.max_batch - 1, |e| {
                e.request.workload == name
                    && e.request.config.fault_rate_ppm() == 0
                    && !e.cancel.is_cancelled()
            });
        for mut follower in followers {
            let waited = follower.span.mark("queue");
            shared.metrics.queue_us.record_duration(waited);
            batch.push(follower);
        }
    }
    let workload = workloads::by_name(&name).expect("validated at submit");
    let trace = shared.store.get_or_record(workload.as_ref());
    let degraded = trace.is_none();
    let trace_hash = match &trace {
        Some(trace) => {
            let hash = trace.content_hash();
            shared
                .hashes
                .lock()
                .expect("hashes lock")
                .insert(name.clone(), hash);
            Some(hash)
        }
        // The trace alone exceeds the store budget: fall back to live
        // generation. The hash is still known if some earlier, roomier
        // moment recorded this workload; otherwise memoization is
        // skipped for these requests.
        None => shared
            .hashes
            .lock()
            .expect("hashes lock")
            .get(&name)
            .copied(),
    };

    // Memo pass: answer hits immediately, collect misses for the sim.
    // The trace fetch above is billed to every batch member as `prep`
    // (on a cold store it records the whole trace).
    let mut misses: Vec<(Entry, String)> = Vec::new();
    for mut entry in batch {
        let prep = entry.span.mark("prep");
        shared.metrics.prep_us.record_duration(prep);
        let key = config_key(&entry.request.config);
        let hit = trace_hash.and_then(|hash| shared.memo.get(hash, &key));
        match hit {
            Some(result) => {
                let looked_up = entry.span.mark("memo");
                shared.metrics.memo_us.record_duration(looked_up);
                // A memo hit is served alone even when it arrived in a
                // coalesced drain: it never rode the banked pass.
                shared.settle_ok(&entry, result, true, false, 1);
            }
            None => {
                shared.metrics.memo_misses.inc();
                misses.push((entry, key));
            }
        }
    }
    if misses.is_empty() {
        return;
    }

    // Deduplicate identical (workload, config) requests within the
    // batch: one simulation answers all of them.
    let mut unique_keys: Vec<String> = Vec::new();
    let mut configs = Vec::new();
    for (entry, key) in &misses {
        if !unique_keys.contains(key) {
            unique_keys.push(key.clone());
            configs.push(entry.request.config);
        }
    }

    let fault_pending = misses.iter().any(|(entry, _)| shared.injected_fault(entry));
    let cancel = misses[0].0.cancel.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if fault_pending {
            panic!("injected fault (seed {})", shared.config.seed);
        }
        match &trace {
            Some(trace) => simulate_many_cancellable(trace, &configs, &cancel),
            None => {
                // Degraded path: live generation, one pass per config.
                // No mid-run cancellation hook; the deadline watchdog
                // still answers on time and the late result is dropped.
                Some(
                    configs
                        .iter()
                        .map(|config| simulate(workload.as_ref(), shared.config.scale, config))
                        .collect(),
                )
            }
        }
    }));

    match outcome {
        Err(_) => {
            shared.metrics.panics.inc();
            for (entry, _) in misses {
                retry_or_fail(shared, entry);
            }
        }
        Ok(None) => {
            // The pass was cancelled: the first miss's deadline fired
            // mid-run. That entry is settled by the watchdog; the rest
            // go back to the queue untouched.
            for (entry, _) in misses {
                if entry.cancel.is_cancelled() {
                    shared.sup().complete(entry.seq);
                } else {
                    shared.queue.requeue(entry);
                }
            }
        }
        Ok(Some(outcomes)) => {
            let results: Vec<ResultSummary> =
                outcomes.iter().map(ResultSummary::from_outcome).collect();
            // Entries that reached the simulation together form the
            // coalesced set; memo hits peeled off above don't count.
            let pass_size = misses.len();
            for (mut entry, key) in misses {
                let simmed = entry.span.mark("sim");
                shared.metrics.sim_us.record_duration(simmed);
                let index = unique_keys
                    .iter()
                    .position(|k| k == &key)
                    .expect("key collected above");
                let result = results[index].clone();
                if let Some(hash) = trace_hash {
                    if let Err(e) = shared.memo.put(hash, key, result.clone()) {
                        cwp_obs::obs_warn!("memo journal write failed: {e}");
                    }
                }
                let journaled = entry.span.mark("memo");
                shared.metrics.memo_us.record_duration(journaled);
                shared.settle_ok(&entry, result, false, degraded, pass_size);
            }
        }
    }
}

/// After a caught panic: re-queue the attempt with exponential backoff,
/// or fail the request once its attempt budget is spent.
fn retry_or_fail(shared: &Shared, entry: Entry) {
    if entry.cancel.is_cancelled() {
        shared.sup().complete(entry.seq);
        return;
    }
    if entry.attempt >= shared.config.max_attempts {
        let detail = format!(
            "worker panicked on all {} attempts",
            shared.config.max_attempts
        );
        shared.settle_failed(&entry, detail);
        return;
    }
    // A draining engine has no future in which a backoff retry could
    // run: settle now so the client is never left waiting.
    if shared.draining.load(Ordering::SeqCst) {
        shared.settle_failed(
            &entry,
            "worker panicked while the server was draining".to_string(),
        );
        return;
    }
    let delay = backoff_delay(
        shared.config.backoff_base,
        shared.config.seed,
        entry.seq,
        entry.attempt,
    );
    shared.metrics.retries.inc();
    let mut next = entry;
    next.attempt += 1;
    shared
        .sup()
        .release_after(Instant::now() + delay, SupMsg::Retry(Box::new(next)));
}
